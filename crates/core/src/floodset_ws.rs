//! `FloodSetWS`: flooding with suspicion filtering (Charron-Bost,
//! Guerraoui & Schiper).
//!
//! The paper's `A_{t+2}` is "a variant of the FloodSetWS algorithm of [3],
//! modified for exchanging and tracking false suspicions". `FloodSetWS`
//! assumes a *perfect* failure detector P and achieves global decision at
//! round `t + 1` in every run: it floods estimates but only accounts for
//! senders the detector does not suspect.
//!
//! Crucially, `FloodSetWS` is **not** indulgent: fed with unreliable
//! suspicions (for example the delivery-derived suspicions of ES, where a
//! delayed message looks like a crash) it can violate agreement. That
//! failure is exactly the gap `A_{t+2}` closes by *exchanging* the
//! suspicion sets (`Halt`) and paying one extra round — and it is
//! demonstrated by the ablation test below and by `exp_baseline_comparison`.

use indulgent_fd::{FailureDetector, Suspicion};
use indulgent_model::{
    Delivery, ProcessId, ProcessSet, Round, RoundProcess, Step, SystemConfig, Value,
};

/// The FloodSetWS automaton, generic over its suspicion source.
///
/// With [`Suspicion::Detector`] on a [`indulgent_fd::PerfectDetector`] this
/// is the algorithm of [3]; with [`Suspicion::Derived`] it becomes the
/// naive "FloodSet in ES" strawman used as an ablation.
#[derive(Debug, Clone)]
pub struct FloodSetWs<D> {
    id: ProcessId,
    n: usize,
    decide_round: Round,
    est: Value,
    halted: ProcessSet,
    suspicion: Suspicion<D>,
    decided: bool,
}

impl<D: FailureDetector> FloodSetWs<D> {
    /// Creates the automaton for process `id` proposing `proposal`, taking
    /// suspicions from `suspicion`.
    #[must_use]
    pub fn new(
        config: SystemConfig,
        id: ProcessId,
        proposal: Value,
        suspicion: Suspicion<D>,
    ) -> Self {
        FloodSetWs {
            id,
            n: config.n(),
            decide_round: Round::new(config.t() as u32 + 1),
            est: proposal,
            halted: ProcessSet::empty(),
            suspicion,
            decided: false,
        }
    }

    /// Processes this automaton has (cumulatively) suspected.
    #[must_use]
    pub fn halted(&self) -> ProcessSet {
        self.halted
    }
}

impl<D: FailureDetector> RoundProcess for FloodSetWs<D> {
    type Msg = Value;

    fn send(&mut self, _round: Round) -> Value {
        self.est
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
        let absent = delivery.suspected(self.n);
        let suspected = self.suspicion.suspects(self.id, round, absent);
        self.halted = self.halted.union(suspected);
        for m in delivery.current() {
            if !self.halted.contains(m.sender) {
                self.est = self.est.min(m.msg);
            }
        }
        if round >= self.decide_round && !self.decided {
            self.decided = true;
            Step::Decide(self.est)
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_fd::{CrashInfo, NoDetector, PerfectDetector};
    use indulgent_model::ProcessFactory;
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    fn perfect_factory(
        config: SystemConfig,
        schedule: &Schedule,
    ) -> impl ProcessFactory<Process = FloodSetWs<PerfectDetector>> {
        let info = CrashInfo::new(config.processes().map(|p| schedule.crash_round(p)).collect());
        move |i: usize, v: Value| {
            FloodSetWs::new(
                config,
                ProcessId::new(i),
                v,
                Suspicion::Detector(PerfectDetector::new(info.clone())),
            )
        }
    }

    fn derived_factory(
        config: SystemConfig,
    ) -> impl ProcessFactory<Process = FloodSetWs<NoDetector>> {
        move |i: usize, v: Value| FloodSetWs::new(config, ProcessId::new(i), v, Suspicion::Derived)
    }

    #[test]
    fn with_perfect_detector_decides_at_t_plus_one() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let factory = perfect_factory(cfg(), &schedule);
        let outcome = run_schedule(&factory, &vals(&[6, 2, 8, 4, 7]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(3))); // t + 1
    }

    #[test]
    fn with_perfect_detector_survives_serial_crashes() {
        let config = cfg();
        let mut runs = 0;
        let _ = indulgent_sim::for_each_serial_schedule(config, ModelKind::Es, 3, |schedule| {
            let factory = perfect_factory(config, schedule);
            let outcome = run_schedule(&factory, &vals(&[6, 2, 8, 4, 7]), schedule, 10)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap();
            runs += 1;
            if runs > 3000 {
                return std::ops::ControlFlow::Break(());
            }
            std::ops::ControlFlow::Continue(())
        });
        assert!(runs > 1000);
    }

    #[test]
    fn ablation_derived_suspicions_violate_agreement_in_es() {
        // The strawman: FloodSetWS fed with delivery-derived suspicions in
        // an ES run with false suspicions. The minimum-holder p1 is falsely
        // suspected by *everyone* in round 1 (its messages are delayed).
        // From then on every other process filters p1's estimates through
        // its `halted` set, so p1's value 2 never spreads — yet p1 itself
        // keeps it and decides 2 at round t + 1, while the others decide 4:
        // uniform agreement is violated. This is exactly the failure mode
        // `A_{t+2}` repairs by exchanging the suspicion sets.
        let config = cfg();
        let mut builder = ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(4));
        for receiver in [0usize, 2, 3, 4] {
            builder = builder.delay(
                Round::FIRST,
                ProcessId::new(1),
                ProcessId::new(receiver),
                Round::new(4),
            );
        }
        let schedule = builder.build(10).unwrap();
        let split = run_schedule(&derived_factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 10)
            .expect("one proposal per process");
        assert!(
            split.check_safety().is_err(),
            "derived-suspicion FloodSetWS should violate agreement: {split:?}"
        );
        assert_eq!(split.decision_of(ProcessId::new(1)).unwrap().value, Value::new(2));
        assert_eq!(split.decision_of(ProcessId::new(0)).unwrap().value, Value::new(4));
    }

    #[test]
    fn derived_suspicions_are_safe_in_synchronous_runs() {
        // Without false suspicions (synchronous run), the derived variant
        // behaves like FloodSet with perfect information and stays safe.
        let config = cfg();
        let schedule = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(10)
            .unwrap();
        let outcome =
            run_schedule(&derived_factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 10)
                .expect("one proposal per process");
        outcome.check_consensus().unwrap();
    }
}
