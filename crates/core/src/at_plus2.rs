//! `A_{t+2}` — the paper's matching algorithm (Fig. 2), with the ◇S
//! variant (Fig. 3) and the failure-free optimization (Fig. 4).
//!
//! The algorithm closes the paper's `t + 2` lower bound: in *every*
//! synchronous run it reaches a global decision at round `t + 2`, while
//! remaining a correct indulgent consensus in arbitrary ES runs.
//!
//! # Structure
//!
//! **Phase 1 (rounds `1..=t+1`)** floods `ESTIMATE(est, Halt)` messages.
//! `est` converges towards the minimum proposal; `Halt_i` accumulates every
//! process involved in a suspicion with `p_i` — both `p_j` that `p_i`
//! suspected and `p_j` that reported suspecting `p_i` (via the exchanged
//! `Halt` sets). Messages from `Halt` members are excluded from the
//! estimate update (`msgSet`). Phase 1 guarantees the *elimination*
//! property (paper Lemma 6): any two processes entering Phase 2 either
//! share the estimate or at least one of them has `|Halt| > t`, i.e. has
//! detected a false suspicion.
//!
//! **Phase 2 (round `t + 2`)** exchanges `NEWESTIMATE(nE)` where
//! `nE = ⊥` if `|Halt| > t` (a false suspicion was detected) and `nE = est`
//! otherwise. By elimination at most one non-⊥ value circulates. A process
//! receiving only non-⊥ values decides; otherwise it adopts any non-⊥ value
//! (or keeps its proposal) as the proposal `vc` for the underlying
//! consensus `C`, invoked from round `t + 3` on. Deciders broadcast
//! `DECIDE` from round `t + 3`; any process receiving `DECIDE` decides.
//!
//! In a synchronous run nobody accumulates `|Halt| > t` (suspected
//! processes really crashed — paper Lemma 13), so every `nE` is non-⊥ and
//! everyone alive decides at round `t + 2` — *regardless of how slow `C`
//! is*.
//!
//! # Variants
//!
//! * [`AtPlus2::with_detector`] builds the **`A_◇S`** variant (paper
//!   Sect. 5.1): suspicions come from an eventually strong failure detector
//!   instead of message absence. The fast-decision property is preserved
//!   because synchronous runs keep the detector accurate.
//! * [`AtPlus2::with_failure_free_optimization`] enables the **Fig. 4**
//!   optimization: if round 2 shows a complete, suspicion-free round 1
//!   (all `n` messages with `Halt = ∅`), decide immediately at round 2 —
//!   matching the 2-round lower bound for well-behaved runs.

use indulgent_fd::{FailureDetector, NoDetector, Suspicion};
use indulgent_model::{
    DeliveredMsg, Delivery, ProcessId, ProcessSet, Round, RoundProcess, Step, SystemConfig, Value,
};

use crate::underlying::UnderlyingConsensus;

/// Messages of [`AtPlus2`], generic over the underlying consensus messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtMsg<U> {
    /// Phase 1 flood: estimate and suspicion set.
    Estimate {
        /// Sender's current estimate (minimum value seen).
        est: Value,
        /// Sender's `Halt` set after the previous round.
        halt: ProcessSet,
    },
    /// Phase 2 exchange: `None` encodes the paper's ⊥ (false suspicion
    /// detected).
    NewEstimate {
        /// The new estimate, or ⊥.
        ne: Option<Value>,
    },
    /// Decision relay (sent from round `t + 3` on by deciders).
    Decide(Value),
    /// A message of the underlying consensus `C` (rounds `≥ t + 3`).
    Underlying(U),
}

/// The `A_{t+2}` automaton (see module docs).
#[derive(Debug, Clone)]
pub struct AtPlus2<C, D = NoDetector>
where
    C: UnderlyingConsensus,
{
    config: SystemConfig,
    id: ProcessId,
    est: Value,
    halt: ProcessSet,
    /// Proposal for the underlying consensus, initially the own proposal.
    vc: Value,
    suspicion: Suspicion<D>,
    underlying: C,
    underlying_proposed: bool,
    optimize_ff: bool,
    decided: Option<Value>,
    reported: bool,
    /// Pooled buffer for the re-timestamped delivery handed to `C` in
    /// rounds `> t + 2`; rebuilt in place each round and left empty in
    /// between, so the per-round hot path allocates nothing once warm
    /// (and snapshots fork without copying stale scratch).
    sub_scratch: Delivery<C::Msg>,
}

impl<C: UnderlyingConsensus> AtPlus2<C, NoDetector> {
    /// Creates the standard ES automaton for process `id` proposing
    /// `proposal`: suspicions are derived from message absence, exactly as
    /// the ES model defines them.
    #[must_use]
    pub fn new(config: SystemConfig, id: ProcessId, proposal: Value, underlying: C) -> Self {
        Self::with_suspicion(config, id, proposal, underlying, Suspicion::Derived)
    }
}

impl<C: UnderlyingConsensus, D: FailureDetector> AtPlus2<C, D> {
    /// Creates the `A_◇S` variant (paper Sect. 5.1): suspicions are read
    /// from `detector` (typically an
    /// [`indulgent_fd::EventuallyStrongDetector`]).
    #[must_use]
    pub fn with_detector(
        config: SystemConfig,
        id: ProcessId,
        proposal: Value,
        underlying: C,
        detector: D,
    ) -> Self {
        Self::with_suspicion(config, id, proposal, underlying, Suspicion::Detector(detector))
    }

    /// Creates the automaton with an explicit suspicion source.
    #[must_use]
    pub fn with_suspicion(
        config: SystemConfig,
        id: ProcessId,
        proposal: Value,
        underlying: C,
        suspicion: Suspicion<D>,
    ) -> Self {
        AtPlus2 {
            config,
            id,
            est: proposal,
            halt: ProcessSet::empty(),
            vc: proposal,
            suspicion,
            underlying,
            underlying_proposed: false,
            optimize_ff: false,
            decided: None,
            reported: false,
            sub_scratch: Delivery::empty(Round::FIRST),
        }
    }

    /// Enables the failure-free optimization of paper Fig. 4: decide at
    /// round 2 when round 1 was complete and suspicion-free.
    #[must_use]
    pub fn with_failure_free_optimization(mut self) -> Self {
        self.optimize_ff = true;
        self
    }

    /// Rewinds the automaton for the next consensus instance of a
    /// multi-shot (replicated-log) execution: a fresh run proposing
    /// `proposal`, with every per-instance field cleared but all buffer
    /// capacity (the pooled sub-delivery scratch) retained.
    ///
    /// The suspicion source is kept as-is: message-absence (`Derived`)
    /// suspicions are stateless, which is what the log drivers use. The
    /// `optimize_ff` flag survives the reset, so a log chaining
    /// failure-free-optimized instances keeps the round-2 fast decision in
    /// every instance.
    pub fn reset_instance(&mut self, proposal: Value) {
        self.est = proposal;
        self.halt = ProcessSet::empty();
        self.vc = proposal;
        self.underlying.reset();
        self.underlying_proposed = false;
        self.decided = None;
        self.reported = false;
        self.sub_scratch.reset(Round::FIRST);
    }

    /// The current `Halt` set (processes involved in suspicions with this
    /// process).
    #[must_use]
    pub fn halt(&self) -> ProcessSet {
        self.halt
    }

    /// The current estimate.
    #[must_use]
    pub fn estimate(&self) -> Value {
        self.est
    }

    /// End of Phase 1 (round `t + 1`).
    fn phase1_end(&self) -> u32 {
        self.config.t() as u32 + 1
    }

    /// The `NEWESTIMATE` round `t + 2`.
    fn ne_round(&self) -> u32 {
        self.config.t() as u32 + 2
    }

    fn decide(&mut self, v: Value) -> Step {
        if self.decided.is_none() {
            self.decided = Some(v);
        }
        if self.reported {
            Step::Continue
        } else {
            self.reported = true;
            Step::Decide(v)
        }
    }

    /// Translates a global round (`> t + 2`) to the underlying consensus's
    /// local round.
    fn local_round(&self, round: Round) -> Round {
        Round::new(round.get() - self.ne_round())
    }

    /// Phase 1 `compute()` (paper lines 30-35): update `Halt` from this
    /// round's suspicions and the received `Halt` sets, then take the
    /// minimum estimate over messages from non-`Halt` senders.
    fn compute(&mut self, round: Round, delivery: &Delivery<AtMsg<C::Msg>>) {
        let absent = delivery.suspected(self.config.n());
        let suspected = self.suspicion.suspects(self.id, round, absent);
        self.halt = self.halt.union(suspected);
        for m in delivery.current() {
            if let AtMsg::Estimate { halt, .. } = &m.msg {
                if halt.contains(self.id) {
                    self.halt.insert(m.sender);
                }
            }
        }
        let min_est = delivery
            .current()
            .filter_map(|m| match &m.msg {
                AtMsg::Estimate { est, .. } if !self.halt.contains(m.sender) => Some(*est),
                _ => None,
            })
            .min();
        if let Some(v) = min_est {
            self.est = self.est.min(v);
        }
    }

    /// The Fig. 4 failure-free optimization, applied in round 2: returns a
    /// decision step if round 1 was globally complete and suspicion-free.
    /// One allocation-free pass over the current messages.
    fn failure_free_check(&mut self, delivery: &Delivery<AtMsg<C::Msg>>) -> Option<Value> {
        let mut estimates = 0usize;
        let mut min: Option<Value> = None;
        for m in delivery.current() {
            if let AtMsg::Estimate { est, halt } = &m.msg {
                if !halt.is_empty() {
                    return None;
                }
                estimates += 1;
                min = Some(min.map_or(*est, |v| v.min(*est)));
            }
        }
        let min = min?;
        if estimates == self.config.n() {
            // A complete, suspicion-free first round: decide now. All
            // estimates necessarily equal the global minimum.
            Some(min)
        } else {
            // No suspicion *detected*, but not everyone was heard: prime
            // both the estimate and the fallback proposal with the (unique)
            // estimate value (paper Sect. 5.2).
            self.vc = min;
            self.est = min;
            None
        }
    }
}

impl<C: UnderlyingConsensus, D: FailureDetector> RoundProcess for AtPlus2<C, D> {
    type Msg = AtMsg<C::Msg>;

    fn send(&mut self, round: Round) -> AtMsg<C::Msg> {
        if let Some(v) = self.decided {
            return AtMsg::Decide(v);
        }
        let k = round.get();
        if k <= self.phase1_end() {
            AtMsg::Estimate { est: self.est, halt: self.halt }
        } else if k == self.ne_round() {
            let ne = if self.halt.len() > self.config.t() { None } else { Some(self.est) };
            AtMsg::NewEstimate { ne }
        } else {
            if !self.underlying_proposed {
                self.underlying.propose(self.vc);
                self.underlying_proposed = true;
            }
            AtMsg::Underlying(self.underlying.send(self.local_round(round)))
        }
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<AtMsg<C::Msg>>) -> Step {
        // A DECIDE message — current or delayed — settles the decision at
        // any round (with the base algorithm they only circulate from round
        // t + 3 on; with the failure-free optimization from round 3).
        for m in delivery.messages() {
            if let AtMsg::Decide(v) = &m.msg {
                return self.decide(*v);
            }
        }
        if self.decided.is_some() {
            return Step::Continue;
        }

        let k = round.get();
        if k <= self.phase1_end() {
            self.compute(round, delivery);
            if self.optimize_ff && k == 2 {
                if let Some(v) = self.failure_free_check(delivery) {
                    return self.decide(v);
                }
            }
            Step::Continue
        } else if k == self.ne_round() {
            // One allocation-free pass: did any NEWESTIMATE arrive, were
            // they all non-⊥, and what is the minimum non-⊥ value?
            let mut any = false;
            let mut all_non_bottom = true;
            let mut min: Option<Value> = None;
            for m in delivery.current() {
                if let AtMsg::NewEstimate { ne } = &m.msg {
                    any = true;
                    match ne {
                        Some(v) => min = Some(min.map_or(*v, |w| w.min(*v))),
                        None => all_non_bottom = false,
                    }
                }
            }
            if any && all_non_bottom {
                return self.decide(min.expect("all-non-⊥ implies a minimum"));
            }
            if let Some(v) = min {
                // Elimination guarantees all non-⊥ values coincide.
                self.vc = v;
            }
            Step::Continue
        } else {
            // Rounds t + 3 and later: run the underlying consensus on the
            // `Underlying` messages (current and delayed), with rounds
            // translated to its local clock. The sub-delivery is rebuilt
            // in the pooled scratch buffer, cleared again after use so
            // snapshot forks never copy stale messages.
            let local = self.local_round(round);
            let ne_round = self.ne_round();
            self.sub_scratch.reset(local);
            for m in delivery.messages() {
                if let AtMsg::Underlying(u) = &m.msg {
                    if m.sent_round.get() > ne_round {
                        self.sub_scratch.push(DeliveredMsg {
                            sender: m.sender,
                            sent_round: Round::new(m.sent_round.get() - ne_round),
                            msg: u.clone(),
                        });
                    }
                }
            }
            let decision = self.underlying.deliver(local, &self.sub_scratch);
            self.sub_scratch.reset(local);
            match decision {
                Some(v) => self.decide(v),
                None => Step::Continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::ProcessFactory;
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;
    use crate::rotating::RotatingCoordinator;
    use crate::underlying::Delayed;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    type Standard = AtPlus2<RotatingCoordinator, NoDetector>;

    fn factory(config: SystemConfig) -> impl ProcessFactory<Process = Standard> {
        move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        }
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn failure_free_synchronous_run_decides_at_t_plus_2() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[6, 2, 8, 4, 7]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(4))); // t + 2
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(2));
        }
    }

    #[test]
    fn synchronous_run_with_crashes_still_decides_at_t_plus_2() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::new(1), [ProcessId::new(0)])
            .crash_before_send(ProcessId::new(2), Round::new(3))
            .build(30)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[6, 2, 8, 4, 7]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
    }

    #[test]
    fn exhaustive_serial_runs_decide_exactly_at_t_plus_2() {
        // The fast-decision property (paper Lemma 13) over *all* serial
        // runs of n = 4, t = 1 (horizon t + 2 = 3 for crashes).
        let config = SystemConfig::majority(4, 1).unwrap();
        let f = factory(config);
        let mut runs = 0;
        let _ = indulgent_sim::for_each_serial_schedule(config, ModelKind::Es, 3, |schedule| {
            let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4]), schedule, 30)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap();
            assert!(
                outcome.global_decision_round().unwrap() <= Round::new(3),
                "synchronous run decided after t+2: {schedule:?}"
            );
            runs += 1;
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(runs, 97); // 1 + 3 rounds x 4 victims x 2^3 subsets
    }

    #[test]
    fn fast_decision_holds_with_arbitrarily_slow_underlying_consensus() {
        // Paper Sect. 3: "the fast decision property is achieved by At+2
        // regardless of the time complexity of C". Delay C by 50 rounds; a
        // synchronous run must still decide at t + 2.
        let config = cfg();
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, Delayed::new(RotatingCoordinator::new(config, id), 50))
        };
        let schedule = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(2))
            .build(100)
            .unwrap();
        let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4, 7]), &schedule, 100)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
    }

    #[test]
    fn false_suspicion_defers_to_underlying_consensus() {
        // An asynchronous run: enough false suspicions to poison Phase 1.
        // Decision must still happen (via C) and stay consistent.
        let config = cfg();
        let mut builder = ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(5));
        // Each round 1..=4, two senders' messages to each receiver are
        // delayed (budget = t = 2), causing widespread false suspicions.
        for k in 1..=4u32 {
            for r in 0..5usize {
                let s1 = (r + 1) % 5;
                let s2 = (r + 2) % 5;
                builder = builder
                    .delay(Round::new(k), ProcessId::new(s1), ProcessId::new(r), Round::new(5))
                    .delay(Round::new(k), ProcessId::new(s2), ProcessId::new(r), Round::new(5));
            }
        }
        let schedule = builder.build(60).unwrap();
        let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 60)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        // With poisoned Phase 1 the decision comes from C, i.e. after t+2.
        assert!(outcome.global_decision_round().unwrap() > Round::new(4));
    }

    #[test]
    fn halt_exchange_tracks_mutual_suspicions() {
        // p0 falsely suspects p1 in round 1 (delayed message); p1 learns it
        // from p0's round-2 Halt set and adds p0 to its own Halt.
        let config = cfg();
        // Drive manually to inspect internal state.
        let mut procs: Vec<Standard> = (0..5)
            .map(|i| {
                let id = ProcessId::new(i);
                AtPlus2::new(config, id, Value::new(i as u64), RotatingCoordinator::new(config, id))
            })
            .collect();
        // Round 1.
        let msgs: Vec<_> = procs.iter_mut().map(|p| p.send(Round::new(1))).collect();
        for (i, p) in procs.iter_mut().enumerate() {
            let delivered: Vec<_> = (0..5)
                .filter(|&s| !(s == 1 && i == 0)) // p1 -> p0 delayed
                .map(|s| DeliveredMsg {
                    sender: ProcessId::new(s),
                    sent_round: Round::new(1),
                    msg: msgs[s].clone(),
                })
                .collect();
            let _ = p.deliver(Round::new(1), &Delivery::new(Round::new(1), delivered));
        }
        assert!(procs[0].halt().contains(ProcessId::new(1)));
        assert!(procs[1].halt().is_empty());
        // Round 2: full delivery; p1 must learn p0 suspected it.
        let msgs: Vec<_> = procs.iter_mut().map(|p| p.send(Round::new(2))).collect();
        for (i, p) in procs.iter_mut().enumerate() {
            let delivered: Vec<_> = (0..5)
                .map(|s| DeliveredMsg {
                    sender: ProcessId::new(s),
                    sent_round: Round::new(2),
                    msg: msgs[s].clone(),
                })
                .collect();
            let _ = (i, p.deliver(Round::new(2), &Delivery::new(Round::new(2), delivered)));
        }
        assert!(procs[1].halt().contains(ProcessId::new(0)));
    }

    #[test]
    fn random_synchronous_runs_all_decide_at_t_plus_2() {
        let config = cfg();
        for seed in 0..300u64 {
            let schedule = indulgent_sim::random_run(
                config,
                ModelKind::Es,
                indulgent_sim::RandomRunParams::synchronous((seed % 3) as usize, 4),
                40,
                seed,
            );
            let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 40)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                outcome.global_decision_round().unwrap() <= Round::new(4),
                "seed {seed}: synchronous run decided after t+2"
            );
        }
    }

    #[test]
    fn random_es_runs_safe_and_live() {
        let config = cfg();
        for seed in 0..150u64 {
            let schedule = indulgent_sim::random_run(
                config,
                ModelKind::Es,
                indulgent_sim::RandomRunParams::eventually_synchronous((seed % 3) as usize, 6, 7),
                90,
                seed,
            );
            let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 90)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn failure_free_optimization_decides_at_round_2() {
        let config = cfg();
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let schedule = Schedule::failure_free(config, ModelKind::Es);
        let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4, 7]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(2)));
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(2));
        }
    }

    #[test]
    fn failure_free_optimization_falls_back_under_crashes() {
        // A crash in round 1 disables the round-2 decision but must not
        // break correctness; decision comes at t + 2 as usual.
        let config = cfg();
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let schedule = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_delivering_only(ProcessId::new(4), Round::new(1), [ProcessId::new(0)])
            .build(30)
            .unwrap();
        let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4, 7]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert!(outcome.global_decision_round().unwrap() <= Round::new(4));
    }

    #[test]
    fn failure_free_optimization_safe_in_random_runs() {
        let config = cfg();
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        for seed in 0..200u64 {
            let schedule = indulgent_sim::random_run(
                config,
                ModelKind::Es,
                indulgent_sim::RandomRunParams::eventually_synchronous((seed % 3) as usize, 5, 6),
                90,
                seed,
            );
            let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4, 7]), &schedule, 90)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn diamond_s_variant_decides_at_t_plus_2_in_synchronous_runs() {
        use indulgent_fd::{CrashInfo, EventuallyStrongDetector, SuspicionScript};
        let config = cfg();
        let schedule = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_before_send(ProcessId::new(3), Round::new(2))
            .build(30)
            .unwrap();
        let info = CrashInfo::new(config.processes().map(|p| schedule.crash_round(p)).collect());
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            let detector = EventuallyStrongDetector::new(
                info.clone(),
                Round::FIRST, // accurate from the start: a synchronous run
                ProcessId::new(0),
                SuspicionScript::new(),
            );
            AtPlus2::with_detector(config, id, v, RotatingCoordinator::new(config, id), detector)
        };
        let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4, 7]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
    }

    #[test]
    fn diamond_s_variant_survives_persistent_false_suspicions() {
        use indulgent_fd::{CrashInfo, EventuallyStrongDetector, SuspicionScript};
        // ◇S may falsely suspect all but one process forever. Script: every
        // process suspects p1 in every round (p1 is correct!); only p0 is
        // eventually trusted. Decision must still happen, via C.
        let config = cfg();
        let mut script = SuspicionScript::new();
        for k in 1..=60u32 {
            for obs in 0..5usize {
                if obs != 1 {
                    script.insert((k, obs), ProcessSet::from_ids([ProcessId::new(1)]));
                }
            }
        }
        let info = CrashInfo::none(5);
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            let detector = EventuallyStrongDetector::new(
                info.clone(),
                Round::new(1),
                ProcessId::new(0),
                script.clone(),
            );
            AtPlus2::with_detector(config, id, v, RotatingCoordinator::new(config, id), detector)
        };
        let schedule = Schedule::failure_free(config, ModelKind::Es);
        let outcome = run_schedule(&f, &vals(&[6, 2, 8, 4, 7]), &schedule, 60)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
    }
}
