//! The Hurfin–Raynal-style baseline: 2-round coordinator phases.
//!
//! The paper compares `A_{t+2}` against the most efficient indulgent
//! algorithm previously known (Hurfin & Raynal's ◇S consensus), which has a
//! synchronous run requiring **2t + 2** rounds for a global decision. This
//! module implements a behavioural equivalent with the same round shape:
//! each phase has a rotating coordinator and costs two rounds — a *propose*
//! round and an all-to-all *echo* round — so a run in which the first `t`
//! coordinators crash decides only at round `2(t + 1) = 2t + 2`.
//!
//! Protocol per phase `p` with coordinator `c_p = p_{(p-1) mod n}`:
//!
//! * round `2p - 1`: `c_p` broadcasts a proposal (its estimate pick from the
//!   previous echo round); receivers adopt it with timestamp `p`;
//! * round `2p`: everyone echoes `(adopted?, est, ts)`. A process seeing
//!   `n - t` echoes that adopted the same `v` decides `v`; a process seeing
//!   at least one such echo adopts `v` indirectly. Everyone remembers the
//!   echoed `(est, ts)` pairs — the next coordinator picks the highest
//!   timestamped estimate from them, which preserves the majority lock.
//!
//! Failure-free synchronous runs decide at round 2 (matching the known lower
//! bound for well-behaved runs), but each crashed coordinator costs a full
//! phase, which is exactly the 2t + 2 worst case the paper cites.

use indulgent_model::{Delivery, ProcessId, Round, RoundProcess, Step, SystemConfig, Value};

/// Messages of [`CoordinatorEcho`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CeMsg {
    /// Coordinator proposal for a phase.
    Propose {
        /// Phase number.
        phase: u64,
        /// Proposed value.
        value: Value,
    },
    /// All-to-all echo closing a phase.
    Echo {
        /// Phase number.
        phase: u64,
        /// `Some(v)` if the sender adopted the coordinator's `v` this phase.
        adopted: Option<Value>,
        /// Sender's current estimate.
        est: Value,
        /// Phase at which `est` was last adopted.
        ts: u64,
    },
    /// Decision relay.
    Decide(Value),
    /// Filler message.
    Noop,
}

fn phase_pos(round: Round) -> (u64, bool) {
    let r = u64::from(round.get());
    let phase = (r - 1) / 2 + 1;
    let is_echo = (r - 1) % 2 == 1;
    (phase, is_echo)
}

/// The 2-round-per-phase rotating-coordinator baseline (see module docs).
#[derive(Debug, Clone)]
pub struct CoordinatorEcho {
    config: SystemConfig,
    id: ProcessId,
    est: Value,
    ts: u64,
    adopted: Option<Value>,
    /// `(est, ts)` pairs observed in the latest echo round, feeding the next
    /// coordinator's pick.
    echo_view: Vec<(Value, u64)>,
    decided: Option<Value>,
    reported: bool,
}

impl CoordinatorEcho {
    /// Creates the automaton for process `id` proposing `proposal`.
    #[must_use]
    pub fn new(config: SystemConfig, id: ProcessId, proposal: Value) -> Self {
        CoordinatorEcho {
            config,
            id,
            est: proposal,
            ts: 0,
            adopted: None,
            echo_view: Vec::new(),
            decided: None,
            reported: false,
        }
    }

    /// The coordinator of `phase`.
    #[must_use]
    pub fn coordinator(&self, phase: u64) -> ProcessId {
        ProcessId::new(((phase - 1) % self.config.n() as u64) as usize)
    }

    fn decide(&mut self, v: Value) -> Step {
        if self.decided.is_none() {
            self.decided = Some(v);
        }
        if self.reported {
            Step::Continue
        } else {
            self.reported = true;
            Step::Decide(v)
        }
    }

    /// The coordinator's proposal pick: the highest-timestamp estimate seen
    /// in the previous echo round (ties towards the smaller value), or the
    /// coordinator's own estimate in phase 1.
    fn pick(&self) -> Value {
        self.echo_view
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map_or(self.est, |&(v, _)| v)
    }
}

impl RoundProcess for CoordinatorEcho {
    type Msg = CeMsg;

    fn send(&mut self, round: Round) -> CeMsg {
        if let Some(v) = self.decided {
            return CeMsg::Decide(v);
        }
        let (phase, is_echo) = phase_pos(round);
        if is_echo {
            CeMsg::Echo { phase, adopted: self.adopted, est: self.est, ts: self.ts }
        } else if self.coordinator(phase) == self.id {
            CeMsg::Propose { phase, value: self.pick() }
        } else {
            CeMsg::Noop
        }
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<CeMsg>) -> Step {
        for m in delivery.messages() {
            if let CeMsg::Decide(v) = m.msg {
                return self.decide(v);
            }
        }
        if self.decided.is_some() {
            return Step::Continue;
        }

        let (phase, is_echo) = phase_pos(round);
        if !is_echo {
            // Propose round: adopt the coordinator's value if it arrived.
            self.adopted = None;
            let coord = self.coordinator(phase);
            if let Some(CeMsg::Propose { phase: p, value }) = delivery.current_from(coord) {
                if *p == phase {
                    self.est = *value;
                    self.ts = phase;
                    self.adopted = Some(*value);
                }
            }
            Step::Continue
        } else {
            // Echo round: count adoptions, remember the views.
            let mut counts: std::collections::BTreeMap<Value, usize> = Default::default();
            self.echo_view.clear();
            let mut indirect: Option<Value> = None;
            for m in delivery.current() {
                if let CeMsg::Echo { phase: p, adopted, est, ts } = m.msg {
                    if p == phase {
                        self.echo_view.push((est, ts));
                        if let Some(v) = adopted {
                            *counts.entry(v).or_default() += 1;
                            indirect = Some(match indirect {
                                Some(w) => w.min(v),
                                None => v,
                            });
                        }
                    }
                }
            }
            self.adopted = None;
            for (&v, &count) in counts.iter() {
                if count >= self.config.quorum() {
                    return self.decide(v);
                }
            }
            if let Some(v) = indirect {
                // Someone adopted the coordinator's value this phase: adopt
                // it indirectly to speed convergence (at most one value can
                // be adopted per phase, so `indirect` is unambiguous).
                self.est = v;
                self.ts = phase;
            }
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessFactory, Value};
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    fn factory(config: SystemConfig) -> impl ProcessFactory<Process = CoordinatorEcho> {
        move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v)
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn failure_free_decides_at_round_two() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(2)));
        // Decision is the phase-1 coordinator's proposal.
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(3));
        }
    }

    #[test]
    fn each_coordinator_crash_costs_two_rounds() {
        // Coordinators p0 and p1 crash before proposing: decision lands at
        // round 2t + 2 = 6 — the Hurfin–Raynal worst-case shape.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(1))
            .crash_before_send(ProcessId::new(1), Round::new(3))
            .build(20)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(6)));
    }

    #[test]
    fn one_coordinator_crash_decides_at_round_four() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(1))
            .build(20)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
    }

    #[test]
    fn partial_echo_delivery_preserves_agreement() {
        // The coordinator's proposal is delayed to two processes during an
        // asynchronous prefix; agreement must survive.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(5))
            .delay(Round::new(1), ProcessId::new(0), ProcessId::new(3), Round::new(5))
            .delay(Round::new(1), ProcessId::new(0), ProcessId::new(4), Round::new(5))
            .build(30)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
    }

    #[test]
    fn random_runs_satisfy_consensus() {
        for seed in 0..200u64 {
            let schedule = indulgent_sim::random_run(
                cfg(),
                ModelKind::Es,
                indulgent_sim::RandomRunParams::synchronous((seed % 3) as usize, 6),
                60,
                seed,
            );
            let outcome = run_schedule(&factory(cfg()), &vals(&[9, 2, 5, 2, 8]), &schedule, 60)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_es_runs_safe_and_live() {
        for seed in 0..100u64 {
            let schedule = indulgent_sim::random_run(
                cfg(),
                ModelKind::Es,
                indulgent_sim::RandomRunParams::eventually_synchronous((seed % 3) as usize, 6, 8),
                80,
                seed,
            );
            let outcome = run_schedule(&factory(cfg()), &vals(&[9, 2, 5, 2, 8]), &schedule, 80)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
