//! Indulgent consensus algorithms with the `t + 2` fast-decision property.
//!
//! This crate is the primary contribution of the workspace's reproduction
//! of *"The inherent price of indulgence"* (Dutta & Guerraoui, PODC 2002 /
//! Distributed Computing 2005). The paper proves that any consensus
//! algorithm tolerating eventual synchrony needs `t + 2` rounds even in
//! runs that happen to be synchronous — one round more than the classic
//! `t + 1` bound of the synchronous model — and exhibits a matching
//! algorithm. Everything here runs on the round automaton interface of
//! [`indulgent_model`], under the deterministic simulator
//! (`indulgent-sim`), the exhaustive checker (`indulgent-checker`) or the
//! threaded runtime (`indulgent-runtime`).
//!
//! # The algorithms
//!
//! | Type | Paper artifact | Model | Fast decision |
//! |---|---|---|---|
//! | [`AtPlus2`] | Fig. 2 | ES, `t < n/2` | `t + 2` in every synchronous run |
//! | [`AtPlus2::with_detector`] | Fig. 3 (`A_◇S`) | ◇S rounds | `t + 2` in synchronous runs |
//! | [`AtPlus2::with_failure_free_optimization`] | Fig. 4 | ES | round 2 when failure-free |
//! | [`AfPlus2`] | Fig. 5 | ES, `t < n/3` | `k + f + 2` when synchronous after `k` |
//! | [`FloodSet`] | Lynch's FloodSet | SCS | `t + 1` in every run (contrast) |
//! | [`EarlyFloodSet`] | early-deciding uniform consensus [4,11] | SCS | `min(f + 2, t + 1)` |
//! | [`FloodSetWs`] | [3]'s FloodSetWS | P rounds | `t + 1`; *not* indulgent (ablation) |
//! | [`RotatingCoordinator`] | "any ◇S algorithm C" | ES, `t < n/2` | — (fallback, `3t + 3` worst case) |
//! | [`CoordinatorEcho`] | Hurfin–Raynal baseline | ES, `t < n/2` | `2t + 2` worst case |
//! | [`LeaderEcho`] | Mostefaoui–Raynal `AMR` | ES, `t < n/3` | `k + 2f + 2` |
//!
//! # Quickstart
//!
//! ```
//! use indulgent_consensus::{AtPlus2, RotatingCoordinator};
//! use indulgent_model::{ProcessId, Round, SystemConfig, Value};
//! use indulgent_sim::{run_schedule, ModelKind, Schedule};
//!
//! let cfg = SystemConfig::majority(5, 2)?;
//! let factory = move |i: usize, v: Value| {
//!     let id = ProcessId::new(i);
//!     AtPlus2::new(cfg, id, v, RotatingCoordinator::new(cfg, id))
//! };
//! let proposals: Vec<Value> = [6, 2, 8, 4, 7].map(Value::new).to_vec();
//! let schedule = Schedule::failure_free(cfg, ModelKind::Es);
//! let outcome = run_schedule(&factory, &proposals, &schedule, 30)?;
//!
//! outcome.check_consensus()?;
//! // Global decision at exactly t + 2 = 4 in this synchronous run.
//! assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod af_plus2;
mod at_plus2;
mod coordinator_echo;
mod early_floodset;
mod floodset;
mod floodset_ws;
mod leader_echo;
mod rotating;
mod underlying;

pub use af_plus2::{AfMsg, AfPlus2};
pub use at_plus2::{AtMsg, AtPlus2};
pub use coordinator_echo::{CeMsg, CoordinatorEcho};
pub use early_floodset::EarlyFloodSet;
pub use floodset::FloodSet;
pub use floodset_ws::FloodSetWs;
pub use leader_echo::{LeMsg, LeaderEcho};
pub use rotating::{RcMsg, RotatingCoordinator};
pub use underlying::{Delayed, Standalone, UnderlyingConsensus};

/// The `A_◇S` variant of `A_{t+2}` (paper Sect. 5.1): same algorithm,
/// suspicions read from an eventually strong failure detector.
pub type ADiamondS<C> = AtPlus2<C, indulgent_fd::EventuallyStrongDetector>;
