//! The pluggable underlying consensus `C` used by `A_{t+2}`.
//!
//! The paper's algorithm assumes "an independent consensus algorithm C in ES
//! when 0 < t < n/2" (assumption 3, Sect. 3) and achieves its fast-decision
//! property *regardless of the time complexity of C*. The
//! [`UnderlyingConsensus`] trait captures exactly the interface `A_{t+2}`
//! needs: propose once, then drive rounds; [`Standalone`] adapts any such
//! algorithm into a [`RoundProcess`] so it can also be run (and measured) on
//! its own, and [`Delayed`] wraps an algorithm to make it artificially slow
//! — used by tests to demonstrate that `A_{t+2}`'s round-`t + 2` decision in
//! synchronous runs does not depend on `C`'s speed.

use indulgent_model::{DeliveredMsg, Delivery, Round, RoundProcess, Step, Value};

/// A consensus algorithm usable as the fallback `C` of `A_{t+2}`.
///
/// Lifecycle: exactly one [`propose`](UnderlyingConsensus::propose) call,
/// then alternating [`send`](UnderlyingConsensus::send) /
/// [`deliver`](UnderlyingConsensus::deliver) with *local* rounds
/// `1, 2, 3, …` (the embedding algorithm translates global rounds). The
/// first `deliver` returning `Some(v)` is the decision; afterwards the
/// algorithm keeps participating (relaying its decision) but further
/// returns are ignored by callers.
///
/// Like [`RoundProcess`], an underlying consensus must be [`Clone`]: it is
/// embedded in `A_{t+2}`'s automaton state, which the incremental sweep
/// engine snapshots and forks at schedule branch points.
pub trait UnderlyingConsensus: Clone {
    /// The message type exchanged by this algorithm.
    type Msg: Clone + std::fmt::Debug;

    /// Fixes the proposal. Called exactly once, before the first `send`
    /// (or once per instance after a [`reset`](UnderlyingConsensus::reset)).
    fn propose(&mut self, value: Value);

    /// Rewinds the algorithm to its pre-[`propose`](UnderlyingConsensus::propose)
    /// state, keeping configuration (and any buffer capacity) intact.
    ///
    /// This is the *instance-reset hook* used by the multi-shot replicated
    /// log: chaining consensus instances reuses one automaton per process
    /// instead of rebuilding it, so per-instance startup allocates nothing.
    /// After `reset`, the lifecycle restarts: one `propose`, then rounds
    /// from local round 1.
    fn reset(&mut self);

    /// The message broadcast in local round `round`.
    fn send(&mut self, round: Round) -> Self::Msg;

    /// Handles the receive phase of local round `round`; returns the
    /// decision the first time one is reached.
    fn deliver(&mut self, round: Round, delivery: &Delivery<Self::Msg>) -> Option<Value>;
}

/// Adapter running an [`UnderlyingConsensus`] as a standalone
/// [`RoundProcess`].
///
/// # Examples
///
/// ```
/// use indulgent_consensus::{RotatingCoordinator, Standalone};
/// use indulgent_model::{SystemConfig, Value, ProcessId};
///
/// let cfg = SystemConfig::majority(3, 1)?;
/// let process = Standalone::new(
///     RotatingCoordinator::new(cfg, ProcessId::new(0)),
///     Value::new(7),
/// );
/// # let _ = process;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Standalone<C> {
    inner: C,
    decided: bool,
}

impl<C: UnderlyingConsensus> Standalone<C> {
    /// Wraps `inner`, proposing `value`.
    #[must_use]
    pub fn new(mut inner: C, value: Value) -> Self {
        inner.propose(value);
        Standalone { inner, decided: false }
    }

    /// Returns the wrapped algorithm.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: UnderlyingConsensus> RoundProcess for Standalone<C> {
    type Msg = C::Msg;

    fn send(&mut self, round: Round) -> C::Msg {
        self.inner.send(round)
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<C::Msg>) -> Step {
        match self.inner.deliver(round, delivery) {
            Some(v) if !self.decided => {
                self.decided = true;
                Step::Decide(v)
            }
            _ => Step::Continue,
        }
    }
}

/// Wrapper postponing an underlying consensus by `delay` rounds.
///
/// For the first `delay` local rounds the wrapped algorithm is silent
/// (sending `None`); afterwards it runs normally with shifted rounds. Used
/// to construct a deliberately slow `C` and verify the paper's claim that
/// `A_{t+2}`'s fast decision holds "regardless of the time complexity of C".
#[derive(Debug, Clone)]
pub struct Delayed<C> {
    inner: C,
    delay: u32,
}

impl<C: UnderlyingConsensus> Delayed<C> {
    /// Wraps `inner`, delaying its start by `delay` rounds.
    #[must_use]
    pub fn new(inner: C, delay: u32) -> Self {
        Delayed { inner, delay }
    }
}

impl<C: UnderlyingConsensus> UnderlyingConsensus for Delayed<C> {
    type Msg = Option<C::Msg>;

    fn propose(&mut self, value: Value) {
        self.inner.propose(value);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn send(&mut self, round: Round) -> Option<C::Msg> {
        if round.get() <= self.delay {
            None
        } else {
            Some(self.inner.send(Round::new(round.get() - self.delay)))
        }
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<Option<C::Msg>>) -> Option<Value> {
        if round.get() <= self.delay {
            return None;
        }
        let local = Round::new(round.get() - self.delay);
        let messages: Vec<DeliveredMsg<C::Msg>> = delivery
            .messages()
            .iter()
            .filter_map(|m| {
                // Messages sent during the silent prefix carry `None`.
                let sent = m.sent_round.get().checked_sub(self.delay)?;
                if sent == 0 {
                    return None;
                }
                m.msg.clone().map(|inner| DeliveredMsg {
                    sender: m.sender,
                    sent_round: Round::new(sent),
                    msg: inner,
                })
            })
            .collect();
        self.inner.deliver(local, &Delivery::new(local, messages))
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::ProcessId;

    use super::*;

    /// A toy underlying consensus: decides its proposal at local round 3.
    #[derive(Debug, Clone)]
    struct FixedAtThree {
        value: Option<Value>,
    }

    impl UnderlyingConsensus for FixedAtThree {
        type Msg = u8;

        fn propose(&mut self, value: Value) {
            self.value = Some(value);
        }

        fn reset(&mut self) {
            self.value = None;
        }

        fn send(&mut self, round: Round) -> u8 {
            round.get() as u8
        }

        fn deliver(&mut self, round: Round, _delivery: &Delivery<u8>) -> Option<Value> {
            (round.get() == 3).then(|| self.value.expect("proposed"))
        }
    }

    #[test]
    fn standalone_decides_once() {
        let mut p = Standalone::new(FixedAtThree { value: None }, Value::new(9));
        for k in 1..=4u32 {
            let round = Round::new(k);
            let _ = p.send(round);
            let step = p.deliver(round, &Delivery::new(round, vec![]));
            match k {
                3 => assert_eq!(step, Step::Decide(Value::new(9))),
                _ => assert_eq!(step, Step::Continue),
            }
        }
    }

    #[test]
    fn delayed_shifts_rounds_and_messages() {
        let mut d = Delayed::new(FixedAtThree { value: None }, 2);
        d.propose(Value::new(5));
        // Silent prefix.
        assert_eq!(d.send(Round::new(1)), None);
        assert_eq!(d.send(Round::new(2)), None);
        assert_eq!(d.deliver(Round::new(2), &Delivery::new(Round::new(2), vec![])), None);
        // Local round 1 at global 3.
        assert_eq!(d.send(Round::new(3)), Some(1));
        // Local round 3 (decision) at global 5; also check message mapping.
        assert_eq!(d.deliver(Round::new(3), &Delivery::new(Round::new(3), vec![])), None);
        assert_eq!(d.send(Round::new(4)), Some(2));
        assert_eq!(d.deliver(Round::new(4), &Delivery::new(Round::new(4), vec![])), None);
        assert_eq!(d.send(Round::new(5)), Some(3));
        let delivery = Delivery::new(
            Round::new(5),
            vec![
                // A real message sent at global 5 (local 3).
                DeliveredMsg {
                    sender: ProcessId::new(1),
                    sent_round: Round::new(5),
                    msg: Some(3u8),
                },
                // A silent-prefix message: must be dropped.
                DeliveredMsg { sender: ProcessId::new(2), sent_round: Round::new(2), msg: None },
            ],
        );
        assert_eq!(d.deliver(Round::new(5), &delivery), Some(Value::new(5)));
    }
}
