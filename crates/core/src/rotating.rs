//! A rotating-coordinator indulgent consensus for `t < n/2`.
//!
//! This is the workspace's stand-in for "any ◇S consensus algorithm C"
//! (e.g. Chandra–Toueg) that `A_{t+2}` assumes as its fallback. Each phase
//! takes three rounds:
//!
//! 1. **Estimate** — everyone broadcasts `(est, ts)`; the phase coordinator
//!    picks the estimate with the highest timestamp;
//! 2. **Propose** — the coordinator broadcasts its pick; receivers adopt it
//!    (setting their timestamp to the phase number);
//! 3. **Ack** — everyone reports whether it adopted; a process seeing
//!    `n - t` acks for the same value decides it.
//!
//! Uniform agreement follows from majority locking: a decision at phase `p`
//! means `n - t > n/2` processes hold `(v, ts = p)`, so every later
//! coordinator's estimate pick (which reads `n - t` estimates) intersects
//! the lock and selects `v`. Decisions are relayed with `DECIDE` messages.
//!
//! In the worst-case synchronous run the first `t` coordinators crash one
//! phase after another, costing three rounds each: global decision at round
//! `3t + 3`. That is *slower* than both the paper's `A_{t+2}` (`t + 2`) and
//! the Hurfin–Raynal-style baseline (`2t + 2`), which is fine — it plays
//! the role of the arbitrarily slow fallback.

use indulgent_model::{Delivery, ProcessId, Round, SystemConfig, Value};

use crate::underlying::UnderlyingConsensus;

/// Messages of [`RotatingCoordinator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcMsg {
    /// Round 1 of a phase: current estimate and its adoption timestamp.
    Estimate {
        /// Phase number.
        phase: u64,
        /// Sender's estimate.
        est: Value,
        /// Phase at which `est` was last adopted (0 = initial).
        ts: u64,
    },
    /// Round 2 of a phase: the coordinator's proposal.
    Propose {
        /// Phase number.
        phase: u64,
        /// Proposed value.
        value: Value,
    },
    /// Round 3 of a phase: did the sender adopt the proposal?
    Ack {
        /// Phase number.
        phase: u64,
        /// `Some(v)` if the sender adopted `v` this phase.
        adopted: Option<Value>,
    },
    /// Decision relay.
    Decide(Value),
    /// Filler for rounds in which a process has nothing to say (the model
    /// requires a message every round).
    Noop,
}

/// Position of a local round within its 3-round phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pos {
    Estimate,
    Propose,
    Ack,
}

fn phase_pos(round: Round) -> (u64, Pos) {
    let r = u64::from(round.get());
    let phase = (r - 1) / 3 + 1;
    let pos = match (r - 1) % 3 {
        0 => Pos::Estimate,
        1 => Pos::Propose,
        _ => Pos::Ack,
    };
    (phase, pos)
}

/// The rotating-coordinator consensus algorithm (see module docs).
#[derive(Debug, Clone)]
pub struct RotatingCoordinator {
    config: SystemConfig,
    id: ProcessId,
    est: Value,
    ts: u64,
    /// Coordinator's pick for the current phase, set in the estimate round.
    pick: Option<Value>,
    /// Value adopted from the coordinator in the current phase.
    adopted: Option<Value>,
    decided: Option<Value>,
    reported: bool,
}

impl RotatingCoordinator {
    /// Creates the automaton for process `id` in system `config`. The
    /// proposal is supplied later via [`UnderlyingConsensus::propose`].
    #[must_use]
    pub fn new(config: SystemConfig, id: ProcessId) -> Self {
        RotatingCoordinator {
            config,
            id,
            est: Value::ZERO,
            ts: 0,
            pick: None,
            adopted: None,
            decided: None,
            reported: false,
        }
    }

    /// The coordinator of `phase`: processes rotate in id order.
    #[must_use]
    pub fn coordinator(&self, phase: u64) -> ProcessId {
        ProcessId::new(((phase - 1) % self.config.n() as u64) as usize)
    }

    fn decide(&mut self, v: Value) -> Option<Value> {
        if self.decided.is_none() {
            self.decided = Some(v);
        }
        if self.reported {
            None
        } else {
            self.reported = true;
            self.decided
        }
    }
}

impl UnderlyingConsensus for RotatingCoordinator {
    type Msg = RcMsg;

    fn propose(&mut self, value: Value) {
        self.est = value;
        self.ts = 0;
    }

    fn reset(&mut self) {
        self.est = Value::ZERO;
        self.ts = 0;
        self.pick = None;
        self.adopted = None;
        self.decided = None;
        self.reported = false;
    }

    fn send(&mut self, round: Round) -> RcMsg {
        if let Some(v) = self.decided {
            return RcMsg::Decide(v);
        }
        let (phase, pos) = phase_pos(round);
        match pos {
            Pos::Estimate => RcMsg::Estimate { phase, est: self.est, ts: self.ts },
            Pos::Propose => match self.pick.take() {
                Some(value) if self.coordinator(phase) == self.id => {
                    RcMsg::Propose { phase, value }
                }
                _ => RcMsg::Noop,
            },
            Pos::Ack => RcMsg::Ack { phase, adopted: self.adopted },
        }
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<RcMsg>) -> Option<Value> {
        // Decision relay first: any DECIDE, current or delayed, settles it.
        for m in delivery.messages() {
            if let RcMsg::Decide(v) = m.msg {
                return self.decide(v);
            }
        }
        if self.decided.is_some() {
            return None;
        }

        let (phase, pos) = phase_pos(round);
        match pos {
            Pos::Estimate => {
                if self.coordinator(phase) == self.id {
                    // Highest timestamp wins; ties break towards the
                    // smallest value for determinism.
                    let best = delivery
                        .current()
                        .filter_map(|m| match m.msg {
                            RcMsg::Estimate { phase: p, est, ts } if p == phase => Some((ts, est)),
                            _ => None,
                        })
                        .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
                    self.pick = best.map(|(_, est)| est);
                }
                None
            }
            Pos::Propose => {
                self.adopted = None;
                let coord = self.coordinator(phase);
                if let Some(RcMsg::Propose { phase: p, value }) = delivery.current_from(coord) {
                    if *p == phase {
                        self.est = *value;
                        self.ts = phase;
                        self.adopted = Some(*value);
                    }
                }
                None
            }
            Pos::Ack => {
                let mut counts: std::collections::BTreeMap<Value, usize> = Default::default();
                for m in delivery.current() {
                    if let RcMsg::Ack { phase: p, adopted: Some(v) } = m.msg {
                        if p == phase {
                            *counts.entry(v).or_default() += 1;
                        }
                    }
                }
                self.adopted = None;
                let quorum = self.config.quorum();
                for (v, count) in counts {
                    if count >= quorum {
                        return self.decide(v);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessFactory, SystemConfig, Value};
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;
    use crate::underlying::Standalone;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    fn factory(
        config: SystemConfig,
    ) -> impl ProcessFactory<Process = Standalone<RotatingCoordinator>> {
        move |i: usize, v: Value| {
            Standalone::new(RotatingCoordinator::new(config, ProcessId::new(i)), v)
        }
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn phase_positions() {
        assert_eq!(phase_pos(Round::new(1)), (1, Pos::Estimate));
        assert_eq!(phase_pos(Round::new(2)), (1, Pos::Propose));
        assert_eq!(phase_pos(Round::new(3)), (1, Pos::Ack));
        assert_eq!(phase_pos(Round::new(4)), (2, Pos::Estimate));
        assert_eq!(phase_pos(Round::new(7)), (3, Pos::Estimate));
    }

    #[test]
    fn coordinator_rotates() {
        let rc = RotatingCoordinator::new(cfg(), ProcessId::new(0));
        assert_eq!(rc.coordinator(1), ProcessId::new(0));
        assert_eq!(rc.coordinator(5), ProcessId::new(4));
        assert_eq!(rc.coordinator(6), ProcessId::new(0));
    }

    #[test]
    fn failure_free_run_decides_in_one_phase() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        // Phase 1: everyone decides the coordinator's pick at round 3.
        assert_eq!(outcome.global_decision_round(), Some(Round::new(3)));
    }

    #[test]
    fn coordinator_crash_costs_a_phase() {
        // p0 (phase 1 coordinator) crashes before proposing in round 2.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(2))
            .build(30)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(6)));
    }

    #[test]
    fn two_coordinator_crashes_cost_two_phases() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(2))
            .crash_before_send(ProcessId::new(1), Round::new(5))
            .build(30)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        // 3t + 3 with t = 2 coordinator crashes.
        assert_eq!(outcome.global_decision_round(), Some(Round::new(9)));
    }

    #[test]
    fn validity_holds_with_identical_proposals() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[7, 7, 7, 7, 7]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(7));
        }
    }

    #[test]
    fn asynchronous_prefix_delays_but_does_not_break() {
        // Delay the phase-1 proposal to two processes (async until round 4):
        // they miss adoption, but the quorum still decides, and the
        // stragglers decide on the DECIDE relay.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(4))
            .delay(Round::new(2), ProcessId::new(0), ProcessId::new(3), Round::new(4))
            .delay(Round::new(2), ProcessId::new(0), ProcessId::new(4), Round::new(4))
            .build(40)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 40)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
    }

    #[test]
    fn random_synchronous_runs_satisfy_consensus() {
        for seed in 0..200u64 {
            let schedule = indulgent_sim::random_run(
                cfg(),
                ModelKind::Es,
                indulgent_sim::RandomRunParams::synchronous((seed % 3) as usize, 6),
                60,
                seed,
            );
            let outcome = run_schedule(&factory(cfg()), &vals(&[3, 1, 4, 1, 5]), &schedule, 60)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
