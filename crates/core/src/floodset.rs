//! `FloodSet`: the classic synchronous-model consensus (Lynch).
//!
//! In SCS, flooding estimates for `t + 1` rounds and deciding the minimum
//! achieves global decision at round `t + 1` in *every* run — the matching
//! upper bound for the classic `t + 1` lower bound. The paper uses this
//! contrast (Sect. 1.3) to quantify the price of indulgence: the same
//! problem needs `t + 2` rounds in ES.
//!
//! The correctness argument needs the SCS delivery guarantee: among rounds
//! `1..=t+1` at least one is crash-free, after which all alive processes
//! hold the same minimum, so everyone decides the same value at `t + 1`.
//! Running this automaton in ES (where false suspicions delay messages
//! without crashes) violates agreement — which is precisely the point of
//! the paper, and is demonstrated by `exp_scs_contrast` and the ablation
//! tests.

use indulgent_model::{Delivery, Round, RoundProcess, Step, SystemConfig, Value};

/// The FloodSet automaton for SCS. Decides at the end of round `t + 1`.
#[derive(Debug, Clone)]
pub struct FloodSet {
    decide_round: Round,
    est: Value,
    decided: bool,
}

impl FloodSet {
    /// Creates the automaton proposing `proposal` in system `config`.
    #[must_use]
    pub fn new(config: SystemConfig, proposal: Value) -> Self {
        FloodSet { decide_round: Round::new(config.t() as u32 + 1), est: proposal, decided: false }
    }

    /// Creates a FloodSet variant deciding at the end of `round` instead of
    /// `t + 1`.
    ///
    /// Deciding earlier than `t + 1` is **unsound** — that is the point: the
    /// checker uses this constructor to demonstrate, by exhaustive search,
    /// that a `t`-round variant violates agreement in some serial run
    /// (the classic `t + 1` lower bound made executable).
    #[must_use]
    pub fn deciding_at(round: Round, proposal: Value) -> Self {
        FloodSet { decide_round: round, est: proposal, decided: false }
    }

    /// The current estimate (minimum value seen so far).
    #[must_use]
    pub fn estimate(&self) -> Value {
        self.est
    }
}

impl RoundProcess for FloodSet {
    type Msg = Value;

    fn send(&mut self, _round: Round) -> Value {
        self.est
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
        for m in delivery.current() {
            self.est = self.est.min(m.msg);
        }
        if round >= self.decide_round && !self.decided {
            self.decided = true;
            Step::Decide(self.est)
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessFactory, ProcessId, Value};
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::synchronous(4, 2).unwrap()
    }

    fn factory(config: SystemConfig) -> impl ProcessFactory<Process = FloodSet> {
        move |_i: usize, v: Value| FloodSet::new(config, v)
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn decides_min_at_t_plus_one_when_failure_free() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Scs);
        let outcome = run_schedule(&factory(cfg()), &vals(&[6, 2, 8, 4]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(3))); // t + 1
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(2));
        }
    }

    #[test]
    fn chain_of_crashes_still_agrees_at_t_plus_one() {
        // The classic hard case: a value travels through a chain of
        // crashing processes. p1 (holding the minimum) crashes in round 1
        // delivering only to p0; p0 crashes in round 2 delivering only to
        // p2. Round 3 (= t + 1) is clean, so all decide together.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Scs)
            .crash_delivering_only(ProcessId::new(1), Round::new(1), [ProcessId::new(0)])
            .crash_delivering_only(ProcessId::new(0), Round::new(2), [ProcessId::new(2)])
            .build(10)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[6, 2, 8, 4]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        // p2 and p3 both decide 2: the value reached p2 via the chain and
        // p3 hears it from p2's round-3 flood.
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(2));
        assert_eq!(outcome.decision_of(ProcessId::new(3)).unwrap().value, Value::new(2));
    }

    #[test]
    fn hidden_value_never_decided_by_anyone() {
        // p1 crashes before sending anything: its minimum proposal is
        // invisible and must not be decided.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Scs)
            .crash_before_send(ProcessId::new(1), Round::new(1))
            .build(10)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[6, 2, 8, 4]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(4));
        }
    }

    #[test]
    fn exhaustive_serial_runs_satisfy_consensus_in_scs() {
        // Every serial SCS run of n=4, t=2 must satisfy all three consensus
        // properties with decision exactly at round t + 1 = 3.
        let config = cfg();
        let mut runs = 0u32;
        let _ = indulgent_sim::for_each_serial_schedule(config, ModelKind::Scs, 3, |schedule| {
            let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4]), schedule, 10)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap();
            assert_eq!(outcome.global_decision_round(), Some(Round::new(3)));
            runs += 1;
            std::ops::ControlFlow::Continue(())
        });
        assert!(runs > 1000, "expected a substantial run space, got {runs}");
    }

    #[test]
    fn estimate_accessor_tracks_minimum() {
        let mut fs = FloodSet::new(cfg(), Value::new(9));
        assert_eq!(fs.estimate(), Value::new(9));
        let d = Delivery::new(
            Round::FIRST,
            vec![indulgent_model::DeliveredMsg {
                sender: ProcessId::new(1),
                sent_round: Round::FIRST,
                msg: Value::new(4),
            }],
        );
        let _ = fs.deliver(Round::FIRST, &d);
        assert_eq!(fs.estimate(), Value::new(4));
    }
}
