//! `A_{f+2}`: fast *eventual* decision for `t < n/3` (paper Fig. 5).
//!
//! Section 6 of the paper asks how quickly consensus can be reached once a
//! run *becomes* synchronous: if a run is synchronous after round `k` and
//! suffers `f` crashes after `k`, the modified lower bound says some process
//! decides at round `k + f + 2` or later. `A_{f+2}` matches that bound for
//! `t < n/3` (closing the gap for `n/3 ≤ t < n/2` is stated as an open
//! problem).
//!
//! The algorithm is an optimized version of Mostefaoui & Raynal's
//! leader-based consensus, built on the observation that when `t < n/3`, in
//! any collection of at least `n - t` values out of `n`, a value occurring
//! `n - t` times overall still occurs at least `n - 2t` times, and no other
//! value can reach `n - 2t`. Per round, each process:
//!
//! 1. decides immediately on any `DECIDE` message received (round `k` or
//!    lower);
//! 2. otherwise selects the `n - t` `ESTIMATE` messages with the lowest
//!    sender ids; if all carry the same value it decides it; else if some
//!    value occurs at least `n - 2t` times it adopts it; else it adopts the
//!    minimum;
//! 3. having decided, it broadcasts its decision in every later round.

use indulgent_model::{Delivery, ProcessId, Round, RoundProcess, Step, SystemConfig, Value};

/// Messages of [`AfPlus2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfMsg {
    /// Current estimate.
    Estimate(Value),
    /// Decision relay.
    Decide(Value),
}

/// The `A_{f+2}` automaton (see module docs). Requires `t < n/3`.
#[derive(Debug, Clone)]
pub struct AfPlus2 {
    config: SystemConfig,
    id: ProcessId,
    est: Value,
    decided: Option<Value>,
    reported: bool,
}

impl AfPlus2 {
    /// Creates the automaton for process `id` proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not satisfy `t < n/3`.
    #[must_use]
    pub fn new(config: SystemConfig, id: ProcessId, proposal: Value) -> Self {
        assert!(3 * config.t() < config.n(), "AfPlus2 requires t < n/3");
        AfPlus2 { config, id, est: proposal, decided: None, reported: false }
    }

    /// The current estimate.
    #[must_use]
    pub fn estimate(&self) -> Value {
        self.est
    }

    /// Rewinds the automaton for the next consensus instance of a
    /// multi-shot (replicated-log) execution: a fresh run proposing
    /// `proposal`.
    pub fn reset_instance(&mut self, proposal: Value) {
        self.est = proposal;
        self.decided = None;
        self.reported = false;
    }

    fn decide(&mut self, v: Value) -> Step {
        if self.decided.is_none() {
            self.decided = Some(v);
        }
        if self.reported {
            Step::Continue
        } else {
            self.reported = true;
            Step::Decide(v)
        }
    }
}

impl RoundProcess for AfPlus2 {
    type Msg = AfMsg;

    fn send(&mut self, _round: Round) -> AfMsg {
        match self.decided {
            Some(v) => AfMsg::Decide(v),
            None => AfMsg::Estimate(self.est),
        }
    }

    fn deliver(&mut self, _round: Round, delivery: &Delivery<AfMsg>) -> Step {
        // Step 1: any DECIDE message (from this round or a lower one)
        // settles the decision.
        for m in delivery.messages() {
            if let AfMsg::Decide(v) = m.msg {
                return self.decide(v);
            }
        }
        if self.decided.is_some() {
            return Step::Continue;
        }

        // Step 2: the n - t lowest-sender-id current estimates.
        let mut ests: Vec<(ProcessId, Value)> = delivery
            .current()
            .filter_map(|m| match m.msg {
                AfMsg::Estimate(v) => Some((m.sender, v)),
                AfMsg::Decide(_) => None,
            })
            .collect();
        ests.sort_by_key(|&(sender, _)| sender);
        let quorum = self.config.quorum();
        debug_assert!(
            ests.len() >= quorum,
            "{}: t-resilience guarantees {quorum} estimates, got {}",
            self.id,
            ests.len()
        );
        ests.truncate(quorum);
        if ests.is_empty() {
            return Step::Continue;
        }

        let first = ests[0].1;
        if ests.iter().all(|&(_, v)| v == first) {
            return self.decide(first);
        }

        // n - 2t occurrence rule; at most one value can qualify.
        let threshold = self.config.small_quorum();
        let mut counts: std::collections::BTreeMap<Value, usize> = Default::default();
        for &(_, v) in &ests {
            *counts.entry(v).or_default() += 1;
        }
        if let Some((&v, _)) = counts.iter().find(|&(_, &c)| c >= threshold) {
            self.est = v;
        } else {
            self.est = ests.iter().map(|&(_, v)| v).min().expect("nonempty");
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessFactory, Value};
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::third(7, 2).unwrap()
    }

    fn factory(config: SystemConfig) -> impl ProcessFactory<Process = AfPlus2> {
        move |i: usize, v: Value| AfPlus2::new(config, ProcessId::new(i), v)
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    #[should_panic(expected = "t < n/3")]
    fn rejects_majority_only_config() {
        let bad = SystemConfig::majority(5, 2).unwrap();
        let _ = AfPlus2::new(bad, ProcessId::new(0), Value::ZERO);
    }

    #[test]
    fn failure_free_synchronous_decides_by_round_two() {
        // f = 0, k = 0: global decision by round f + 2 = 2.
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert!(outcome.global_decision_round().unwrap() <= Round::new(2));
    }

    #[test]
    fn identical_proposals_decide_in_round_one() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[5; 7]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::FIRST));
    }

    #[test]
    fn f_crashes_decide_by_f_plus_two() {
        // k = 0, f = 2 crashes: global decision by round f + 2 = 4.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(1))
            .crash_before_send(ProcessId::new(1), Round::new(2))
            .build(20)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert!(outcome.global_decision_round().unwrap() <= Round::new(4));
    }

    #[test]
    fn asynchronous_prefix_shifts_decision_by_k() {
        // Synchronous after round k = 3 (delays in rounds 1..=2), f = 0
        // crashes: global decision by k + f + 2 = 5.
        let schedule = indulgent_sim::random_run(
            cfg(),
            ModelKind::Es,
            indulgent_sim::RandomRunParams::eventually_synchronous(0, 1, 3),
            30,
            42,
        );
        let outcome = run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 30)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert!(outcome.global_decision_round().unwrap() <= Round::new(5));
    }

    #[test]
    fn exhaustive_serial_runs_meet_f_plus_two() {
        // For every serial run with f crashes, the run globally decides by
        // round f + 2 (k = 0). Exhaustive over n = 4, t = 1.
        let config = SystemConfig::third(4, 1).unwrap();
        let mut checked = 0u32;
        let _ = indulgent_sim::for_each_serial_schedule(config, ModelKind::Es, 3, |schedule| {
            let outcome = run_schedule(&factory(config), &vals(&[3, 1, 4, 1]), schedule, 20)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap();
            let f = schedule.crash_count() as u32;
            assert!(
                outcome.global_decision_round().unwrap() <= Round::new(f + 2),
                "serial run with f={f} decided late: {outcome:?}"
            );
            checked += 1;
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(checked, 97); // 1 + 3 rounds x 4 victims x 2^3 subsets
    }

    #[test]
    fn random_runs_satisfy_consensus() {
        for seed in 0..200u64 {
            let schedule = indulgent_sim::random_run(
                cfg(),
                ModelKind::Es,
                indulgent_sim::RandomRunParams::eventually_synchronous((seed % 3) as usize, 5, 6),
                60,
                seed,
            );
            let outcome =
                run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 60)
                    .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
