//! Early-deciding uniform consensus in SCS: `min(f + 2, t + 1)` rounds.
//!
//! The paper's Sect. 6 discusses *early decision*: in runs with only
//! `f < t` actual crashes, how fast can a decision come? For the
//! synchronous model the tight bound for **uniform** consensus is
//! `min(f + 2, t + 1)` (Charron-Bost & Schiper [4]; Keidar & Rajsbaum
//! [11]) — one round more than the `f + 1` of non-uniform consensus. This
//! module implements the classic quiescence-based algorithm achieving it,
//! as the SCS-side companion of the ES early-decision experiment (E7):
//!
//! * flood the estimate every round and take minima, as FloodSet does;
//! * call round `r` *quiescent* for `p_i` if the set of processes heard in
//!   round `r` equals the set heard in round `r - 1` (round 0 = everyone):
//!   no *new* crash became visible, so `p_i`'s estimate has stabilized at
//!   the global minimum of the surviving values;
//! * decide **one round after** the first quiescent round (the extra round
//!   makes the decision uniform: it gives the estimate one more hop, so a
//!   process that decides-then-crashes cannot leave a different value
//!   behind), or unconditionally at round `t + 1` (the FloodSet bound).
//!
//! With `f` crashes at most `f` rounds are non-quiescent, so the first
//! quiescent round is at most `f + 1` and the decision comes by
//! `min(f + 2, t + 1)`. The exhaustive checker sweeps in the tests verify
//! uniform agreement over every serial run for small systems.

use indulgent_model::{Delivery, ProcessSet, Round, RoundProcess, Step, SystemConfig, Value};

/// The early-deciding uniform consensus automaton for SCS (see module
/// docs).
#[derive(Debug, Clone)]
pub struct EarlyFloodSet {
    config: SystemConfig,
    est: Value,
    prev_heard: ProcessSet,
    /// Set when a quiescent round has been observed; decision follows one
    /// round later.
    quiescent_at: Option<Round>,
    decided: bool,
}

impl EarlyFloodSet {
    /// Creates the automaton proposing `proposal` in system `config`.
    #[must_use]
    pub fn new(config: SystemConfig, proposal: Value) -> Self {
        EarlyFloodSet {
            config,
            est: proposal,
            prev_heard: config.all(),
            quiescent_at: None,
            decided: false,
        }
    }

    /// The current estimate.
    #[must_use]
    pub fn estimate(&self) -> Value {
        self.est
    }

    /// The first quiescent round observed so far, if any.
    #[must_use]
    pub fn quiescent_at(&self) -> Option<Round> {
        self.quiescent_at
    }
}

impl RoundProcess for EarlyFloodSet {
    type Msg = Value;

    fn send(&mut self, _round: Round) -> Value {
        self.est
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
        for m in delivery.current() {
            self.est = self.est.min(m.msg);
        }
        let heard = delivery.current_senders();
        let quiescent = heard == self.prev_heard;
        // Decide one round after the first quiescent round, or at t + 1.
        let due =
            self.quiescent_at.is_some_and(|q| round > q) || round.get() > self.config.t() as u32;
        if quiescent && self.quiescent_at.is_none() {
            self.quiescent_at = Some(round);
        }
        self.prev_heard = heard;
        if due && !self.decided {
            self.decided = true;
            Step::Decide(self.est)
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessFactory, ProcessId};
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;

    fn factory(config: SystemConfig) -> impl ProcessFactory<Process = EarlyFloodSet> {
        move |_i: usize, v: Value| EarlyFloodSet::new(config, v)
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn failure_free_decides_at_round_two() {
        // f = 0: round 1 is quiescent (heard everyone = initial set),
        // decision at round 2 = f + 2.
        let config = SystemConfig::synchronous(5, 3).unwrap();
        let schedule = Schedule::failure_free(config, ModelKind::Scs);
        let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(2)));
    }

    #[test]
    fn one_crash_decides_by_round_three() {
        let config = SystemConfig::synchronous(5, 3).unwrap();
        let schedule = ScheduleBuilder::new(config, ModelKind::Scs)
            .crash_before_send(ProcessId::new(1), Round::new(1))
            .build(10)
            .unwrap();
        let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert!(outcome.global_decision_round().unwrap() <= Round::new(3)); // f + 2
    }

    #[test]
    fn never_later_than_t_plus_one() {
        // Worst case (crashes in every round up to t): the t + 1 FloodSet
        // cap kicks in.
        let config = SystemConfig::synchronous(5, 3).unwrap();
        let schedule = ScheduleBuilder::new(config, ModelKind::Scs)
            .crash_delivering_only(ProcessId::new(1), Round::new(1), [ProcessId::new(0)])
            .crash_delivering_only(ProcessId::new(0), Round::new(2), [ProcessId::new(2)])
            .crash_delivering_only(ProcessId::new(2), Round::new(3), [ProcessId::new(3)])
            .build(10)
            .unwrap();
        let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), &schedule, 10)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert!(outcome.global_decision_round().unwrap() <= Round::new(4)); // t + 1
    }

    #[test]
    fn exhaustive_serial_runs_meet_min_f_plus_2_t_plus_1() {
        // The headline property, exhaustively for n = 4, t = 2: uniform
        // consensus holds in every serial run and the global decision round
        // is at most min(f + 2, t + 1).
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let mut runs = 0u32;
        let _ = indulgent_sim::for_each_serial_schedule(config, ModelKind::Scs, 3, |schedule| {
            let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4]), schedule, 10)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("{e} in {schedule:?}"));
            let f = schedule.crash_count() as u32;
            let bound = (f + 2).min(config.t() as u32 + 1);
            assert!(
                outcome.global_decision_round().unwrap() <= Round::new(bound),
                "f={f}: decided at {:?} > {bound} in {schedule:?}",
                outcome.global_decision_round()
            );
            runs += 1;
            std::ops::ControlFlow::Continue(())
        });
        assert!(runs > 1000);
    }

    #[test]
    fn exhaustive_serial_runs_n5_t2() {
        let config = SystemConfig::synchronous(5, 2).unwrap();
        let _ = indulgent_sim::for_each_serial_schedule(config, ModelKind::Scs, 3, |schedule| {
            let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7]), schedule, 10)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("{e} in {schedule:?}"));
            let f = schedule.crash_count() as u32;
            let bound = (f + 2).min(config.t() as u32 + 1);
            assert!(outcome.global_decision_round().unwrap() <= Round::new(bound));
            std::ops::ControlFlow::Continue(())
        });
    }

    #[test]
    fn random_synchronous_runs_with_simultaneous_crashes() {
        // The serial enumerator never crashes two processes in one round;
        // the random generator does. Uniform agreement must survive.
        let config = SystemConfig::synchronous(6, 3).unwrap();
        for seed in 0..300u64 {
            let schedule = indulgent_sim::random_run(
                config,
                ModelKind::Scs,
                indulgent_sim::RandomRunParams::synchronous((seed % 4) as usize, 3),
                12,
                seed,
            );
            let outcome = run_schedule(&factory(config), &vals(&[6, 2, 8, 4, 7, 5]), &schedule, 12)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn quiescence_tracker_reports_first_quiescent_round() {
        let config = SystemConfig::synchronous(3, 1).unwrap();
        let mut p = EarlyFloodSet::new(config, Value::new(4));
        assert_eq!(p.quiescent_at(), None);
        let full = |r: u32, ests: &[u64]| {
            Delivery::new(
                Round::new(r),
                ests.iter()
                    .enumerate()
                    .map(|(i, &e)| indulgent_model::DeliveredMsg {
                        sender: ProcessId::new(i),
                        sent_round: Round::new(r),
                        msg: Value::new(e),
                    })
                    .collect(),
            )
        };
        let _ = p.send(Round::new(1));
        let step = p.deliver(Round::new(1), &full(1, &[4, 2, 9]));
        assert_eq!(step, Step::Continue);
        assert_eq!(p.quiescent_at(), Some(Round::new(1)));
        assert_eq!(p.estimate(), Value::new(2));
        let _ = p.send(Round::new(2));
        let step = p.deliver(Round::new(2), &full(2, &[2, 2, 2]));
        assert_eq!(step, Step::Decide(Value::new(2)));
    }
}
