//! The leader-based baseline `AMR` for `t < n/3` (Mostefaoui–Raynal).
//!
//! The paper's Sect. 6 compares its `A_{f+2}` algorithm against the
//! leader-based algorithm of Mostefaoui & Raynal, noting that a run that is
//! synchronous after round `k` with `f` later crashes requires
//! **`k + 2f + 2`** rounds for `AMR` — two rounds per crashed leader —
//! against `k + f + 2` for `A_{f+2}`. Following the paper's footnote 10,
//! the eventual leader primitive is implemented directly in ES: each process
//! takes as leader the minimum-id sender among the messages it received in
//! the latest all-to-all round.
//!
//! Protocol per 2-round phase `p`:
//!
//! * round `2p - 1` (*propose*): every process believing itself leader
//!   broadcasts its estimate; receivers adopt the proposal of the
//!   minimum-id proposer they hear;
//! * round `2p` (*echo*): everyone echoes `(adopted?, est)`; a process
//!   seeing `n - t` echoes that adopted the same `v` decides `v`; otherwise
//!   it re-estimates with the `n - 2t` threshold rule of `A_{f+2}` (any
//!   value appearing `n - 2t` times is adopted — with `t < n/3` at most one
//!   can — else the minimum), and updates its leader to the minimum-id
//!   sender heard in this round.

use indulgent_model::{Delivery, ProcessId, Round, RoundProcess, Step, SystemConfig, Value};

/// Messages of [`LeaderEcho`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeMsg {
    /// A self-believed leader's proposal.
    Propose {
        /// Phase number.
        phase: u64,
        /// Proposed value.
        value: Value,
    },
    /// All-to-all echo closing a phase.
    Echo {
        /// Phase number.
        phase: u64,
        /// `Some(v)` if the sender adopted a leader proposal this phase.
        adopted: Option<Value>,
        /// Sender's current estimate.
        est: Value,
    },
    /// Decision relay.
    Decide(Value),
    /// Filler message for non-leaders in propose rounds.
    Noop,
}

fn phase_pos(round: Round) -> (u64, bool) {
    let r = u64::from(round.get());
    ((r - 1) / 2 + 1, (r - 1) % 2 == 1)
}

/// The leader-based `AMR` baseline (see module docs). Requires `t < n/3`.
#[derive(Debug, Clone)]
pub struct LeaderEcho {
    config: SystemConfig,
    id: ProcessId,
    est: Value,
    leader: ProcessId,
    adopted: Option<Value>,
    decided: Option<Value>,
    reported: bool,
}

impl LeaderEcho {
    /// Creates the automaton for process `id` proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not satisfy `t < n/3`, the regime this
    /// algorithm requires for safety.
    #[must_use]
    pub fn new(config: SystemConfig, id: ProcessId, proposal: Value) -> Self {
        assert!(3 * config.t() < config.n(), "LeaderEcho requires t < n/3");
        LeaderEcho {
            config,
            id,
            est: proposal,
            leader: ProcessId::new(0),
            adopted: None,
            decided: None,
            reported: false,
        }
    }

    /// The process this automaton currently believes to be the leader.
    #[must_use]
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    fn decide(&mut self, v: Value) -> Step {
        if self.decided.is_none() {
            self.decided = Some(v);
        }
        if self.reported {
            Step::Continue
        } else {
            self.reported = true;
            Step::Decide(v)
        }
    }
}

impl RoundProcess for LeaderEcho {
    type Msg = LeMsg;

    fn send(&mut self, round: Round) -> LeMsg {
        if let Some(v) = self.decided {
            return LeMsg::Decide(v);
        }
        let (phase, is_echo) = phase_pos(round);
        if is_echo {
            LeMsg::Echo { phase, adopted: self.adopted, est: self.est }
        } else if self.leader == self.id {
            LeMsg::Propose { phase, value: self.est }
        } else {
            LeMsg::Noop
        }
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<LeMsg>) -> Step {
        for m in delivery.messages() {
            if let LeMsg::Decide(v) = m.msg {
                return self.decide(v);
            }
        }
        if self.decided.is_some() {
            return Step::Continue;
        }

        let (phase, is_echo) = phase_pos(round);
        if !is_echo {
            // Propose round: adopt from the minimum-id proposer heard.
            self.adopted = None;
            let proposal = delivery
                .current()
                .filter_map(|m| match m.msg {
                    LeMsg::Propose { phase: p, value } if p == phase => Some((m.sender, value)),
                    _ => None,
                })
                .min_by_key(|&(sender, _)| sender);
            if let Some((_, v)) = proposal {
                self.est = v;
                self.adopted = Some(v);
            }
            Step::Continue
        } else {
            let mut adopt_counts: std::collections::BTreeMap<Value, usize> = Default::default();
            let mut est_counts: std::collections::BTreeMap<Value, usize> = Default::default();
            for m in delivery.current() {
                if let LeMsg::Echo { phase: p, adopted, est } = m.msg {
                    if p == phase {
                        *est_counts.entry(est).or_default() += 1;
                        if let Some(v) = adopted {
                            *adopt_counts.entry(v).or_default() += 1;
                        }
                    }
                }
            }
            self.adopted = None;
            for (&v, &count) in adopt_counts.iter() {
                if count >= self.config.quorum() {
                    return self.decide(v);
                }
            }
            // Re-estimate with the n - 2t rule; with t < n/3 at most one
            // value can reach the threshold.
            let threshold = self.config.small_quorum();
            if let Some((&v, _)) = est_counts.iter().find(|&(_, &c)| c >= threshold) {
                self.est = v;
            } else if let Some((&v, _)) = est_counts.iter().next() {
                self.est = v; // minimum estimate (BTreeMap iterates in order)
            }
            // Leader update: minimum-id sender heard this round.
            if let Some(min_sender) = delivery.current_senders().min() {
                self.leader = min_sender;
            }
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessFactory, Value};
    use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::third(7, 2).unwrap()
    }

    fn factory(config: SystemConfig) -> impl ProcessFactory<Process = LeaderEcho> {
        move |i: usize, v: Value| LeaderEcho::new(config, ProcessId::new(i), v)
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    #[should_panic(expected = "t < n/3")]
    fn rejects_majority_only_config() {
        let bad = SystemConfig::majority(5, 2).unwrap();
        let _ = LeaderEcho::new(bad, ProcessId::new(0), Value::ZERO);
    }

    #[test]
    fn failure_free_decides_at_round_two() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(2)));
        // The initial leader p0's proposal wins.
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(4));
        }
    }

    #[test]
    fn leader_crash_costs_two_rounds() {
        // p0 crashes before proposing; processes notice in the echo round
        // and elect p1, which proposes in phase 2: decision at round 4
        // (2f + 2 with f = 1).
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(1))
            .build(20)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
    }

    #[test]
    fn two_leader_crashes_cost_four_rounds() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(1))
            .crash_before_send(ProcessId::new(1), Round::new(3))
            .build(20)
            .unwrap();
        let outcome = run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 20)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        // 2f + 2 with f = 2.
        assert_eq!(outcome.global_decision_round(), Some(Round::new(6)));
    }

    #[test]
    fn random_runs_satisfy_consensus() {
        for seed in 0..200u64 {
            let schedule = indulgent_sim::random_run(
                cfg(),
                ModelKind::Es,
                indulgent_sim::RandomRunParams::synchronous((seed % 3) as usize, 6),
                60,
                seed,
            );
            let outcome =
                run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 60)
                    .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn random_es_runs_safe_and_live() {
        for seed in 0..100u64 {
            let schedule = indulgent_sim::random_run(
                cfg(),
                ModelKind::Es,
                indulgent_sim::RandomRunParams::eventually_synchronous((seed % 3) as usize, 5, 7),
                80,
                seed,
            );
            let outcome =
                run_schedule(&factory(cfg()), &vals(&[4, 2, 7, 2, 9, 1, 3]), &schedule, 80)
                    .expect("one proposal per process");
            outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
