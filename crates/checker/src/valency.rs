//! Valency computation: the lower-bound proof's machinery, made executable.
//!
//! The paper's Proposition 1 is proved with the bivalency technique: the
//! valency of a (serial, partial) run is the set of values still reachable
//! in its serial extensions. The proof shows (for a hypothetical algorithm
//! deciding by `t + 1` in synchronous runs) that a bivalent initial
//! configuration exists (Lemma 3), can be pushed to a bivalent
//! `(t-1)`-round partial run (Lemma 4) and then to a bivalent `t`-round run
//! (Lemma 5) — contradicting Lemma 2.
//!
//! For *concrete* algorithms and small systems we can compute valencies
//! exactly by enumerating all serial extensions. This lets experiments
//! exhibit the paper's objects: bivalent initial configurations of binary
//! consensus, the growth of univalent prefixes, and the round at which
//! every serial partial run becomes univalent (which for a `t + 2`-deciding
//! algorithm like `A_{t+2}` may stay bivalent through round `t`, exactly
//! the room the lower bound exploits).

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use indulgent_model::{ProcessFactory, SystemConfig, Value};
use indulgent_sim::{
    for_each_serial_extension, sweep_run_extensions, ExecutorError, ModelKind, Schedule,
    SweepBackend,
};

/// The valency of a partial run of a *binary* consensus algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Valency {
    /// Every serial extension decides 0.
    Zero,
    /// Every serial extension decides 1.
    One,
    /// Both decisions are reachable.
    Bivalent,
}

impl Valency {
    /// Returns `true` for [`Valency::Bivalent`].
    #[must_use]
    pub fn is_bivalent(self) -> bool {
        matches!(self, Valency::Bivalent)
    }
}

/// Exploration parameters for valency computations.
#[derive(Debug, Clone, Copy)]
pub struct ValencyParams {
    /// Crashes are enumerated in rounds `from_round..=crash_horizon`.
    pub crash_horizon: u32,
    /// Each extension run executes at most this many rounds (must suffice
    /// for the algorithm to decide in every serial run).
    pub run_horizon: u32,
    /// Sweep backend used to enumerate the serial extensions.
    pub backend: SweepBackend,
}

impl ValencyParams {
    /// Parameters with the backend taken from the environment
    /// ([`SweepBackend::from_env`]).
    #[must_use]
    pub fn new(crash_horizon: u32, run_horizon: u32) -> Self {
        ValencyParams { crash_horizon, run_horizon, backend: SweepBackend::from_env() }
    }

    /// Replaces the sweep backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SweepBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// The set of decision values reachable in serial extensions of
/// `(proposals, prefix)` with further crashes confined to
/// `from_round..=params.crash_horizon`.
///
/// Runs on the incremental prefix-sharing engine: the partial run
/// `(proposals, prefix)` is executed once and its snapshot forked across
/// the extension tree — exactly the object the paper's valency arguments
/// manipulate.
///
/// # Panics
///
/// Panics if `proposals` does not match the configuration size, or if
/// some serial extension fails to reach a decision within
/// `params.run_horizon` — valency is undefined for non-deciding runs, so
/// the caller must size the horizon to the algorithm.
#[must_use]
pub fn reachable_decisions<F>(
    factory: &F,
    proposals: &[Value],
    prefix: &Schedule,
    from_round: u32,
    params: ValencyParams,
) -> BTreeSet<Value>
where
    F: ProcessFactory + Sync,
{
    let swept: Result<BTreeSet<Value>, ExecutorError> = sweep_run_extensions(
        factory,
        proposals,
        prefix,
        from_round,
        params.crash_horizon,
        params.run_horizon,
        params.backend,
        BTreeSet::new,
        |decisions, schedule, outcome| {
            outcome
                .global_decision_round()
                .unwrap_or_else(|| panic!("serial extension did not decide: {schedule:?}"));
            let value = outcome
                .decisions
                .iter()
                .flatten()
                .next()
                .expect("decided run has a decision")
                .value;
            decisions.insert(value);
            Ok(())
        },
        |mut a, b| {
            a.extend(b);
            a
        },
    );
    swept.expect("one proposal per process required")
}

/// Computes the valency of a partial run of a binary consensus algorithm.
///
/// # Panics
///
/// Panics if an extension decides a non-binary value or never decides.
#[must_use]
pub fn valency<F>(
    factory: &F,
    proposals: &[Value],
    prefix: &Schedule,
    from_round: u32,
    params: ValencyParams,
) -> Valency
where
    F: ProcessFactory + Sync,
{
    let decisions = reachable_decisions(factory, proposals, prefix, from_round, params);
    let zero = decisions.contains(&Value::ZERO);
    let one = decisions.contains(&Value::ONE);
    assert!(
        decisions.is_subset(&BTreeSet::from([Value::ZERO, Value::ONE])),
        "binary consensus decided outside {{0, 1}}: {decisions:?}"
    );
    match (zero, one) {
        (true, true) => Valency::Bivalent,
        (true, false) => Valency::Zero,
        (false, true) => Valency::One,
        (false, false) => unreachable!("reachable_decisions panics on undecided runs"),
    }
}

/// The valency of an *initial configuration* (no rounds fixed).
#[must_use]
pub fn initial_valency<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    params: ValencyParams,
) -> Valency
where
    F: ProcessFactory + Sync,
{
    let prefix = Schedule::failure_free(config, kind);
    valency(factory, proposals, &prefix, 1, params)
}

/// Searches the `2^n` binary initial configurations for a bivalent one —
/// the executable counterpart of the paper's Lemma 3.
///
/// Returns the proposal vector of the first bivalent configuration found,
/// or `None` if every initial configuration is univalent (which, by
/// Lemma 3, cannot happen for a correct consensus algorithm unless the
/// exploration parameters are too tight).
#[must_use]
pub fn find_bivalent_initial<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    params: ValencyParams,
) -> Option<Vec<Value>>
where
    F: ProcessFactory + Sync,
{
    let n = config.n();
    for bits in 0u64..(1 << n) {
        let proposals: Vec<Value> = (0..n).map(|i| Value::binary(bits & (1 << i) != 0)).collect();
        if initial_valency(factory, config, kind, &proposals, params).is_bivalent() {
            return Some(proposals);
        }
    }
    None
}

/// Searches for a bivalent `rounds`-round serial partial run starting from
/// a bivalent initial configuration — the executable counterpart of the
/// paper's Lemma 4 (and, when it succeeds for `rounds = t`, of Lemma 5's
/// conclusion that such runs force decisions beyond round `t + 1`).
///
/// Returns the prefix schedule of the first bivalent `rounds`-round partial
/// run found for `proposals`, or `None` if all are univalent.
#[must_use]
pub fn find_bivalent_prefix<F>(
    factory: &F,
    proposals: &[Value],
    config: SystemConfig,
    kind: ModelKind,
    rounds: u32,
    params: ValencyParams,
) -> Option<Schedule>
where
    F: ProcessFactory + Sync,
{
    let empty = Schedule::failure_free(config, kind);
    let mut found: Option<Schedule> = None;
    // Enumerate `rounds`-round serial prefixes: crashes confined to
    // 1..=rounds; we reuse the extension enumerator with that horizon and
    // deduplicate by the prefix's crash content automatically (every
    // distinct schedule visited *is* a distinct prefix).
    let _ = for_each_serial_extension(&empty, 1, rounds, |prefix| {
        if valency(factory, proposals, prefix, rounds + 1, params).is_bivalent() {
            found = Some(prefix.clone());
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });
    found
}

#[cfg(test)]
mod tests {
    use indulgent_consensus::{AtPlus2, RotatingCoordinator};
    use indulgent_model::ProcessId;

    use super::*;

    fn config() -> SystemConfig {
        SystemConfig::majority(3, 1).unwrap()
    }

    fn factory(
        config: SystemConfig,
    ) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> {
        move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        }
    }

    fn params() -> ValencyParams {
        // Crashes up to round t + 2 = 3; serial runs decide by then.
        ValencyParams::new(3, 30)
    }

    #[test]
    fn unanimous_configurations_are_univalent() {
        let f = factory(config());
        let zeros = vec![Value::ZERO; 3];
        let ones = vec![Value::ONE; 3];
        assert_eq!(initial_valency(&f, config(), ModelKind::Es, &zeros, params()), Valency::Zero);
        assert_eq!(initial_valency(&f, config(), ModelKind::Es, &ones, params()), Valency::One);
    }

    #[test]
    fn mixed_configuration_with_minority_zero_is_bivalent() {
        // {1, 1, 0}: if the 0-proposer crashes before sending, serial runs
        // decide 1; failure-free runs decide 0 (the minimum). Bivalent —
        // the paper's Lemma 3 witness.
        let f = factory(config());
        let proposals = vec![Value::ONE, Value::ONE, Value::ZERO];
        assert_eq!(
            initial_valency(&f, config(), ModelKind::Es, &proposals, params()),
            Valency::Bivalent
        );
    }

    #[test]
    fn majority_zero_is_zero_valent_for_min_flooding() {
        // {0, 0, 1}: with t = 1 at most one 0-proposer can crash; the other
        // zero always floods, so every serial run decides 0.
        let f = factory(config());
        let proposals = vec![Value::ZERO, Value::ZERO, Value::ONE];
        assert_eq!(
            initial_valency(&f, config(), ModelKind::Es, &proposals, params()),
            Valency::Zero
        );
    }

    #[test]
    fn lemma3_finds_a_bivalent_initial_configuration() {
        let f = factory(config());
        let found = find_bivalent_initial(&f, config(), ModelKind::Es, params());
        assert!(found.is_some(), "Lemma 3: some initial configuration must be bivalent");
    }

    #[test]
    fn one_round_prefixes_univalent_when_t_is_one() {
        // With t = 1 the single allowed crash is spent inside a 1-round
        // prefix, so every serial extension is forced: all 1-round serial
        // partial runs of A_{t+2} are univalent (Lemma 4 only guarantees
        // bivalence through round t - 1 = 0, i.e. the initial config).
        let f = factory(config());
        let proposals = vec![Value::ONE, Value::ONE, Value::ZERO];
        let prefix = find_bivalent_prefix(&f, &proposals, config(), ModelKind::Es, 1, params());
        assert!(prefix.is_none(), "t = 1 admits no 1-round bivalent prefix: {prefix:?}");
    }

    #[test]
    fn bivalence_survives_to_round_t_minus_1_when_t_is_two() {
        // With t = 2 (n = 5), Lemma 4's guarantee is non-trivial: there is
        // a bivalent 1-round serial partial run (a first crash whose
        // message reached only part of the system, leaving both outcomes
        // reachable via the second crash).
        let cfg5 = SystemConfig::majority(5, 2).unwrap();
        let f = factory(cfg5);
        let proposals = vec![Value::ONE, Value::ONE, Value::ONE, Value::ONE, Value::ZERO];
        let p = ValencyParams::new(4, 40);
        let prefix = find_bivalent_prefix(&f, &proposals, cfg5, ModelKind::Es, 1, p);
        assert!(prefix.is_some(), "a bivalent 1-round prefix must exist for t = 2");
    }

    #[test]
    fn reachable_decisions_for_unanimity() {
        let f = factory(config());
        let prefix = Schedule::failure_free(config(), ModelKind::Es);
        let set = reachable_decisions(&f, &[Value::ONE; 3], &prefix, 1, params());
        assert_eq!(set, BTreeSet::from([Value::ONE]));
    }
}
