//! Decision-round census and randomized worst-case search.
//!
//! The exhaustive sweeps of [`worst_case`](crate::worst_case_decision_round)
//! blow up beyond `n ≈ 6`; for larger systems [`randomized_worst_case`]
//! samples random synchronous runs instead. [`decision_round_census`]
//! complements both with the full distribution of global-decision rounds
//! over the serial-run space — useful to see, e.g., that `A_{t+2}` decides
//! at *exactly* `t + 2` in every serial run (a single-bar histogram) while
//! the Hurfin–Raynal-style baseline spreads over `2..=2t+2`.

use std::collections::BTreeMap;

use indulgent_model::{ProcessFactory, Round, RunOutcome, SystemConfig, Value};
use indulgent_sim::{
    random_run, run_schedule, sweep_runs, sweep_schedules, ModelKind, RandomRunParams, Schedule,
    SweepBackend,
};

use crate::worst_case::CheckError;

/// The distribution of global-decision rounds over all serial runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Census {
    /// `round → number of serial runs deciding globally at that round`.
    pub counts: BTreeMap<u32, u64>,
    /// Total serial runs explored.
    pub runs: u64,
}

impl Census {
    /// The worst (largest) decision round in the census.
    #[must_use]
    pub fn worst(&self) -> Option<Round> {
        self.counts.keys().next_back().map(|&r| Round::new(r))
    }

    /// The best (smallest) decision round in the census.
    #[must_use]
    pub fn best(&self) -> Option<Round> {
        self.counts.keys().next().map(|&r| Round::new(r))
    }

    /// Number of distinct decision rounds observed.
    #[must_use]
    pub fn spread(&self) -> usize {
        self.counts.len()
    }
}

/// Runs `factory` under every serial schedule and tallies the
/// global-decision rounds.
///
/// The sweep backend comes from the environment
/// ([`SweepBackend::from_env`]); use [`decision_round_census_with`] to
/// pick it explicitly.
///
/// # Errors
///
/// Returns [`CheckError`] on a consensus violation or undecided run.
pub fn decision_round_census<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
) -> Result<Census, CheckError>
where
    F: ProcessFactory + Sync,
{
    decision_round_census_with(
        factory,
        config,
        kind,
        proposals,
        crash_horizon,
        run_horizon,
        SweepBackend::from_env(),
    )
}

/// Folds one executed run into a census; shared by the incremental and
/// replay paths.
fn fold_census(
    census: &mut Census,
    schedule: &Schedule,
    outcome: &RunOutcome,
) -> Result<(), CheckError> {
    if let Err(violation) = outcome.check_consensus() {
        return Err(CheckError::Violation { violation, schedule: Box::new(schedule.clone()) });
    }
    let Some(round) = outcome.global_decision_round() else {
        return Err(CheckError::NoDecision { schedule: Box::new(schedule.clone()) });
    };
    *census.counts.entry(round.get()).or_default() += 1;
    census.runs += 1;
    Ok(())
}

fn merge_censuses(mut left: Census, right: Census) -> Census {
    for (round, count) in right.counts {
        *left.counts.entry(round).or_default() += count;
    }
    left.runs += right.runs;
    left
}

/// [`decision_round_census`] with an explicit sweep backend; runs on the
/// incremental prefix-sharing engine.
///
/// The census is identical for every backend and thread count (round
/// tallies are summed per work unit and merged in serial visit order),
/// and identical to the run-from-scratch
/// [`decision_round_census_replay`].
///
/// # Errors
///
/// Returns [`CheckError`] on a consensus violation or undecided run.
pub fn decision_round_census_with<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
) -> Result<Census, CheckError>
where
    F: ProcessFactory + Sync,
{
    sweep_runs(
        factory,
        proposals,
        config,
        kind,
        crash_horizon,
        run_horizon,
        backend,
        || Census { counts: BTreeMap::new(), runs: 0 },
        fold_census,
        merge_censuses,
    )
}

/// The retired run-from-scratch census, kept as the reference
/// implementation for the differential suite; identical result to
/// [`decision_round_census_with`].
///
/// # Errors
///
/// Returns [`CheckError`] on a consensus violation or undecided run.
pub fn decision_round_census_replay<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
) -> Result<Census, CheckError>
where
    F: ProcessFactory + Sync,
{
    sweep_schedules(
        config,
        kind,
        crash_horizon,
        backend,
        || Census { counts: BTreeMap::new(), runs: 0 },
        |census, schedule| {
            let outcome = run_schedule(factory, proposals, schedule, run_horizon)?;
            fold_census(census, schedule, &outcome)
        },
        merge_censuses,
    )
}

/// Samples `samples` random synchronous runs (up to `t` crashes each) and
/// reports the worst global-decision round found, verifying consensus in
/// every sampled run.
///
/// A sampling fallback for systems too large to enumerate; the returned
/// schedule witnesses the worst round found (not necessarily the true
/// worst case).
///
/// # Errors
///
/// Returns [`CheckError`] on the first consensus violation or undecided
/// run.
pub fn randomized_worst_case<F>(
    factory: &F,
    config: SystemConfig,
    proposals: &[Value],
    samples: u64,
    run_horizon: u32,
    seed: u64,
) -> Result<(Round, Schedule), CheckError>
where
    F: ProcessFactory,
{
    let mut worst: Option<(Round, Schedule)> = None;
    for i in 0..samples {
        let crashes = (i % (config.t() as u64 + 1)) as usize;
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::synchronous(crashes, config.t() as u32 + 2),
            run_horizon,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(i),
        );
        let outcome = run_schedule(factory, proposals, &schedule, run_horizon)?;
        if let Err(violation) = outcome.check_consensus() {
            return Err(CheckError::Violation { violation, schedule: Box::new(schedule) });
        }
        let Some(round) = outcome.global_decision_round() else {
            return Err(CheckError::NoDecision { schedule: Box::new(schedule) });
        };
        if worst.as_ref().is_none_or(|(w, _)| round > *w) {
            worst = Some((round, schedule));
        }
    }
    Ok(worst.expect("at least one sample"))
}

#[cfg(test)]
mod tests {
    use indulgent_consensus::{AtPlus2, CoordinatorEcho, RotatingCoordinator};
    use indulgent_model::ProcessId;

    use super::*;

    fn proposals(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::new((((i + n / 2) % n) as u64) * 2 + 1)).collect()
    }

    #[test]
    fn at_plus2_census_is_a_single_bar_at_t_plus_2() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let census =
            decision_round_census(&factory, config, ModelKind::Es, &proposals(4), 3, 30).unwrap();
        assert_eq!(census.spread(), 1);
        assert_eq!(census.worst(), Some(Round::new(3))); // t + 2
        assert_eq!(census.runs, 97);
        assert_eq!(census.counts[&3], 97);
    }

    #[test]
    fn coordinator_echo_census_spreads_to_2t_plus_2() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let census =
            decision_round_census(&factory, config, ModelKind::Es, &proposals(3), 4, 30).unwrap();
        assert_eq!(census.best(), Some(Round::new(2)));
        assert_eq!(census.worst(), Some(Round::new(4))); // 2t + 2
        assert!(census.spread() >= 2);
    }

    #[test]
    fn census_is_identical_across_backends() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let serial = decision_round_census_with(
            &factory,
            config,
            ModelKind::Es,
            &proposals(3),
            4,
            30,
            SweepBackend::Serial,
        )
        .unwrap();
        for threads in [2, 4] {
            let parallel = decision_round_census_with(
                &factory,
                config,
                ModelKind::Es,
                &proposals(3),
                4,
                30,
                SweepBackend::parallel(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "{threads}-thread census must match serial");
        }
    }

    #[test]
    fn randomized_search_finds_t_plus_2_for_larger_systems() {
        // n = 9, t = 4: far beyond exhaustive reach, but sampling confirms
        // the t + 2 behaviour and consensus safety across samples.
        let config = SystemConfig::majority(9, 4).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let (round, schedule) =
            randomized_worst_case(&factory, config, &proposals(9), 300, 40, 11).unwrap();
        assert_eq!(round, Round::new(6)); // t + 2
        assert!(schedule.is_synchronous());
    }
}
