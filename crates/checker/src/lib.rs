//! Exhaustive model checking for round-based consensus algorithms.
//!
//! This crate makes the *proof side* of "The inherent price of indulgence"
//! executable for small systems:
//!
//! * [`worst_case_decision_round`] sweeps **every** serial synchronous run
//!   of an algorithm (at most one crash per round — the run class the
//!   lower-bound proof works with), verifying validity, uniform agreement
//!   and termination in each and reporting the exact worst- and best-case
//!   global-decision rounds. For `A_{t+2}` the result is `t + 2` on the
//!   nose; for FloodSet in SCS it is `t + 1`; for the Hurfin–Raynal-style
//!   baseline it is `2t + 2`.
//! * [`valency`] / [`find_bivalent_initial`] / [`find_bivalent_prefix`]
//!   compute valencies of partial runs of binary consensus exactly, letting
//!   experiments exhibit the objects of the paper's Lemmas 3–5: bivalent
//!   initial configurations and bivalent serial partial runs.
//!
//! Every sweep runs on the **incremental prefix-sharing engine** of
//! `indulgent_sim` (`sweep_runs`): enumeration is fused with execution, so
//! each shared schedule prefix in the serial-run tree is executed exactly
//! once and the automaton state is forked at branch points — an
//! algorithmic speedup over replaying every schedule from round 1 that
//! compounds with thread count. The `*_with` entry points take an explicit
//! [`SweepBackend`] (serial or a pooled worker count), the plain entry
//! points read it from `INDULGENT_SWEEP_BACKEND` in the environment.
//! Results are identical across backends and thread counts *and* identical
//! to the retired run-from-scratch sweep (kept as
//! [`worst_case_decision_round_replay`] /
//! [`decision_round_census_replay`] for the differential suite and the
//! throughput benchmark); the engine makes exhaustive sweeps at
//! `n = 7, t = 2` (~518k serial schedules per proposal vector) practical.
//! Random-adversary searches ([`randomized_worst_case`]) have no prefix
//! structure to share and keep the run-from-scratch executor.
//!
//! # Example: the `t + 2` worst case, exhaustively
//!
//! ```
//! use indulgent_checker::worst_case_decision_round;
//! use indulgent_consensus::{AtPlus2, RotatingCoordinator};
//! use indulgent_model::{ProcessId, Round, SystemConfig, Value};
//! use indulgent_sim::ModelKind;
//!
//! let cfg = SystemConfig::majority(3, 1)?;
//! let factory = move |i: usize, v: Value| {
//!     let id = ProcessId::new(i);
//!     AtPlus2::new(cfg, id, v, RotatingCoordinator::new(cfg, id))
//! };
//! let proposals: Vec<Value> = [4u64, 7, 2].map(Value::new).to_vec();
//! let report = worst_case_decision_round(
//!     &factory, cfg, ModelKind::Es, &proposals, 3, 30,
//! )?;
//! assert_eq!(report.worst_round, Round::new(3)); // t + 2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod census;
mod valency;
mod worst_case;

pub use census::{
    decision_round_census, decision_round_census_replay, decision_round_census_with,
    randomized_worst_case, Census,
};
pub use indulgent_sim::SweepBackend;
pub use valency::{
    find_bivalent_initial, find_bivalent_prefix, initial_valency, reachable_decisions, valency,
    Valency, ValencyParams,
};
pub use worst_case::{
    worst_case_decision_round, worst_case_decision_round_replay, worst_case_decision_round_with,
    worst_case_over_binary_proposals, worst_case_over_binary_proposals_with, CheckError,
    WorstCaseReport,
};
