//! Worst-case decision-round search over the serial synchronous runs.
//!
//! The paper's time-complexity measure `k_ES` asks for the worst round, over
//! all synchronous runs, at which a global decision happens. For small
//! systems the space of *serial* runs (at most one crash per round — the
//! run class the lower-bound proof manipulates) is exhaustively enumerable,
//! which lets us measure the exact worst case of every implemented
//! algorithm and verify the consensus properties in every single run.
//!
//! Sweeps run on the **incremental prefix-sharing engine** of
//! `indulgent_sim` ([`sweep_runs`]): the serial-schedule tree is executed
//! once per shared prefix, with automaton snapshots forked at branch
//! points, instead of replaying every schedule from round 1. Pass
//! [`SweepBackend::parallel`] to [`worst_case_decision_round_with`] (or set
//! `INDULGENT_SWEEP_BACKEND=parallel[:N]` for the plain entry points) to
//! additionally fan the work units out over a worker pool. Reports are
//! identical across backends and thread counts, and identical to the
//! retired run-from-scratch sweep — [`worst_case_decision_round_replay`]
//! keeps that baseline alive for the differential suite and the
//! `sweep_throughput` benchmark.

use indulgent_model::{ConsensusViolation, ProcessFactory, Round, RunOutcome, SystemConfig, Value};
use indulgent_sim::{
    run_schedule, sweep_runs, sweep_schedules, ExecutorError, ModelKind, Schedule, SweepBackend,
};

/// Result of an exhaustive serial-run sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstCaseReport {
    /// Number of serial runs executed.
    pub runs: u64,
    /// The worst (largest) global-decision round over all runs.
    pub worst_round: Round,
    /// The best (smallest) global-decision round over all runs.
    pub best_round: Round,
    /// The first schedule (in serial enumeration order) attaining the
    /// worst round.
    pub worst_schedule: Schedule,
}

/// Error from a worst-case sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A run violated a consensus property; the offending schedule is
    /// attached.
    Violation {
        /// The violated property.
        violation: ConsensusViolation,
        /// The run that violated it.
        schedule: Box<Schedule>,
    },
    /// A run reached the execution horizon without a global decision.
    NoDecision {
        /// The run that failed to decide.
        schedule: Box<Schedule>,
    },
    /// The executor rejected the run inputs (wrong proposal arity).
    Executor(ExecutorError),
}

impl From<ExecutorError> for CheckError {
    fn from(error: ExecutorError) -> Self {
        CheckError::Executor(error)
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Violation { violation, .. } => write!(f, "consensus violated: {violation}"),
            CheckError::NoDecision { .. } => write!(f, "no global decision within the horizon"),
            CheckError::Executor(error) => write!(f, "executor rejected the run: {error}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Folds one run outcome into a partial report; shared by the incremental
/// and the replay sweep paths (and every backend of each) so their
/// semantics cannot drift.
fn fold_run(
    report: &mut Option<WorstCaseReport>,
    schedule: &Schedule,
    outcome: &RunOutcome,
) -> Result<(), CheckError> {
    if let Err(violation) = outcome.check_consensus() {
        return Err(CheckError::Violation { violation, schedule: Box::new(schedule.clone()) });
    }
    let Some(round) = outcome.global_decision_round() else {
        return Err(CheckError::NoDecision { schedule: Box::new(schedule.clone()) });
    };
    match report {
        None => {
            *report = Some(WorstCaseReport {
                runs: 1,
                worst_round: round,
                best_round: round,
                worst_schedule: schedule.clone(),
            });
        }
        Some(r) => {
            r.runs += 1;
            if round > r.worst_round {
                r.worst_round = round;
                r.worst_schedule = schedule.clone();
            }
            r.best_round = r.best_round.min(round);
        }
    }
    Ok(())
}

/// Merges two partial reports whose runs come from consecutive slices of
/// the serial visit order (`left` strictly before `right`): the earlier
/// witness wins ties, so the merged report equals the serial fold.
fn merge_reports(
    left: Option<WorstCaseReport>,
    right: Option<WorstCaseReport>,
) -> Option<WorstCaseReport> {
    match (left, right) {
        (None, r) => r,
        (l, None) => l,
        (Some(mut l), Some(r)) => {
            if r.worst_round > l.worst_round {
                l.worst_round = r.worst_round;
                l.worst_schedule = r.worst_schedule;
            }
            l.best_round = l.best_round.min(r.best_round);
            l.runs += r.runs;
            Some(l)
        }
    }
}

/// Exhaustively runs `factory` under every serial schedule of `config`
/// (crashes in rounds `1..=crash_horizon`), checking the consensus
/// properties in each run and reporting the worst and best global-decision
/// rounds.
///
/// The sweep backend comes from the environment
/// ([`SweepBackend::from_env`]); use [`worst_case_decision_round_with`] to
/// pick it explicitly. `run_horizon` bounds each run's execution; it must
/// be generous enough for the algorithm to decide in every serial run
/// (serial runs are synchronous, so for the paper's algorithms `t + 3`
/// already suffices).
///
/// # Errors
///
/// Returns [`CheckError`] on a property violation or undecided run.
pub fn worst_case_decision_round<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory + Sync,
{
    worst_case_decision_round_with(
        factory,
        config,
        kind,
        proposals,
        crash_horizon,
        run_horizon,
        SweepBackend::from_env(),
    )
}

/// [`worst_case_decision_round`] with an explicit sweep backend.
///
/// The returned report is identical for every backend and thread count
/// (the engine merges per-unit partials in serial visit order), and
/// identical to [`worst_case_decision_round_replay`] — the incremental
/// engine changes how runs are executed, never what they compute.
///
/// # Errors
///
/// Returns [`CheckError`] on a property violation or undecided run. With a
/// parallel backend the reported witness schedule may differ from the
/// serial backend's (the sweep aborts early on the first failure a worker
/// hits), but an error is reported if and only if the serial sweep would
/// report one.
pub fn worst_case_decision_round_with<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory + Sync,
{
    let report = sweep_runs(
        factory,
        proposals,
        config,
        kind,
        crash_horizon,
        run_horizon,
        backend,
        || None,
        fold_run,
        merge_reports,
    )?;
    Ok(report.expect("serial enumeration visits at least the crash-free run"))
}

/// The retired run-from-scratch sweep: identical report to
/// [`worst_case_decision_round_with`], but every schedule is replayed from
/// round 1 by [`run_schedule`] instead of sharing prefix execution.
///
/// Kept as the reference implementation for the differential conformance
/// suite (replay vs incremental must stay bit-identical) and as the
/// baseline of the `sweep_throughput` benchmark; new callers should use
/// the incremental entry points.
///
/// # Errors
///
/// Returns [`CheckError`] on a property violation or undecided run.
pub fn worst_case_decision_round_replay<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory + Sync,
{
    let report = sweep_schedules(
        config,
        kind,
        crash_horizon,
        backend,
        || None,
        |report, schedule| {
            let outcome = run_schedule(factory, proposals, schedule, run_horizon)?;
            fold_run(report, schedule, &outcome)
        },
        merge_reports,
    )?;
    Ok(report.expect("serial enumeration visits at least the crash-free run"))
}

/// Runs [`worst_case_decision_round`] over every binary proposal vector
/// (all `2^n` assignments of `{0, 1}`), returning the overall worst case.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn worst_case_over_binary_proposals<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    crash_horizon: u32,
    run_horizon: u32,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory + Sync,
{
    worst_case_over_binary_proposals_with(
        factory,
        config,
        kind,
        crash_horizon,
        run_horizon,
        SweepBackend::from_env(),
    )
}

/// [`worst_case_over_binary_proposals`] with an explicit sweep backend.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn worst_case_over_binary_proposals_with<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory + Sync,
{
    let n = config.n();
    let mut overall: Option<WorstCaseReport> = None;
    for bits in 0u64..(1 << n) {
        let proposals: Vec<Value> = (0..n).map(|i| Value::binary(bits & (1 << i) != 0)).collect();
        let report = worst_case_decision_round_with(
            factory,
            config,
            kind,
            &proposals,
            crash_horizon,
            run_horizon,
            backend,
        )?;
        overall = merge_reports(overall, Some(report));
    }
    Ok(overall.expect("at least one proposal vector"))
}

#[cfg(test)]
mod tests {
    use indulgent_consensus::{AtPlus2, FloodSet, RotatingCoordinator};
    use indulgent_model::ProcessId;

    use super::*;

    #[test]
    fn at_plus2_worst_case_is_exactly_t_plus_2() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Es, &proposals, 3, 30).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // t + 2
        assert_eq!(report.best_round, Round::new(3)); // never earlier either
        assert_eq!(report.runs, 97);
    }

    #[test]
    fn floodset_worst_case_is_exactly_t_plus_1_in_scs() {
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let factory = move |_i: usize, v: Value| FloodSet::new(config, v);
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Scs, &proposals, 3, 10).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // t + 1
        assert_eq!(report.best_round, Round::new(3));
    }

    #[test]
    fn binary_sweep_covers_all_vectors() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let report =
            worst_case_over_binary_proposals(&factory, config, ModelKind::Es, 3, 30).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // t + 2 with t = 1
                                                       // 8 proposal vectors x 37 serial schedules each.
        assert_eq!(report.runs, 8 * 37);
    }

    #[test]
    fn coordinator_echo_exhaustive_worst_case_is_2t_plus_2() {
        use indulgent_consensus::CoordinatorEcho;
        let config = SystemConfig::majority(3, 1).unwrap();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let proposals: Vec<Value> = [5u64, 3, 8].map(Value::new).to_vec();
        // Crashes may land anywhere in the first 2t + 2 rounds.
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Es, &proposals, 4, 30).unwrap();
        assert_eq!(report.worst_round, Round::new(4)); // 2t + 2
        assert_eq!(report.best_round, Round::new(2)); // failure-free phase 1
    }

    #[test]
    fn early_floodset_exhaustive_worst_case_is_min_f2_t1() {
        use indulgent_consensus::EarlyFloodSet;
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let factory = move |_i: usize, v: Value| EarlyFloodSet::new(config, v);
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Scs, &proposals, 3, 10).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // min(f+2, t+1) with f = t = 2
        assert_eq!(report.best_round, Round::new(2)); // failure-free f + 2
    }

    #[test]
    fn truncated_floodset_is_caught_violating_agreement() {
        // An algorithm deciding one round too early (at round t instead of
        // t + 1) must be caught by the sweep: the t + 1 bound is real.
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let early = config.t() as u32; // decide at round t
        let factory = move |_i: usize, v: Value| FloodSet::deciding_at(Round::new(early), v);
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let err = worst_case_decision_round(&factory, config, ModelKind::Scs, &proposals, 3, 10)
            .unwrap_err();
        assert!(matches!(err, CheckError::Violation { .. }));
    }

    #[test]
    fn parallel_backend_reproduces_the_serial_report_exactly() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let serial = worst_case_decision_round_with(
            &factory,
            config,
            ModelKind::Es,
            &proposals,
            3,
            30,
            SweepBackend::Serial,
        )
        .unwrap();
        for threads in [2, 4] {
            let parallel = worst_case_decision_round_with(
                &factory,
                config,
                ModelKind::Es,
                &proposals,
                3,
                30,
                SweepBackend::parallel(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "{threads}-thread report must match serial");
        }
    }

    #[test]
    fn incremental_report_equals_replay_report() {
        let config = SystemConfig::majority(5, 2).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let proposals: Vec<Value> = [5u64, 3, 8, 1, 9].map(Value::new).to_vec();
        let replay = worst_case_decision_round_replay(
            &factory,
            config,
            ModelKind::Es,
            &proposals,
            4,
            30,
            SweepBackend::Serial,
        )
        .unwrap();
        for backend in [SweepBackend::Serial, SweepBackend::parallel(4)] {
            let incremental = worst_case_decision_round_with(
                &factory,
                config,
                ModelKind::Es,
                &proposals,
                4,
                30,
                backend,
            )
            .unwrap();
            assert_eq!(replay, incremental, "incremental {backend:?} must equal replay");
        }
    }

    #[test]
    fn proposal_arity_mismatch_is_a_typed_error() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let short: Vec<Value> = [5u64, 3].map(Value::new).to_vec();
        let err =
            worst_case_decision_round(&factory, config, ModelKind::Es, &short, 3, 30).unwrap_err();
        assert_eq!(
            err,
            CheckError::Executor(ExecutorError::ProposalCountMismatch { expected: 4, got: 2 })
        );
    }
}
