//! Worst-case decision-round search over the serial synchronous runs.
//!
//! The paper's time-complexity measure `k_ES` asks for the worst round, over
//! all synchronous runs, at which a global decision happens. For small
//! systems the space of *serial* runs (at most one crash per round — the
//! run class the lower-bound proof manipulates) is exhaustively enumerable,
//! which lets us measure the exact worst case of every implemented
//! algorithm and verify the consensus properties in every single run.

use std::ops::ControlFlow;

use indulgent_model::{ConsensusViolation, ProcessFactory, Round, SystemConfig, Value};
use indulgent_sim::{for_each_serial_schedule, run_schedule, ModelKind, Schedule};

/// Result of an exhaustive serial-run sweep.
#[derive(Debug, Clone)]
pub struct WorstCaseReport {
    /// Number of serial runs executed.
    pub runs: u64,
    /// The worst (largest) global-decision round over all runs.
    pub worst_round: Round,
    /// The best (smallest) global-decision round over all runs.
    pub best_round: Round,
    /// A schedule attaining the worst round.
    pub worst_schedule: Schedule,
}

/// Error from a worst-case sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A run violated a consensus property; the offending schedule is
    /// attached.
    Violation {
        /// The violated property.
        violation: ConsensusViolation,
        /// The run that violated it.
        schedule: Box<Schedule>,
    },
    /// A run reached the execution horizon without a global decision.
    NoDecision {
        /// The run that failed to decide.
        schedule: Box<Schedule>,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Violation { violation, .. } => write!(f, "consensus violated: {violation}"),
            CheckError::NoDecision { .. } => write!(f, "no global decision within the horizon"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Exhaustively runs `factory` under every serial schedule of `config`
/// (crashes in rounds `1..=crash_horizon`), checking the consensus
/// properties in each run and reporting the worst and best global-decision
/// rounds.
///
/// `run_horizon` bounds each run's execution; it must be generous enough
/// for the algorithm to decide in every serial run (serial runs are
/// synchronous, so for the paper's algorithms `t + 3` already suffices).
///
/// # Errors
///
/// Returns [`CheckError`] on the first property violation or undecided run.
pub fn worst_case_decision_round<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    proposals: &[Value],
    crash_horizon: u32,
    run_horizon: u32,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory,
{
    let mut report: Option<WorstCaseReport> = None;
    let mut runs = 0u64;
    let mut error: Option<CheckError> = None;
    let _ = for_each_serial_schedule(config, kind, crash_horizon, |schedule| {
        let outcome = run_schedule(factory, proposals, schedule, run_horizon);
        if let Err(violation) = outcome.check_consensus() {
            error = Some(CheckError::Violation { violation, schedule: Box::new(schedule.clone()) });
            return ControlFlow::Break(());
        }
        let Some(round) = outcome.global_decision_round() else {
            error = Some(CheckError::NoDecision { schedule: Box::new(schedule.clone()) });
            return ControlFlow::Break(());
        };
        runs += 1;
        report = Some(match report.take() {
            None => WorstCaseReport {
                runs,
                worst_round: round,
                best_round: round,
                worst_schedule: schedule.clone(),
            },
            Some(mut r) => {
                if round > r.worst_round {
                    r.worst_round = round;
                    r.worst_schedule = schedule.clone();
                }
                r.best_round = r.best_round.min(round);
                r.runs = runs;
                r
            }
        });
        ControlFlow::Continue(())
    });
    if let Some(e) = error {
        return Err(e);
    }
    Ok(report.expect("serial enumeration visits at least the crash-free run"))
}

/// Runs [`worst_case_decision_round`] over every binary proposal vector
/// (all `2^n` assignments of `{0, 1}`), returning the overall worst case.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn worst_case_over_binary_proposals<F>(
    factory: &F,
    config: SystemConfig,
    kind: ModelKind,
    crash_horizon: u32,
    run_horizon: u32,
) -> Result<WorstCaseReport, CheckError>
where
    F: ProcessFactory,
{
    let n = config.n();
    let mut overall: Option<WorstCaseReport> = None;
    for bits in 0u64..(1 << n) {
        let proposals: Vec<Value> = (0..n).map(|i| Value::binary(bits & (1 << i) != 0)).collect();
        let report = worst_case_decision_round(
            factory,
            config,
            kind,
            &proposals,
            crash_horizon,
            run_horizon,
        )?;
        overall = Some(match overall.take() {
            None => report,
            Some(mut o) => {
                if report.worst_round > o.worst_round {
                    o.worst_round = report.worst_round;
                    o.worst_schedule = report.worst_schedule;
                }
                o.best_round = o.best_round.min(report.best_round);
                o.runs += report.runs;
                o
            }
        });
    }
    Ok(overall.expect("at least one proposal vector"))
}

#[cfg(test)]
mod tests {
    use indulgent_consensus::{AtPlus2, FloodSet, RotatingCoordinator};
    use indulgent_model::ProcessId;

    use super::*;

    #[test]
    fn at_plus2_worst_case_is_exactly_t_plus_2() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Es, &proposals, 3, 30).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // t + 2
        assert_eq!(report.best_round, Round::new(3)); // never earlier either
        assert_eq!(report.runs, 97);
    }

    #[test]
    fn floodset_worst_case_is_exactly_t_plus_1_in_scs() {
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let factory = move |_i: usize, v: Value| FloodSet::new(config, v);
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Scs, &proposals, 3, 10).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // t + 1
        assert_eq!(report.best_round, Round::new(3));
    }

    #[test]
    fn binary_sweep_covers_all_vectors() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let report =
            worst_case_over_binary_proposals(&factory, config, ModelKind::Es, 3, 30).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // t + 2 with t = 1
                                                       // 8 proposal vectors x 37 serial schedules each.
        assert_eq!(report.runs, 8 * 37);
    }

    #[test]
    fn coordinator_echo_exhaustive_worst_case_is_2t_plus_2() {
        use indulgent_consensus::CoordinatorEcho;
        let config = SystemConfig::majority(3, 1).unwrap();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let proposals: Vec<Value> = [5u64, 3, 8].map(Value::new).to_vec();
        // Crashes may land anywhere in the first 2t + 2 rounds.
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Es, &proposals, 4, 30).unwrap();
        assert_eq!(report.worst_round, Round::new(4)); // 2t + 2
        assert_eq!(report.best_round, Round::new(2)); // failure-free phase 1
    }

    #[test]
    fn early_floodset_exhaustive_worst_case_is_min_f2_t1() {
        use indulgent_consensus::EarlyFloodSet;
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let factory = move |_i: usize, v: Value| EarlyFloodSet::new(config, v);
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let report =
            worst_case_decision_round(&factory, config, ModelKind::Scs, &proposals, 3, 10).unwrap();
        assert_eq!(report.worst_round, Round::new(3)); // min(f+2, t+1) with f = t = 2
        assert_eq!(report.best_round, Round::new(2)); // failure-free f + 2
    }

    #[test]
    fn truncated_floodset_is_caught_violating_agreement() {
        // An algorithm deciding one round too early (at round t instead of
        // t + 1) must be caught by the sweep: the t + 1 bound is real.
        let config = SystemConfig::synchronous(4, 2).unwrap();
        let early = config.t() as u32; // decide at round t
        let factory = move |_i: usize, v: Value| FloodSet::deciding_at(Round::new(early), v);
        let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();
        let err = worst_case_decision_round(&factory, config, ModelKind::Scs, &proposals, 3, 10)
            .unwrap_err();
        assert!(matches!(err, CheckError::Violation { .. }));
    }
}
