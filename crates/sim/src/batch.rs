//! Work-unit partitioning of the serial-schedule space.
//!
//! The serial enumeration of [`serial`](crate::serial) visits a tree of
//! schedules. Splitting that tree at its *first crash* — the earliest
//! round in which a crash is scheduled, together with the crashing process
//! and the subset of receivers that still get its last message — yields
//! independent work units:
//!
//! * one unit holding exactly the bare prefix (no further crashes), and
//! * one unit per `(round, victim, keep-subset)` choice of the first
//!   additional crash, covering every schedule whose earliest additional
//!   crash is exactly that choice.
//!
//! The units are **disjoint** (a serial schedule has at most one crash per
//! round, so its earliest crash is unique) and their union is exactly the
//! set of schedules [`for_each_serial_schedule`] visits. Concatenating the
//! units' enumerations in the order [`work_units`] returns them reproduces
//! the serial visit order *exactly* — the property the deterministic
//! merges of both sweep engines (the replay pool in
//! [`parallel`](crate::parallel) and the incremental fork-on-branch DFS in
//! [`incremental`](crate::incremental)) rely on, and one the partition
//! tests assert.
//!
//! [`for_each_serial_schedule`]: crate::for_each_serial_schedule

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use indulgent_model::{ProcessId, Round, SystemConfig};

use crate::schedule::{MessageFate, ModelKind, Schedule};
use crate::serial::for_each_serial_extension;

/// One independent slice of a serial-schedule space: all serial extensions
/// of `prefix` whose additional crashes lie in `from_round..=horizon`.
///
/// Build units with [`work_units`] or [`extension_work_units`]; enumerate
/// a unit's schedules with [`WorkUnit::for_each`].
#[derive(Debug, Clone)]
pub struct WorkUnit {
    prefix: Schedule,
    from_round: u32,
    horizon: u32,
}

impl WorkUnit {
    /// The unit's prefix schedule (its crashes and message fates are shared
    /// by every schedule in the unit).
    #[must_use]
    pub fn prefix(&self) -> &Schedule {
        &self.prefix
    }

    /// The first round in which this unit schedules additional crashes
    /// (`horizon + 1` for the bare-prefix unit, which contains exactly one
    /// schedule).
    #[must_use]
    pub fn from_round(&self) -> u32 {
        self.from_round
    }

    /// Enumerates the unit's schedules in serial order, invoking `visit`
    /// on each; `ControlFlow::Break` aborts.
    pub fn for_each<F>(&self, visit: F) -> ControlFlow<()>
    where
        F: FnMut(&Schedule) -> ControlFlow<()>,
    {
        for_each_serial_extension(&self.prefix, self.from_round, self.horizon, visit)
    }

    /// Counts the schedules in this unit.
    #[must_use]
    pub fn count(&self) -> u64 {
        let mut count = 0;
        let _ = self.for_each(|_| {
            count += 1;
            ControlFlow::Continue(())
        });
        count
    }
}

/// Partitions the full serial-schedule space of `config` over rounds
/// `1..=horizon` into independent work units by first crash.
///
/// Concatenating the units' enumerations in the returned order yields
/// exactly the schedule sequence of
/// [`for_each_serial_schedule`](crate::for_each_serial_schedule).
#[must_use]
pub fn work_units(config: SystemConfig, kind: ModelKind, horizon: u32) -> Vec<WorkUnit> {
    extension_work_units(&Schedule::failure_free(config, kind), 1, horizon)
}

/// Partitions the serial extensions of `prefix` (additional crashes in
/// `from_round..=horizon`) into independent work units by first additional
/// crash.
///
/// Concatenating the units' enumerations in the returned order yields
/// exactly the schedule sequence of
/// [`for_each_serial_extension`](crate::for_each_serial_extension) over the
/// same arguments.
///
/// # Panics
///
/// Panics if `prefix` schedules a crash at or after `from_round` (same
/// contract as the serial extension enumerator).
#[must_use]
pub fn extension_work_units(prefix: &Schedule, from_round: u32, horizon: u32) -> Vec<WorkUnit> {
    let config = prefix.config();
    assert!(
        config.processes().filter_map(|p| prefix.crash_round(p)).all(|r| r.get() < from_round),
        "prefix crashes must be confined to rounds before the extension"
    );

    // Serial visit order puts the bare prefix first (the all-"no crash"
    // recursion branch bottoms out before any crash is tried)...
    let mut units = vec![WorkUnit { prefix: prefix.clone(), from_round: horizon + 1, horizon }];
    if prefix.crash_count() >= config.t() {
        return units;
    }

    let alive: Vec<ProcessId> =
        config.processes().filter(|&p| prefix.crash_round(p).is_none()).collect();
    let base_crashes: Vec<Option<Round>> =
        config.processes().map(|p| prefix.crash_round(p)).collect();
    let base_overrides: BTreeMap<(u32, usize, usize), MessageFate> =
        prefix.overrides().map(|(r, s, d, f)| ((r.get(), s.index(), d.index()), f)).collect();

    // ... and then unwinds from the deepest round back to `from_round`, so
    // first-crash groups appear in *descending* round order, with victims
    // in ascending id order and keep-subsets in ascending mask order.
    for round in (from_round..=horizon).rev() {
        for &victim in &alive {
            let receivers: Vec<ProcessId> =
                alive.iter().copied().filter(|&q| q != victim).collect();
            for keep_mask in 0u32..(1 << receivers.len()) {
                let mut crash_rounds = base_crashes.clone();
                crash_rounds[victim.index()] = Some(Round::new(round));
                let mut overrides = base_overrides.clone();
                for (bit, &q) in receivers.iter().enumerate() {
                    if keep_mask & (1 << bit) == 0 {
                        overrides.insert((round, victim.index(), q.index()), MessageFate::Lose);
                    }
                }
                let unit_prefix = Schedule::from_parts(
                    config,
                    prefix.kind(),
                    crash_rounds,
                    overrides,
                    prefix.sync_from(),
                );
                units.push(WorkUnit { prefix: unit_prefix, from_round: round + 1, horizon });
            }
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{count_serial_schedules, for_each_serial_schedule};

    #[test]
    fn units_cover_the_space_in_serial_order() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        let mut serial: Vec<Schedule> = Vec::new();
        let _ = for_each_serial_schedule(cfg, ModelKind::Es, 3, |s| {
            serial.push(s.clone());
            ControlFlow::Continue(())
        });
        let mut unioned: Vec<Schedule> = Vec::new();
        for unit in work_units(cfg, ModelKind::Es, 3) {
            let _ = unit.for_each(|s| {
                unioned.push(s.clone());
                ControlFlow::Continue(())
            });
        }
        assert_eq!(serial, unioned, "unit concatenation must equal the serial visit sequence");
    }

    #[test]
    fn unit_counts_sum_to_the_space_size() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        let units = work_units(cfg, ModelKind::Es, 3);
        let total: u64 = units.iter().map(WorkUnit::count).sum();
        assert_eq!(total, count_serial_schedules(cfg, 3));
    }

    #[test]
    fn exhausted_crash_budget_yields_only_the_bare_prefix() {
        use crate::builder::ScheduleBuilder;
        let cfg = SystemConfig::majority(3, 1).unwrap();
        let prefix = ScheduleBuilder::new(cfg, ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::FIRST)
            .build(3)
            .unwrap();
        let units = extension_work_units(&prefix, 2, 3);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].count(), 1);
    }

    #[test]
    fn unit_sizes_match_the_closed_form_for_one_crash() {
        // n=3, t=1, horizon=2: the bare unit (1 schedule) plus one unit per
        // (round, victim, mask): 2 rounds x 3 victims x 4 masks = 24 units
        // of one schedule each (the single crash exhausts the budget).
        let cfg = SystemConfig::majority(3, 1).unwrap();
        let units = work_units(cfg, ModelKind::Es, 2);
        assert_eq!(units.len(), 25);
        assert!(units.iter().all(|u| u.count() == 1));
    }

    #[test]
    #[should_panic(expected = "confined to rounds before")]
    fn conflicting_prefix_rejected() {
        use crate::builder::ScheduleBuilder;
        let cfg = SystemConfig::majority(4, 1).unwrap();
        let prefix = ScheduleBuilder::new(cfg, ModelKind::Es)
            .crash_after_send(ProcessId::new(0), Round::new(3))
            .build(4)
            .unwrap();
        let _ = extension_work_units(&prefix, 2, 4);
    }
}
