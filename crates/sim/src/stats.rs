//! Cheap engine counters: what the round executor actually did.
//!
//! The zero-allocation round engine ([`executor`](crate::executor)) is
//! tuned around two fast paths — the shared-broadcast delivery and the
//! recycled fork snapshots — whose hit rates determine sweep throughput.
//! This module exposes a handful of global, process-wide counters the
//! engine bumps as it runs, so benches (`sweep_throughput` emits them into
//! `BENCH_sweep.json`) and ad-hoc diagnostics can see *why* a sweep is
//! fast or slow without attaching a profiler:
//!
//! * `rounds_stepped` — rounds executed by [`RunState::step`];
//! * `fast_path_rounds` — rounds taking the shared-broadcast fast path
//!   (one pooled [`Delivery`](indulgent_model::Delivery) handed to every
//!   receiver, zero payload clones);
//! * `deliveries_built` — deliveries materialized (1 per fast-path round,
//!   one per completing receiver otherwise);
//! * `messages_cloned` — message payload clones performed by the send
//!   phase (a fast-path round clones nothing: every payload moves);
//! * `forks` — [`RunState`] snapshots forked by the incremental
//!   fork-on-branch sweep ([`incremental`](crate::incremental)).
//!
//! The counters are [`indulgent_obs::Counter`]s — relaxed atomics whose
//! increments are a few nanoseconds, never synchronize, and never
//! allocate — and they aggregate across the pooled sweep workers
//! ([`parallel`](crate::parallel)) as well as the serial engine. The set
//! also registers as the `sim_engine` [metric family]
//! (indulgent_obs::MetricFamily), so registry-wide dumps see the round
//! engine next to the server-side families. They monotonically increase
//! for the lifetime of the process; measure a region by
//! [`reset`](EngineCounters::reset)ting first or by diffing two
//! [`snapshot`](EngineCounters::snapshot)s. Resets race against
//! concurrently running sweeps, so only reset while no sweep is in flight.
//!
//! [`RunState`]: crate::RunState
//! [`RunState::step`]: crate::RunState::step

use std::sync::Once;

use indulgent_obs::{Counter, MetricFamily, MetricSink};

/// The process-wide engine counters. See the module docs for the meaning
/// of each counter.
#[derive(Debug)]
pub struct EngineCounters {
    rounds_stepped: Counter,
    fast_path_rounds: Counter,
    deliveries_built: Counter,
    messages_cloned: Counter,
    forks: Counter,
}

/// A point-in-time copy of the [`EngineCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    /// Rounds executed by the stepper.
    pub rounds_stepped: u64,
    /// Rounds that took the shared-broadcast fast path.
    pub fast_path_rounds: u64,
    /// Deliveries materialized by receive phases.
    pub deliveries_built: u64,
    /// Message payload clones performed by send phases.
    pub messages_cloned: u64,
    /// Snapshots forked by the incremental sweep engine.
    pub forks: u64,
}

static COUNTERS: EngineCounters = EngineCounters {
    rounds_stepped: Counter::new(),
    fast_path_rounds: Counter::new(),
    deliveries_built: Counter::new(),
    messages_cloned: Counter::new(),
    forks: Counter::new(),
};

impl MetricFamily for EngineCounters {
    fn name(&self) -> &'static str {
        "sim_engine"
    }

    fn emit(&self, sink: &mut dyn MetricSink) {
        sink.counter("rounds_stepped", self.rounds_stepped.get());
        sink.counter("fast_path_rounds", self.fast_path_rounds.get());
        sink.counter("deliveries_built", self.deliveries_built.get());
        sink.counter("messages_cloned", self.messages_cloned.get());
        sink.counter("forks", self.forks.get());
    }
}

static REGISTER: Once = Once::new();

/// The global counters of this process's round engine.
#[must_use]
pub fn engine_counters() -> &'static EngineCounters {
    // Registration is one-time and lazy; after the first call this is a
    // single relaxed load, so fetching the counters stays cheap enough
    // for per-round use.
    REGISTER.call_once(|| indulgent_obs::register_family(&COUNTERS));
    &COUNTERS
}

impl EngineCounters {
    /// Copies the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            rounds_stepped: self.rounds_stepped.get(),
            fast_path_rounds: self.fast_path_rounds.get(),
            deliveries_built: self.deliveries_built.get(),
            messages_cloned: self.messages_cloned.get(),
            forks: self.forks.get(),
        }
    }

    /// Zeroes every counter. Only meaningful while no sweep is running.
    pub fn reset(&self) {
        self.rounds_stepped.reset();
        self.fast_path_rounds.reset();
        self.deliveries_built.reset();
        self.messages_cloned.reset();
        self.forks.reset();
    }

    /// Flushes one executed round's tallies (called once per
    /// `step_observed`, so the per-message hot loops stay atomics-free).
    pub(crate) fn record_round(&self, fast_path: bool, deliveries: u64, cloned: u64) {
        self.rounds_stepped.incr();
        if fast_path {
            self.fast_path_rounds.incr();
        }
        self.deliveries_built.add(deliveries);
        if cloned != 0 {
            self.messages_cloned.add(cloned);
        }
    }

    /// Records one snapshot fork of the incremental sweep.
    pub(crate) fn record_fork(&self) {
        self.forks.incr();
    }
}

impl EngineSnapshot {
    /// The difference `self - earlier`, counter by counter (saturating, in
    /// case a reset happened in between).
    #[must_use]
    pub fn since(&self, earlier: &EngineSnapshot) -> EngineSnapshot {
        EngineSnapshot {
            rounds_stepped: self.rounds_stepped.saturating_sub(earlier.rounds_stepped),
            fast_path_rounds: self.fast_path_rounds.saturating_sub(earlier.fast_path_rounds),
            deliveries_built: self.deliveries_built.saturating_sub(earlier.deliveries_built),
            messages_cloned: self.messages_cloned.saturating_sub(earlier.messages_cloned),
            forks: self.forks.saturating_sub(earlier.forks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_is_per_counter() {
        let a = EngineSnapshot {
            rounds_stepped: 10,
            fast_path_rounds: 4,
            deliveries_built: 20,
            messages_cloned: 7,
            forks: 3,
        };
        let b = EngineSnapshot {
            rounds_stepped: 25,
            fast_path_rounds: 9,
            deliveries_built: 41,
            messages_cloned: 7,
            forks: 5,
        };
        let d = b.since(&a);
        assert_eq!(d.rounds_stepped, 15);
        assert_eq!(d.fast_path_rounds, 5);
        assert_eq!(d.deliveries_built, 21);
        assert_eq!(d.messages_cloned, 0);
        assert_eq!(d.forks, 2);
    }

    #[test]
    fn recording_accumulates() {
        // The counters are global and other tests step executors
        // concurrently, so assert on deltas of what we add here.
        let before = engine_counters().snapshot();
        engine_counters().record_round(true, 1, 0);
        engine_counters().record_round(false, 5, 12);
        engine_counters().record_fork();
        let d = engine_counters().snapshot().since(&before);
        assert!(d.rounds_stepped >= 2);
        assert!(d.fast_path_rounds >= 1);
        assert!(d.deliveries_built >= 6);
        assert!(d.messages_cloned >= 12);
        assert!(d.forks >= 1);
    }

    #[test]
    fn counters_register_as_the_sim_engine_family() {
        engine_counters().record_round(true, 1, 0);
        let mut seen = false;
        indulgent_obs::visit_families(|f| seen |= f.name() == "sim_engine");
        assert!(seen, "engine_counters() registers the sim_engine family");
    }
}
