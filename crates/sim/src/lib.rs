//! Deterministic round-based simulator for the SCS and ES models.
//!
//! This crate turns the paper's pencil-and-paper runs into executable
//! artifacts:
//!
//! * [`Schedule`] — a complete adversary description (crashes, crash-round
//!   message fates, delays, the eventual-synchrony round `K`), validated
//!   against the model constraints of *"The inherent price of indulgence"*
//!   (t-resilience, reliable channels, eventual synchrony);
//! * [`ScheduleBuilder`] — fluent construction of hand-crafted runs, e.g.
//!   the `s1/s0/a2/a1/a0` runs of the paper's Claim 5.1;
//! * [`run_schedule`] — the deterministic run-from-scratch executor
//!   driving any [`indulgent_model::RoundProcess`] through a schedule;
//!   [`RunState`] is its step-wise core: a snapshotable mid-run state
//!   (processes, decisions, mailboxes) advanced one round at a time, which
//!   both the plain and the traced executor drive;
//! * [`random`] — seeded random adversaries for statistical sweeps (these
//!   runs have no prefix structure to share and always replay from
//!   scratch);
//! * [`serial`] — exhaustive enumeration of serial runs (at most one crash
//!   per round), the run class used by the lower-bound proof;
//! * [`batch`] / [`parallel`] — the batch-sweep engine: the serial space
//!   partitioned into independent work units by first crash, fanned out
//!   over a scoped worker pool. [`SweepBackend`] selects serial or
//!   parallel execution (`INDULGENT_SWEEP_BACKEND` in the environment
//!   flips every default sweep); merged results are identical regardless
//!   of thread count, which pushes exhaustive sweeps to `n = 7, t = 2`;
//! * [`multishot`] — the multi-shot executor: chained consensus instances
//!   on one recycled [`RunState`] (instance-reset hooks instead of
//!   rebuilds), the simulator substrate of the `indulgent-log`
//!   replicated-log subsystem;
//! * [`incremental`] — the prefix-sharing sweep: enumeration fused with
//!   execution. [`for_each_serial_run`] walks the serial-schedule tree
//!   executing each shared prefix exactly once, forking [`RunState`]
//!   snapshots at branch points; [`sweep_runs`] folds outcomes over any
//!   [`SweepBackend`], bit-identical to replaying every schedule but
//!   algorithmically faster independent of thread count.
//!
//! # Example
//!
//! ```
//! use indulgent_model::{Delivery, Round, RoundProcess, Step, SystemConfig, Value};
//! use indulgent_sim::{run_schedule, ModelKind, Schedule};
//!
//! #[derive(Clone)]
//! struct Echo(Value);
//! impl RoundProcess for Echo {
//!     type Msg = Value;
//!     fn send(&mut self, _round: Round) -> Value { self.0 }
//!     fn deliver(&mut self, _round: Round, d: &Delivery<Value>) -> Step {
//!         let min = d.current().map(|m| m.msg).min().unwrap_or(self.0);
//!         Step::Decide(min)
//!     }
//! }
//!
//! let cfg = SystemConfig::majority(3, 1)?;
//! let schedule = Schedule::failure_free(cfg, ModelKind::Es);
//! let outcome = run_schedule(
//!     &|_i: usize, v: Value| Echo(v),
//!     &[Value::new(4), Value::new(2), Value::new(9)],
//!     &schedule,
//!     5,
//! )?;
//! assert!(outcome.all_correct_decided());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod batch;
mod builder;
mod executor;
pub mod fd_sim;
pub mod incremental;
pub mod multishot;
pub mod parallel;
pub mod random;
mod schedule;
pub mod serial;
pub mod stats;
pub mod trace;

pub use batch::{extension_work_units, work_units, WorkUnit};
pub use builder::ScheduleBuilder;
pub use executor::{run_schedule, ExecutorError, RoundObserver, RunState};
pub use fd_sim::ScheduleDetector;
pub use incremental::{
    for_each_serial_run, for_each_serial_run_extension, sweep_run_extensions, sweep_runs,
};
pub use multishot::MultiShotRunner;
pub use parallel::{
    pooled_map_indexed, sweep_count, sweep_extensions, sweep_schedules, SweepBackend,
    SWEEP_BACKEND_ENV,
};
pub use random::{random_run, RandomRunParams};
pub use schedule::{MessageFate, ModelKind, Schedule, ScheduleError};
pub use serial::{count_serial_schedules, for_each_serial_extension, for_each_serial_schedule};
pub use stats::{engine_counters, EngineCounters, EngineSnapshot};
pub use trace::{run_traced, RoundRecord, RunTrace};
