//! Fluent construction of adversary schedules.

use std::collections::BTreeMap;

use indulgent_model::{ProcessId, ProcessSet, Round, SystemConfig};

use crate::schedule::{MessageFate, ModelKind, Schedule, ScheduleError};

/// Builder for [`Schedule`]s.
///
/// The builder collects crash plans and message fates and validates the
/// complete schedule on [`ScheduleBuilder::build`].
///
/// # Examples
///
/// A synchronous run of `n = 5, t = 2` in which `p0` crashes in round 2,
/// its round-2 message reaching only `p1`:
///
/// ```
/// use indulgent_model::{ProcessId, Round, SystemConfig};
/// use indulgent_sim::{ModelKind, ScheduleBuilder};
///
/// let cfg = SystemConfig::majority(5, 2)?;
/// let schedule = ScheduleBuilder::new(cfg, ModelKind::Es)
///     .crash_delivering_only(
///         ProcessId::new(0),
///         Round::new(2),
///         [ProcessId::new(1)],
///     )
///     .build(10)?;
/// assert!(schedule.is_synchronous());
/// assert_eq!(schedule.crash_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    config: SystemConfig,
    kind: ModelKind,
    crash_rounds: Vec<Option<Round>>,
    overrides: BTreeMap<(u32, usize, usize), MessageFate>,
    sync_from: Round,
}

impl ScheduleBuilder {
    /// Starts building a schedule for `config` in model `kind`.
    #[must_use]
    pub fn new(config: SystemConfig, kind: ModelKind) -> Self {
        ScheduleBuilder {
            config,
            kind,
            crash_rounds: vec![None; config.n()],
            overrides: BTreeMap::new(),
            sync_from: Round::FIRST,
        }
    }

    /// Sets the eventual-synchrony round `K`; rounds `>= K` are synchronous.
    #[must_use]
    pub fn sync_from(mut self, k: Round) -> Self {
        self.sync_from = k;
        self
    }

    /// Crashes `p` in `round`, with all of its round-`round` messages
    /// delivered normally (a "clean" crash after sending).
    #[must_use]
    pub fn crash_after_send(mut self, p: ProcessId, round: Round) -> Self {
        self.crash_rounds[p.index()] = Some(round);
        self
    }

    /// Crashes `p` in `round` before sending anything: all its round-`round`
    /// messages are lost.
    #[must_use]
    pub fn crash_before_send(self, p: ProcessId, round: Round) -> Self {
        let others: Vec<ProcessId> = self.config.processes().filter(|&q| q != p).collect();
        self.crash_losing_to(p, round, others)
    }

    /// Crashes `p` in `round`; its message is lost to every process in
    /// `losers` and delivered to the rest.
    #[must_use]
    pub fn crash_losing_to<I>(mut self, p: ProcessId, round: Round, losers: I) -> Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        self.crash_rounds[p.index()] = Some(round);
        for q in losers {
            self.overrides.insert((round.get(), p.index(), q.index()), MessageFate::Lose);
        }
        self
    }

    /// Crashes `p` in `round`; its message is delivered only to processes in
    /// `receivers` and lost to all others.
    #[must_use]
    pub fn crash_delivering_only<I>(self, p: ProcessId, round: Round, receivers: I) -> Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let keep: ProcessSet = receivers.into_iter().collect();
        let losers: Vec<ProcessId> =
            self.config.processes().filter(|&q| q != p && !keep.contains(q)).collect();
        self.crash_losing_to(p, round, losers)
    }

    /// Crashes `p` in `round`; its message to each process in `delayed` is
    /// delayed until `arrival`, delivered in-round to the rest.
    ///
    /// This is the schedule shape used throughout the paper's lower-bound
    /// proof (runs `a2`, `a1`, `a0` of Claim 5.1): crash-round messages may
    /// be delayed even in synchronous runs.
    #[must_use]
    pub fn crash_delaying_to<I>(
        mut self,
        p: ProcessId,
        round: Round,
        delayed: I,
        arrival: Round,
    ) -> Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        self.crash_rounds[p.index()] = Some(round);
        for q in delayed {
            self.overrides.insert((round.get(), p.index(), q.index()), MessageFate::Delay(arrival));
        }
        self
    }

    /// Delays the round-`round` message from `sender` to `receiver` until
    /// `arrival` (a false suspicion of `sender` by `receiver` in `round`).
    #[must_use]
    pub fn delay(
        mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        arrival: Round,
    ) -> Self {
        self.overrides
            .insert((round.get(), sender.index(), receiver.index()), MessageFate::Delay(arrival));
        self
    }

    /// Loses the round-`round` message from `sender` to `receiver`.
    /// Only legal where the model allows loss (see [`Schedule::validate`]).
    #[must_use]
    pub fn lose(mut self, round: Round, sender: ProcessId, receiver: ProcessId) -> Self {
        self.overrides.insert((round.get(), sender.index(), receiver.index()), MessageFate::Lose);
        self
    }

    /// Finishes the schedule, validating it for rounds `1..=horizon`.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if the schedule violates the model.
    pub fn build(self, horizon: u32) -> Result<Schedule, ScheduleError> {
        let schedule = Schedule::from_parts(
            self.config,
            self.kind,
            self.crash_rounds,
            self.overrides,
            self.sync_from,
        );
        schedule.validate(horizon)?;
        Ok(schedule)
    }

    /// Finishes the schedule without validation. Intended for constructing
    /// deliberately illegal schedules in tests.
    #[must_use]
    pub fn build_unchecked(self) -> Schedule {
        Schedule::from_parts(
            self.config,
            self.kind,
            self.crash_rounds,
            self.overrides,
            self.sync_from,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    #[test]
    fn crash_after_send_delivers_everything() {
        let s = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_after_send(ProcessId::new(1), Round::new(3))
            .build(5)
            .unwrap();
        assert_eq!(s.crash_round(ProcessId::new(1)), Some(Round::new(3)));
        assert_eq!(
            s.fate(Round::new(3), ProcessId::new(1), ProcessId::new(0)),
            MessageFate::Deliver
        );
    }

    #[test]
    fn crash_before_send_loses_everything() {
        let s = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(1), Round::new(2))
            .build(5)
            .unwrap();
        for q in cfg().processes().filter(|&q| q != ProcessId::new(1)) {
            assert_eq!(s.fate(Round::new(2), ProcessId::new(1), q), MessageFate::Lose);
        }
    }

    #[test]
    fn crash_delivering_only_partitions_receivers() {
        let s = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(0), Round::new(1), [ProcessId::new(2)])
            .build(5)
            .unwrap();
        assert_eq!(
            s.fate(Round::FIRST, ProcessId::new(0), ProcessId::new(2)),
            MessageFate::Deliver
        );
        assert_eq!(s.fate(Round::FIRST, ProcessId::new(0), ProcessId::new(1)), MessageFate::Lose);
    }

    #[test]
    fn crash_delaying_to_schedules_delays() {
        let s = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delaying_to(ProcessId::new(0), Round::new(2), [ProcessId::new(3)], Round::new(4))
            .build(5)
            .unwrap();
        assert_eq!(
            s.fate(Round::new(2), ProcessId::new(0), ProcessId::new(3)),
            MessageFate::Delay(Round::new(4))
        );
        assert!(s.is_synchronous());
    }

    #[test]
    fn async_prefix_delay() {
        let s = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(3))
            .delay(Round::new(1), ProcessId::new(0), ProcessId::new(1), Round::new(3))
            .build(5)
            .unwrap();
        assert!(!s.is_synchronous());
        assert_eq!(s.sync_from(), Round::new(3));
    }

    #[test]
    fn invalid_schedules_rejected_at_build() {
        let err = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .lose(Round::new(1), ProcessId::new(0), ProcessId::new(1))
            .build(5)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::IllegalLoss { .. }));
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let s = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .lose(Round::new(1), ProcessId::new(0), ProcessId::new(1))
            .build_unchecked();
        assert!(s.validate(5).is_err());
    }
}
