//! Run tracing: record what happened, round by round, and render it.
//!
//! The paper's Fig. 1 depicts runs as process timelines with crosses for
//! crashes, arrows for messages and markers for decisions. The
//! [`run_traced`] executor records exactly that information — per round and
//! per process: what was sent, which current-round messages arrived, which
//! processes were suspected, what was decided — and [`RunTrace::render`]
//! draws an ASCII timeline. Traces also power debugging assertions in the
//! test suites (e.g. "p1 suspected p0 in round 1 but not round 2").

use std::collections::BTreeMap;
use std::fmt::Write as _;

use indulgent_model::{Delivery, ProcessFactory, ProcessId, ProcessSet, Round, RunOutcome, Value};

use crate::executor::{ExecutorError, RoundObserver, RunState};
use crate::schedule::Schedule;

/// What one process experienced in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// The round.
    pub round: Round,
    /// The process.
    pub process: ProcessId,
    /// Senders whose current-round message arrived.
    pub heard: ProcessSet,
    /// Processes suspected this round (current-round message absent).
    pub suspected: ProcessSet,
    /// Number of delayed (earlier-round) messages that arrived.
    pub delayed_arrivals: usize,
    /// The decision taken at the end of this round, if any.
    pub decision: Option<Value>,
}

/// A full record of one simulated run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    n: usize,
    records: BTreeMap<(u32, usize), RoundRecord>,
    crashes: Vec<Option<Round>>,
    outcome: RunOutcome,
}

impl RunTrace {
    /// The run outcome (decisions, crashes, rounds executed).
    #[must_use]
    pub fn outcome(&self) -> &RunOutcome {
        &self.outcome
    }

    /// The record of `process` at `round`, if the process completed it.
    #[must_use]
    pub fn record(&self, round: Round, process: ProcessId) -> Option<&RoundRecord> {
        self.records.get(&(round.get(), process.index()))
    }

    /// Iterates over all records in (round, process) order.
    pub fn records(&self) -> impl Iterator<Item = &RoundRecord> {
        self.records.values()
    }

    /// Returns `true` if `observer` suspected `target` in `round`.
    #[must_use]
    pub fn suspected(&self, round: Round, observer: ProcessId, target: ProcessId) -> bool {
        self.record(round, observer).is_some_and(|r| r.suspected.contains(target))
    }

    /// Renders the run as an ASCII timeline, one row per process, one
    /// column per round:
    ///
    /// * `.` — completed the round uneventfully,
    /// * `s` — suspected someone this round,
    /// * `D` — decided at the end of this round,
    /// * `X` — crashed in this round,
    /// * (blank) — already crashed.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max_round = self.outcome.rounds_executed;
        let _ = write!(out, "{:>4} |", "");
        for k in 1..=max_round {
            let _ = write!(out, "{k:>3}");
        }
        out.push('\n');
        let _ = writeln!(out, "-----+{}", "-".repeat(3 * max_round as usize));
        for i in 0..self.n {
            let p = ProcessId::new(i);
            let _ = write!(out, "{:>4} |", p.to_string());
            for k in 1..=max_round {
                let cell = if self.crashes[i].map(Round::get) == Some(k) {
                    "X"
                } else if let Some(rec) = self.record(Round::new(k), p) {
                    if rec.decision.is_some() {
                        "D"
                    } else if !rec.suspected.is_empty() {
                        "s"
                    } else {
                        "."
                    }
                } else {
                    " "
                };
                let _ = write!(out, "{cell:>3}");
            }
            match self.outcome.decision_of(p) {
                Some(d) => {
                    let _ = write!(out, "   decided {} @ {}", d.value, d.round);
                }
                None if self.crashes[i].is_some() => {
                    let _ = write!(out, "   crashed");
                }
                None => {
                    let _ = write!(out, "   undecided");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Observer assembling [`RoundRecord`]s from the stepper's receive phases.
#[derive(Debug, Default)]
struct TraceObserver {
    n: usize,
    records: BTreeMap<(u32, usize), RoundRecord>,
}

impl<M> RoundObserver<M> for TraceObserver {
    fn on_receive(
        &mut self,
        round: Round,
        process: ProcessId,
        delivery: &Delivery<M>,
        decision: Option<Value>,
    ) {
        let heard = delivery.current_senders();
        self.records.insert(
            (round.get(), process.index()),
            RoundRecord {
                round,
                process,
                heard,
                suspected: heard.complement(self.n).difference(ProcessSet::from_ids([process])),
                delayed_arrivals: delivery.delayed().count(),
                decision,
            },
        );
    }
}

/// Like [`run_schedule`](crate::run_schedule) but records a full
/// [`RunTrace`]. Both executors drive the same [`RunState`] stepper, so a
/// traced run's outcome is bit-identical to the plain executor's — the
/// observer sees every receive phase whether the stepper took the
/// shared-broadcast fast path (one pooled delivery handed to all
/// receivers of a clean round) or the general per-receiver path, and the
/// recorded rounds are indistinguishable.
///
/// # Errors
///
/// Returns [`ExecutorError::ProposalCountMismatch`] if `proposals.len()`
/// differs from the configuration size.
pub fn run_traced<F>(
    factory: &F,
    proposals: &[Value],
    schedule: &Schedule,
    horizon: u32,
) -> Result<RunTrace, ExecutorError>
where
    F: ProcessFactory,
{
    let config = schedule.config();
    let n = config.n();
    let mut state: RunState<F::Process> = RunState::new(factory, proposals, n)?;
    let mut observer = TraceObserver { n, records: BTreeMap::new() };
    while state.rounds_executed() < horizon && !state.halted() {
        state.step_observed(schedule, &mut observer);
    }
    Ok(RunTrace {
        n,
        records: observer.records,
        crashes: config.processes().map(|p| schedule.crash_round(p)).collect(),
        outcome: state.outcome(proposals, schedule),
    })
}

#[cfg(test)]
mod tests {
    use indulgent_model::{RoundProcess, Step, SystemConfig, Value};

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::schedule::ModelKind;

    /// Minimal flooding automaton for trace tests.
    #[derive(Debug, Clone)]
    struct Flood {
        est: Value,
        decide_at: u32,
        decided: bool,
    }

    impl RoundProcess for Flood {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.est
        }

        fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
            for m in delivery.current() {
                self.est = self.est.min(m.msg);
            }
            if round.get() >= self.decide_at && !self.decided {
                self.decided = true;
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn factory() -> impl ProcessFactory<Process = Flood> {
        |_i: usize, v: Value| Flood { est: v, decide_at: 2, decided: false }
    }

    fn cfg() -> SystemConfig {
        SystemConfig::majority(3, 1).unwrap()
    }

    fn vals() -> Vec<Value> {
        vec![Value::new(5), Value::new(1), Value::new(9)]
    }

    #[test]
    fn trace_records_suspicions_and_decisions() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(1), Round::FIRST)
            .build(10)
            .unwrap();
        let trace = run_traced(&factory(), &vals(), &schedule, 10).unwrap();
        // p0 suspected p1 in round 1 (it crashed before sending).
        assert!(trace.suspected(Round::FIRST, ProcessId::new(0), ProcessId::new(1)));
        assert!(!trace.suspected(Round::FIRST, ProcessId::new(0), ProcessId::new(2)));
        // p1 has no round records at all.
        assert!(trace.record(Round::FIRST, ProcessId::new(1)).is_none());
        // Decisions recorded at round 2.
        let rec = trace.record(Round::new(2), ProcessId::new(0)).unwrap();
        assert_eq!(rec.decision, Some(Value::new(5)));
        assert!(trace.outcome().check_consensus().is_ok());
    }

    #[test]
    fn trace_counts_delayed_arrivals() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(2))
            .delay(Round::FIRST, ProcessId::new(1), ProcessId::new(0), Round::new(2))
            .build(10)
            .unwrap();
        let trace = run_traced(&factory(), &vals(), &schedule, 10).unwrap();
        let r1 = trace.record(Round::FIRST, ProcessId::new(0)).unwrap();
        assert!(r1.suspected.contains(ProcessId::new(1)));
        let r2 = trace.record(Round::new(2), ProcessId::new(0)).unwrap();
        assert_eq!(r2.delayed_arrivals, 1);
    }

    #[test]
    fn trace_outcome_matches_plain_executor() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(10)
            .unwrap();
        let traced = run_traced(&factory(), &vals(), &schedule, 10).unwrap();
        let plain = crate::run_schedule(&factory(), &vals(), &schedule, 10).unwrap();
        assert_eq!(traced.outcome(), &plain);
    }

    #[test]
    fn render_shows_crash_decision_and_suspicion_markers() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(1), Round::FIRST)
            .build(10)
            .unwrap();
        let trace = run_traced(&factory(), &vals(), &schedule, 10).unwrap();
        let art = trace.render();
        assert!(art.contains('X'), "crash marker expected:\n{art}");
        assert!(art.contains('D'), "decision marker expected:\n{art}");
        assert!(art.contains('s'), "suspicion marker expected:\n{art}");
        assert!(art.contains("decided"));
        assert!(art.contains("crashed"));
    }

    #[test]
    fn records_iterate_in_round_process_order() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let trace = run_traced(&factory(), &vals(), &schedule, 10).unwrap();
        let keys: Vec<(u32, usize)> =
            trace.records().map(|r| (r.round.get(), r.process.index())).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
