//! The incremental prefix-sharing sweep: enumeration fused with execution.
//!
//! The serial enumerators of [`serial`](crate::serial) materialize every
//! schedule and hand it to a visitor, which classically re-executes the
//! run from round 1 ([`run_schedule`](crate::run_schedule)). But the
//! serial-schedule space is a *tree*: schedules sharing a crash prefix
//! share their entire execution up to the branch point, and a
//! run-from-scratch sweep replays that shared prefix once per leaf —
//! thousands of times for the checker's exhaustive sweeps.
//!
//! This module executes the tree instead of its leaves. The DFS of
//! [`for_each_serial_run`] mirrors the serial enumeration exactly — same
//! branch order (no crash first, then victims by ascending id, keep-masks
//! ascending), same schedules — but it carries a [`RunState`] snapshot
//! down the tree: each round of a shared prefix is executed **once**, and
//! at every branch point the state is forked (cloned) rather than rebuilt
//! from round 1. Leaves receive the finished [`RunOutcome`] together with
//! the schedule, bit-identical to what `run_schedule` would produce on
//! that schedule — including the early-exit `rounds_executed` and the
//! full-schedule crash set — which is what lets the checker's reports stay
//! byte-for-byte equal to the replay engine's.
//!
//! Three structural facts make the fusion sound:
//!
//! 1. round `k`'s execution depends only on crash/fate choices for rounds
//!    `<= k` (serial schedules fix crash-round fates at the crash round and
//!    delay nothing else), so a partial schedule suffices to step;
//! 2. [`RoundProcess`] automatons are `Clone`, so a mid-run state is a
//!    true snapshot — forks evolve exactly like fresh runs (the snapshot
//!    proptests assert this per algorithm);
//! 3. once every alive process has decided ([`RunState::halted`]), no
//!    extension changes decisions — the DFS stops stepping and shares one
//!    frozen state across the whole subtree, mirroring `run_schedule`'s
//!    early exit.
//!
//! [`sweep_runs`] / [`sweep_run_extensions`] are the backend-aware folds:
//! serial runs the DFS directly; parallel partitions the space into the
//! same first-crash work units as the replay engine
//! ([`batch`](crate::batch)) and runs one DFS per unit on the shared
//! worker pool, merging per-unit accumulators in serial visit order.
//! Random-adversary runs (delays, arbitrary crash patterns outside the
//! serial tree) have no shared prefix structure to exploit and keep using
//! the run-from-scratch executor.
//!
//! The DFS is tuned for the executor's zero-allocation steady state
//! ([`executor`](crate::executor)): per-depth scratch snapshots are
//! recycled with `clone_from` (rewriting process states and the flat
//! ring mailboxes in place), the alive/receiver sets of the crash
//! branches are walked as bitmasks, and each fork is tallied in the
//! global engine counters ([`stats`](crate::stats)) alongside the
//! executor's round, fast-path and clone counts.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use indulgent_model::{ProcessFactory, Round, RunOutcome, SystemConfig, Value};

use crate::batch::extension_work_units;
use crate::executor::{check_run_inputs, ExecutorError, RunState};
use crate::parallel::{pooled_fold, SweepBackend, UnitResult};
use crate::schedule::{MessageFate, ModelKind, Schedule};

/// Enumerates every serial schedule of `config` over crash rounds
/// `1..=crash_horizon` — exactly the space of
/// [`for_each_serial_schedule`](crate::for_each_serial_schedule), in the
/// same order — and *executes* each under `factory`/`proposals` with the
/// prefix-sharing DFS, invoking `visit` with the schedule and its
/// finished outcome. Each run executes at most `run_horizon` rounds
/// (early-exiting once all alive processes decide, like
/// [`run_schedule`](crate::run_schedule)).
///
/// Returning [`ControlFlow::Break`] from the visitor aborts the sweep.
///
/// # Errors
///
/// Returns [`ExecutorError::ProposalCountMismatch`] if `proposals.len()`
/// differs from `config.n()`.
pub fn for_each_serial_run<F, V>(
    factory: &F,
    proposals: &[Value],
    config: SystemConfig,
    kind: ModelKind,
    crash_horizon: u32,
    run_horizon: u32,
    visit: V,
) -> Result<ControlFlow<()>, ExecutorError>
where
    F: ProcessFactory,
    V: FnMut(&Schedule, &RunOutcome) -> ControlFlow<()>,
{
    let prefix = Schedule::failure_free(config, kind);
    for_each_serial_run_extension(factory, proposals, &prefix, 1, crash_horizon, run_horizon, visit)
}

/// Enumerates and executes every serial extension of `prefix` whose
/// additional crashes lie in `from_round..=crash_horizon` — the space of
/// [`for_each_serial_extension`](crate::for_each_serial_extension), in the
/// same order. The prefix rounds `1..from_round` are executed exactly
/// once; the DFS forks the resulting snapshot at every branch point.
///
/// # Errors
///
/// Returns [`ExecutorError::ProposalCountMismatch`] if `proposals.len()`
/// differs from the prefix's configuration size.
///
/// # Panics
///
/// Panics if `prefix` schedules a crash at or after `from_round` (same
/// contract as the serial extension enumerator).
pub fn for_each_serial_run_extension<F, V>(
    factory: &F,
    proposals: &[Value],
    prefix: &Schedule,
    from_round: u32,
    crash_horizon: u32,
    run_horizon: u32,
    mut visit: V,
) -> Result<ControlFlow<()>, ExecutorError>
where
    F: ProcessFactory,
    V: FnMut(&Schedule, &RunOutcome) -> ControlFlow<()>,
{
    let config = prefix.config();
    let mut crash_rounds: Vec<Option<Round>> =
        config.processes().map(|p| prefix.crash_round(p)).collect();
    assert!(
        crash_rounds.iter().flatten().all(|r| r.get() < from_round),
        "prefix crashes must be confined to rounds before the extension"
    );
    let mut overrides: BTreeMap<(u32, usize, usize), MessageFate> =
        prefix.overrides().map(|(r, s, d, f)| ((r.get(), s.index(), d.index()), f)).collect();
    let crashes = crash_rounds.iter().flatten().count();

    // Execute the shared prefix once; every branch below forks from here.
    let mut state: RunState<F::Process> = RunState::new(factory, proposals, config.n())?;
    state.run_to(prefix, (from_round - 1).min(run_horizon));

    // One scratch snapshot per recursion depth (rounds `from_round..=
    // crash_horizon`, plus the leaf tail): forks overwrite their depth's
    // slot via `clone_from`, recycling allocations across the thousands of
    // branch points of a sweep instead of allocating per fork.
    let depth = ((crash_horizon + 2).saturating_sub(from_round)).max(1) as usize;
    let mut scratch: Vec<Option<RunState<F::Process>>> = (0..depth).map(|_| None).collect();

    let ctx = DfsCtx {
        config,
        kind: prefix.kind(),
        sync_from: prefix.sync_from(),
        crash_horizon,
        run_horizon,
    };
    Ok(recurse(
        &ctx,
        from_round,
        crashes,
        &state,
        &mut scratch,
        prefix,
        &mut crash_rounds,
        &mut overrides,
        proposals,
        &mut visit,
    ))
}

/// Fills `slot` with a copy of `src` (reusing the slot's allocations when
/// it already holds a state) and returns it. Every call is one fork of
/// the DFS, tallied in the engine counters; the recycled case rewrites
/// the slot's process states, ring mailboxes and buffers in place, so a
/// warm sweep forks without allocating.
fn clone_into<'a, P: indulgent_model::RoundProcess>(
    slot: &'a mut Option<RunState<P>>,
    src: &RunState<P>,
) -> &'a mut RunState<P> {
    crate::stats::engine_counters().record_fork();
    match slot {
        Some(state) => {
            state.clone_from(src);
            state
        }
        None => slot.insert(src.clone()),
    }
}

/// Immutable parameters of one fork-on-branch DFS.
struct DfsCtx {
    config: SystemConfig,
    kind: ModelKind,
    sync_from: Round,
    crash_horizon: u32,
    run_horizon: u32,
}

/// One DFS node: `state` has executed rounds `1..round` of `schedule`
/// (stopping early at a halt or the run horizon), and
/// `crash_rounds`/`overrides` hold the choices baked into `schedule` so
/// far. Children extend the schedule at `round` and step the fork by one
/// round; leaves (past the crash horizon) finish the run and visit.
#[allow(clippy::too_many_arguments)]
fn recurse<P, V>(
    ctx: &DfsCtx,
    round: u32,
    crashes: usize,
    state: &RunState<P>,
    scratch: &mut [Option<RunState<P>>],
    schedule: &Schedule,
    crash_rounds: &mut Vec<Option<Round>>,
    overrides: &mut BTreeMap<(u32, usize, usize), MessageFate>,
    proposals: &[Value],
    visit: &mut V,
) -> ControlFlow<()>
where
    P: indulgent_model::RoundProcess,
    V: FnMut(&Schedule, &RunOutcome) -> ControlFlow<()>,
{
    if round > ctx.crash_horizon || crashes >= ctx.config.t() {
        // Leaf: no further choice is possible — every crash round is
        // behind us, or the crash budget is spent (the subtree from here
        // is a no-crash chain with exactly this one schedule in it) — so
        // `schedule` is final. Finish the run in one go on a last fork,
        // or straight from the shared state when it already halted or hit
        // the run horizon.
        return if state.halted() || state.rounds_executed() >= ctx.run_horizon {
            visit(schedule, &state.outcome(proposals, schedule))
        } else {
            let (slot, _) = scratch.split_first_mut().expect("scratch sized for the leaf");
            let tail = clone_into(slot, state);
            tail.run_to(schedule, ctx.run_horizon);
            visit(schedule, &tail.outcome(proposals, schedule))
        };
    }

    // A branch only needs a step when the run is still live; a halted (or
    // horizon-capped) state is shared by the entire subtree without
    // cloning — run_schedule would never execute those rounds either.
    let live = !state.halted() && state.rounds_executed() < ctx.run_horizon;
    let (slot, rest) = scratch.split_first_mut().expect("scratch sized for recursion depth");

    // Option 1: no crash this round. The partial schedule is unchanged, so
    // the child reuses it by reference.
    if live {
        let next = clone_into(slot, state);
        next.step(schedule);
        recurse(
            ctx,
            round + 1,
            crashes,
            next,
            rest,
            schedule,
            crash_rounds,
            overrides,
            proposals,
            visit,
        )?;
    } else {
        recurse(
            ctx,
            round + 1,
            crashes,
            state,
            rest,
            schedule,
            crash_rounds,
            overrides,
            proposals,
            visit,
        )?;
    }

    // Option 2: crash one alive process, choosing the receiver subset that
    // still gets its message among the processes alive entering this
    // round. Identical choice order to the serial enumerator (victims by
    // ascending id, keep-masks ascending over receivers by ascending id);
    // the alive/receiver sets are walked as bitmasks so the enumeration
    // itself allocates nothing per node (`ProcessSet` guarantees
    // `n <= 64`).
    let mut alive_mask = 0u64;
    for p in ctx.config.processes() {
        let alive = match crash_rounds[p.index()] {
            None => true,
            Some(r) => r.get() >= round,
        };
        if alive {
            alive_mask |= 1 << p.index();
        }
    }
    let mut victims = alive_mask;
    while victims != 0 {
        let victim_idx = victims.trailing_zeros() as usize;
        victims &= victims - 1;
        let receivers_mask = alive_mask & !(1u64 << victim_idx);
        let m = receivers_mask.count_ones();
        for keep_mask in 0u32..(1 << m) {
            crash_rounds[victim_idx] = Some(Round::new(round));
            let mut rs = receivers_mask;
            let mut bit = 0u32;
            while rs != 0 {
                let q = rs.trailing_zeros() as usize;
                rs &= rs - 1;
                if keep_mask & (1 << bit) == 0 {
                    overrides.insert((round, victim_idx, q), MessageFate::Lose);
                }
                bit += 1;
            }
            let branched = Schedule::from_parts(
                ctx.config,
                ctx.kind,
                crash_rounds.clone(),
                overrides.clone(),
                ctx.sync_from,
            );
            if live {
                let next = clone_into(slot, state);
                next.step(&branched);
                recurse(
                    ctx,
                    round + 1,
                    crashes + 1,
                    next,
                    rest,
                    &branched,
                    crash_rounds,
                    overrides,
                    proposals,
                    visit,
                )?;
            } else {
                recurse(
                    ctx,
                    round + 1,
                    crashes + 1,
                    state,
                    rest,
                    &branched,
                    crash_rounds,
                    overrides,
                    proposals,
                    visit,
                )?;
            }
            // Undo.
            crash_rounds[victim_idx] = None;
            let mut rs = receivers_mask;
            while rs != 0 {
                let q = rs.trailing_zeros() as usize;
                rs &= rs - 1;
                overrides.remove(&(round, victim_idx, q));
            }
        }
    }
    ControlFlow::Continue(())
}

/// Folds `step` over every serial run of `config` — each schedule paired
/// with its executed [`RunOutcome`] — using `backend`.
///
/// This is the incremental counterpart of "[`sweep_schedules`] +
/// [`run_schedule`] per schedule": identical fold semantics (per-unit
/// accumulators merged in serial visit order, identical results for every
/// backend and thread count), but each shared schedule prefix is executed
/// once by the fork-on-branch DFS instead of once per schedule.
///
/// # Errors
///
/// Returns `E::from` of the executor's input validation error if the
/// proposal arity is wrong, or the error of a failing `step` (the
/// parallel backend stops claiming work as soon as any worker fails).
///
/// # Panics
///
/// Panics (resuming the worker's panic) if `step` panics on any schedule.
///
/// [`sweep_schedules`]: crate::sweep_schedules
/// [`run_schedule`]: crate::run_schedule
#[allow(clippy::too_many_arguments)]
pub fn sweep_runs<F, Acc, E, I, S, M>(
    factory: &F,
    proposals: &[Value],
    config: SystemConfig,
    kind: ModelKind,
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
    init: I,
    step: S,
    merge: M,
) -> Result<Acc, E>
where
    F: ProcessFactory + Sync,
    Acc: Send,
    E: Send + From<ExecutorError>,
    I: Fn() -> Acc + Sync,
    S: Fn(&mut Acc, &Schedule, &RunOutcome) -> Result<(), E> + Sync,
    M: Fn(Acc, Acc) -> Acc,
{
    let prefix = Schedule::failure_free(config, kind);
    sweep_run_extensions(
        factory,
        proposals,
        &prefix,
        1,
        crash_horizon,
        run_horizon,
        backend,
        init,
        step,
        merge,
    )
}

/// Folds `step` over every serial extension of `prefix` (additional
/// crashes in `from_round..=crash_horizon`), each paired with its executed
/// [`RunOutcome`], using `backend`. See [`sweep_runs`].
///
/// # Errors
///
/// Returns `E::from` of the executor's input validation error, or the
/// error of a failing `step`.
///
/// # Panics
///
/// Panics if `prefix` schedules a crash at or after `from_round`, or
/// (resuming the worker's panic) if `step` panics.
#[allow(clippy::too_many_arguments)]
pub fn sweep_run_extensions<F, Acc, E, I, S, M>(
    factory: &F,
    proposals: &[Value],
    prefix: &Schedule,
    from_round: u32,
    crash_horizon: u32,
    run_horizon: u32,
    backend: SweepBackend,
    init: I,
    step: S,
    merge: M,
) -> Result<Acc, E>
where
    F: ProcessFactory + Sync,
    Acc: Send,
    E: Send + From<ExecutorError>,
    I: Fn() -> Acc + Sync,
    S: Fn(&mut Acc, &Schedule, &RunOutcome) -> Result<(), E> + Sync,
    M: Fn(Acc, Acc) -> Acc,
{
    // Validate once up front so the per-unit engines cannot fail: every
    // unit shares the same factory/proposals/config.
    check_run_inputs(prefix.config().n(), proposals).map_err(E::from)?;
    match backend {
        SweepBackend::Serial => {
            let mut acc = init();
            let mut failure = None;
            let _ = for_each_serial_run_extension(
                factory,
                proposals,
                prefix,
                from_round,
                crash_horizon,
                run_horizon,
                |schedule, outcome| match step(&mut acc, schedule, outcome) {
                    Ok(()) => ControlFlow::Continue(()),
                    Err(e) => {
                        failure = Some(e);
                        ControlFlow::Break(())
                    }
                },
            )
            .expect("run inputs validated above");
            match failure {
                Some(e) => Err(e),
                None => Ok(acc),
            }
        }
        SweepBackend::Parallel(threads) => {
            let units = extension_work_units(prefix, from_round, crash_horizon);
            pooled_fold(
                &units,
                threads,
                &|unit, abort| {
                    let mut acc = init();
                    let mut failure = None;
                    let mut aborted = false;
                    let _ = for_each_serial_run_extension(
                        factory,
                        proposals,
                        unit.prefix(),
                        unit.from_round(),
                        crash_horizon,
                        run_horizon,
                        |schedule, outcome| {
                            if abort.load(std::sync::atomic::Ordering::Relaxed) {
                                aborted = true;
                                return ControlFlow::Break(());
                            }
                            match step(&mut acc, schedule, outcome) {
                                Ok(()) => ControlFlow::Continue(()),
                                Err(e) => {
                                    failure = Some(e);
                                    ControlFlow::Break(())
                                }
                            }
                        },
                    )
                    .expect("run inputs validated above");
                    match (failure, aborted) {
                        (Some(e), _) => UnitResult::Failed(e),
                        (None, true) => UnitResult::Aborted,
                        (None, false) => UnitResult::Complete(acc),
                    }
                },
                &init,
                merge,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{Delivery, ProcessId, RoundProcess, Step};

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::executor::run_schedule;
    use crate::serial::{for_each_serial_extension, for_each_serial_schedule};

    /// Deterministic flooding probe deciding the running minimum.
    #[derive(Debug, Clone)]
    struct Probe {
        est: Value,
        decide_at: u32,
        decided: bool,
    }

    impl RoundProcess for Probe {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.est
        }

        fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
            for m in delivery.current() {
                self.est = self.est.min(m.msg);
            }
            if round.get() >= self.decide_at && !self.decided {
                self.decided = true;
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn probe_factory(decide_at: u32) -> impl ProcessFactory<Process = Probe> + Sync {
        move |_i: usize, v: Value| Probe { est: v, decide_at, decided: false }
    }

    fn props(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::new(((i * 7) % 11) as u64 + 1)).collect()
    }

    /// The incremental engine visits exactly the serial schedule sequence
    /// and produces, for each, the outcome `run_schedule` computes from
    /// scratch.
    #[test]
    fn incremental_matches_replay_schedule_for_schedule() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let proposals = props(4);
        let mut replay: Vec<(u64, RunOutcome)> = Vec::new();
        let _ = for_each_serial_schedule(config, ModelKind::Es, 3, |s| {
            let outcome = run_schedule(&probe_factory(3), &proposals, s, 6).unwrap();
            replay.push((s.fingerprint(), outcome));
            ControlFlow::Continue(())
        });
        let mut incremental: Vec<(u64, RunOutcome)> = Vec::new();
        let _ = for_each_serial_run(
            &probe_factory(3),
            &proposals,
            config,
            ModelKind::Es,
            3,
            6,
            |s, o| {
                incremental.push((s.fingerprint(), o.clone()));
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        assert_eq!(replay.len(), incremental.len());
        assert_eq!(replay, incremental, "fused sweep must be bit-identical to replay");
    }

    /// Early-exiting runs (all alive decided before the crash horizon)
    /// must report the same truncated `rounds_executed` as replay, with
    /// the full schedule's crash set.
    #[test]
    fn early_exit_parity_with_late_crashes() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let proposals = props(3);
        // decide_at = 1: everyone decides in round 1, crashes at rounds 2-3
        // never execute but still appear in the schedule and crash set.
        let mut pairs: Vec<(Schedule, RunOutcome)> = Vec::new();
        let _ = for_each_serial_run(
            &probe_factory(1),
            &proposals,
            config,
            ModelKind::Es,
            3,
            10,
            |s, o| {
                pairs.push((s.clone(), o.clone()));
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        for (schedule, outcome) in &pairs {
            let replayed = run_schedule(&probe_factory(1), &proposals, schedule, 10).unwrap();
            assert_eq!(outcome, &replayed, "diverged on {schedule:?}");
        }
        assert!(pairs.iter().any(|(s, o)| s.crash_count() == 1 && o.rounds_executed == 1));
    }

    /// Extension sweeps share the prefix execution and agree with the
    /// serial extension enumerator + replay.
    #[test]
    fn extension_sweep_matches_replay() {
        let config = SystemConfig::majority(5, 2).unwrap();
        let proposals = props(5);
        let prefix = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(4)
            .unwrap();
        let mut replay: Vec<RunOutcome> = Vec::new();
        let _ = for_each_serial_extension(&prefix, 2, 4, |s| {
            replay.push(run_schedule(&probe_factory(4), &proposals, s, 8).unwrap());
            ControlFlow::Continue(())
        });
        let mut incremental: Vec<RunOutcome> = Vec::new();
        let _ = for_each_serial_run_extension(
            &probe_factory(4),
            &proposals,
            &prefix,
            2,
            4,
            8,
            |_, o| {
                incremental.push(o.clone());
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        assert_eq!(replay, incremental);
    }

    /// The backend-aware fold is identical across serial and parallel
    /// backends, including an order-sensitive fingerprint chain.
    #[test]
    fn sweep_runs_identical_across_backends() {
        let config = SystemConfig::majority(5, 2).unwrap();
        let proposals = props(5);
        let fold = |backend: SweepBackend| -> Vec<(u64, u32)> {
            let folded: Result<Vec<(u64, u32)>, ExecutorError> = sweep_runs(
                &probe_factory(3),
                &proposals,
                config,
                ModelKind::Es,
                3,
                8,
                backend,
                Vec::new,
                |acc, s, o| {
                    acc.push((s.fingerprint(), o.rounds_executed));
                    Ok(())
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            folded.expect("valid inputs")
        };
        let serial = fold(SweepBackend::Serial);
        assert_eq!(serial, fold(SweepBackend::parallel(2)));
        assert_eq!(serial, fold(SweepBackend::parallel(4)));
    }

    /// A failing step aborts every backend with an error.
    #[test]
    fn failing_step_reports_on_every_backend() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let proposals = props(4);
        #[derive(Debug)]
        enum E {
            #[allow(dead_code)]
            Exec(ExecutorError),
            TwoCrashesNever,
        }
        impl From<ExecutorError> for E {
            fn from(e: ExecutorError) -> Self {
                E::Exec(e)
            }
        }
        for backend in [SweepBackend::Serial, SweepBackend::parallel(3)] {
            let result: Result<u64, E> = sweep_runs(
                &probe_factory(2),
                &proposals,
                config,
                ModelKind::Es,
                2,
                6,
                backend,
                || 0u64,
                |acc, s, _| {
                    *acc += 1;
                    if s.crash_count() == 1 {
                        Err(E::TwoCrashesNever)
                    } else {
                        Ok(())
                    }
                },
                |a, b| a + b,
            );
            assert!(matches!(result, Err(E::TwoCrashesNever)), "backend {backend:?}");
        }
    }

    /// Proposal arity is validated once, before any unit runs.
    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let short = props(2);
        let result: Result<u64, ExecutorError> = sweep_runs(
            &probe_factory(2),
            &short,
            config,
            ModelKind::Es,
            2,
            6,
            SweepBackend::Serial,
            || 0u64,
            |acc, _, _| {
                *acc += 1;
                Ok(())
            },
            |a, b| a + b,
        );
        assert_eq!(
            result.unwrap_err(),
            ExecutorError::ProposalCountMismatch { expected: 4, got: 2 }
        );
    }

    /// A run horizon *below* the crash horizon still matches replay (the
    /// DFS must not step rounds the classic executor would never reach).
    #[test]
    fn run_horizon_below_crash_horizon_parity() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let proposals = props(3);
        let mut pairs: Vec<(Schedule, RunOutcome)> = Vec::new();
        let _ = for_each_serial_run(
            &probe_factory(10),
            &proposals,
            config,
            ModelKind::Es,
            4,
            2,
            |s, o| {
                pairs.push((s.clone(), o.clone()));
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        for (schedule, outcome) in &pairs {
            let replayed = run_schedule(&probe_factory(10), &proposals, schedule, 2).unwrap();
            assert_eq!(outcome, &replayed, "diverged on {schedule:?}");
        }
    }

    /// Break from the visitor aborts the sweep.
    #[test]
    fn break_aborts() {
        let config = SystemConfig::majority(4, 1).unwrap();
        let proposals = props(4);
        let mut seen = 0u32;
        let flow = for_each_serial_run(
            &probe_factory(2),
            &proposals,
            config,
            ModelKind::Es,
            3,
            6,
            |_, _| {
                seen += 1;
                if seen == 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, 5);
    }

    /// Counting through the fused engine equals the schedule-space count.
    #[test]
    fn fused_count_equals_schedule_count() {
        let config = SystemConfig::majority(5, 2).unwrap();
        let proposals = props(5);
        let counted: Result<u64, ExecutorError> = sweep_runs(
            &probe_factory(3),
            &proposals,
            config,
            ModelKind::Es,
            3,
            8,
            SweepBackend::parallel(2),
            || 0u64,
            |acc, _, _| {
                *acc += 1;
                Ok(())
            },
            |a, b| a + b,
        );
        assert_eq!(
            counted.expect("valid inputs"),
            crate::serial::count_serial_schedules(config, 3)
        );
    }
}
