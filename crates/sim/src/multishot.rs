//! Deterministic multi-shot executor: chained consensus instances on one
//! reusable [`RunState`].
//!
//! The one-shot executors of this crate decide a single value per run.
//! State-machine replication decides a *sequence*: instance `i` settles
//! log slot `i`, and the proposals of instance `i + 1` may depend on what
//! earlier instances decided. [`MultiShotRunner`] is the simulator-side
//! substrate for such chains: it runs instances back to back on a single
//! [`RunState`], rewinding it between instances with
//! [`RunState::reset_instance`] — mailbox rings, delivery scratch and the
//! automatons themselves are reused, so per-instance startup allocates
//! nothing once the first instance has warmed the buffers (the same
//! zero-allocation discipline the sweep engines rely on).
//!
//! The runner is deliberately policy-free: *which* proposals each instance
//! carries and *which* schedule adversary it faces are the caller's
//! decisions (the `indulgent-log` crate implements the replicated-log
//! batching/pipelining policy on top). What the runner fixes is the
//! execution semantics of one instance — identical to [`run_schedule`]
//! (`crate::run_schedule`) on a fresh state, which the multi-shot
//! determinism tests assert instance by instance.
//!
//! # Permanent crashes
//!
//! A replicated-log crash is permanent: a replica that crashes in instance
//! `j` stays crashed for every instance after `j`. The runner does not
//! enforce this — schedules are caller-supplied — but
//! [`MultiShotRunner::run_instance`] is documented against that
//! convention: model a replica dead from the start of an instance with a
//! round-1 `crash_before_send` in that instance's schedule. The threaded
//! runtime's session applies the same convention on its side, which is
//! what makes runtime log executions differentially comparable to this
//! executor on crash-only scenarios.

use indulgent_model::{ProcessFactory, RoundProcess, RunOutcome, Value};

use crate::executor::{ExecutorError, RunState};
use crate::schedule::Schedule;

/// Runs a sequence of consensus instances on one recycled [`RunState`].
///
/// # Examples
///
/// ```
/// use indulgent_model::{Delivery, Round, RoundProcess, Step, SystemConfig, Value};
/// use indulgent_sim::{ModelKind, MultiShotRunner, Schedule};
///
/// /// Decides the minimum current-round value in round 1.
/// #[derive(Clone)]
/// struct MinOnce(Value);
/// impl RoundProcess for MinOnce {
///     type Msg = Value;
///     fn send(&mut self, _round: Round) -> Value { self.0 }
///     fn deliver(&mut self, _round: Round, d: &Delivery<Value>) -> Step {
///         Step::Decide(d.current().map(|m| m.msg).min().unwrap_or(self.0))
///     }
/// }
///
/// let cfg = SystemConfig::majority(3, 1)?;
/// let schedule = Schedule::failure_free(cfg, ModelKind::Es);
/// let mut runner = MultiShotRunner::new(cfg.n());
/// // Instance 1 proposes {4, 2, 9}; instance 2's proposals depend on it.
/// let first = runner.run_instance(
///     &|_i: usize, v: Value| MinOnce(v),
///     &mut |_i, p: &mut MinOnce, v| p.0 = v,
///     &[Value::new(4), Value::new(2), Value::new(9)],
///     &schedule,
///     5,
/// )?;
/// let decided = first.decisions[0].expect("decided").value;
/// let next: Vec<Value> = (0..3).map(|i| Value::new(decided.get() + i)).collect();
/// let second = runner.run_instance(
///     &|_i: usize, v: Value| MinOnce(v),
///     &mut |_i, p: &mut MinOnce, v| p.0 = v,
///     &next,
///     &schedule,
///     5,
/// )?;
/// assert_eq!(second.decisions[0].expect("decided").value, decided);
/// assert_eq!(runner.instances_run(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MultiShotRunner<P: RoundProcess> {
    n: usize,
    state: Option<RunState<P>>,
    instances_run: u64,
}

impl<P: RoundProcess> MultiShotRunner<P> {
    /// Creates a runner for `n`-process instances. No state is allocated
    /// until the first [`run_instance`](MultiShotRunner::run_instance).
    #[must_use]
    pub fn new(n: usize) -> Self {
        MultiShotRunner { n, state: None, instances_run: 0 }
    }

    /// Number of instances executed so far.
    #[must_use]
    pub fn instances_run(&self) -> u64 {
        self.instances_run
    }

    /// Runs the next instance: `proposals` under `schedule` for at most
    /// `horizon` rounds, returning its outcome.
    ///
    /// The first call builds the automatons with `factory`; every later
    /// call rewinds the recycled state and re-fits the existing automatons
    /// with `reset` (an instance-reset hook) instead of rebuilding them.
    /// The outcome is identical to a fresh [`crate::run_schedule`] of the
    /// same instance, provided `reset` restores exactly the state
    /// `factory` would build — the contract of the core algorithms'
    /// `reset_instance` hooks.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError::ProposalCountMismatch`] if
    /// `proposals.len() != n`.
    pub fn run_instance<F>(
        &mut self,
        factory: &F,
        reset: &mut impl FnMut(usize, &mut P, Value),
        proposals: &[Value],
        schedule: &Schedule,
        horizon: u32,
    ) -> Result<RunOutcome, ExecutorError>
    where
        F: ProcessFactory<Process = P>,
    {
        let state = match &mut self.state {
            Some(state) => {
                state.reset_instance(proposals, reset)?;
                state
            }
            None => self.state.insert(RunState::new(factory, proposals, self.n)?),
        };
        state.run_to(schedule, horizon);
        self.instances_run += 1;
        Ok(state.outcome(proposals, schedule))
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessId, Round, SystemConfig};

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::executor::run_schedule;
    use crate::schedule::ModelKind;
    use crate::trace::run_traced;

    /// Floods the minimum and decides at a fixed round (same probe as the
    /// executor tests).
    #[derive(Debug, Clone)]
    struct MinAfter {
        est: Value,
        rounds: u32,
        decided: bool,
    }

    impl RoundProcess for MinAfter {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.est
        }

        fn deliver(
            &mut self,
            round: Round,
            delivery: &indulgent_model::Delivery<Value>,
        ) -> indulgent_model::Step {
            for m in delivery.current() {
                self.est = self.est.min(m.msg);
            }
            if round.get() >= self.rounds && !self.decided {
                self.decided = true;
                indulgent_model::Step::Decide(self.est)
            } else {
                indulgent_model::Step::Continue
            }
        }
    }

    fn factory(rounds: u32) -> impl Fn(usize, Value) -> MinAfter {
        move |_i, v| MinAfter { est: v, rounds, decided: false }
    }

    fn reset(rounds: u32) -> impl FnMut(usize, &mut MinAfter, Value) {
        move |_i, p, v| {
            p.est = v;
            p.rounds = rounds;
            p.decided = false;
        }
    }

    fn cfg() -> SystemConfig {
        SystemConfig::majority(3, 1).unwrap()
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn chained_instances_match_fresh_runs() {
        let config = cfg();
        let schedules = [
            Schedule::failure_free(config, ModelKind::Es),
            ScheduleBuilder::new(config, ModelKind::Es)
                .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
                .build(6)
                .unwrap(),
            Schedule::failure_free(config, ModelKind::Es),
        ];
        let proposals = [vals(&[5, 3, 9]), vals(&[7, 8, 2]), vals(&[1, 1, 1])];

        let mut runner = MultiShotRunner::new(config.n());
        for (schedule, props) in schedules.iter().zip(&proposals) {
            let chained =
                runner.run_instance(&factory(2), &mut reset(2), props, schedule, 6).unwrap();
            let fresh = run_schedule(&factory(2), props, schedule, 6).unwrap();
            assert_eq!(chained, fresh, "recycled instance diverged from a fresh run");
        }
        assert_eq!(runner.instances_run(), 3);
    }

    #[test]
    fn instance_reset_discards_stale_delayed_messages() {
        // Instance 1 leaves a message in flight (delayed beyond the
        // executed horizon); the reset must drop it so instance 2 starts
        // with clean mailboxes.
        let config = cfg();
        let delayed = ScheduleBuilder::new(config, ModelKind::Es)
            .sync_from(Round::new(2))
            .delay(Round::FIRST, ProcessId::new(1), ProcessId::new(0), Round::new(5))
            .build(6)
            .unwrap();
        let flat = Schedule::failure_free(config, ModelKind::Es);

        let mut runner = MultiShotRunner::new(config.n());
        // Horizon 1: the delayed copy (arrival round 5) is still pending.
        let first = runner
            .run_instance(&factory(1), &mut reset(1), &vals(&[5, 3, 9]), &delayed, 1)
            .unwrap();
        assert_eq!(first.rounds_executed, 1);
        // Instance 2 must see no ghost of it: identical to a fresh traced
        // run, which records zero delayed arrivals in every round.
        let second =
            runner.run_instance(&factory(3), &mut reset(3), &vals(&[4, 6, 8]), &flat, 5).unwrap();
        let fresh = run_traced(&factory(3), &vals(&[4, 6, 8]), &flat, 5).unwrap();
        assert_eq!(&second, fresh.outcome());
        for k in 1..=second.rounds_executed {
            for p in config.processes() {
                let rec = fresh.record(Round::new(k), p).expect("completes");
                assert_eq!(rec.delayed_arrivals, 0);
            }
        }
    }

    #[test]
    fn proposal_arity_checked_on_reset_too() {
        let config = cfg();
        let schedule = Schedule::failure_free(config, ModelKind::Es);
        let mut runner = MultiShotRunner::new(config.n());
        runner.run_instance(&factory(1), &mut reset(1), &vals(&[1, 2, 3]), &schedule, 3).unwrap();
        let err = runner
            .run_instance(&factory(1), &mut reset(1), &vals(&[1, 2]), &schedule, 3)
            .unwrap_err();
        assert_eq!(err, ExecutorError::ProposalCountMismatch { expected: 3, got: 2 });
    }
}
