//! Adversary schedules: a complete, deterministic description of one run.
//!
//! A run of the paper's models is fully determined by the algorithm, the
//! proposals, and the *adversary's choices*: who crashes when, which of the
//! crash-round messages are delivered / delayed / lost, and which messages
//! are delayed during the asynchronous prefix. A [`Schedule`] captures those
//! choices; [`Schedule::validate`] checks them against the constraints of
//! the chosen model (SCS or ES) so that only legal runs can be executed.

use std::collections::BTreeMap;
use std::fmt;

use indulgent_model::{ProcessId, ProcessSet, Round, SystemConfig};
use serde::{Deserialize, Serialize};

/// Which round-based model a schedule belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Synchronous crash-stop model: messages are received in the round they
    /// are sent, except that a subset of the messages sent by a process in
    /// its crash round may be lost.
    Scs,
    /// Eventually synchronous model: messages may additionally be delayed,
    /// subject to t-resilience, reliable channels and eventual synchrony.
    Es,
}

/// The fate of one (round, sender → receiver) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MessageFate {
    /// Delivered in the round it was sent (the default).
    #[default]
    Deliver,
    /// Delivered in the given later round.
    Delay(Round),
    /// Never delivered.
    Lose,
}

/// A complete adversary schedule for one run.
///
/// Build schedules with [`ScheduleBuilder`](crate::ScheduleBuilder), the
/// random generators in [`random`](crate::random), or the serial-run
/// enumerator in [`serial`](crate::serial).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    config: SystemConfig,
    kind: ModelKind,
    /// Per-process crash round; `None` = correct.
    crash_rounds: Vec<Option<Round>>,
    /// Non-default message fates, keyed by (round, sender, receiver).
    overrides: BTreeMap<(u32, usize, usize), MessageFate>,
    /// The eventual-synchrony round `K`: from this round on, delivery is
    /// synchronous. `K = 1` makes the run synchronous.
    sync_from: Round,
    /// Bit `k` set (for rounds `k <= 63`) when round `k` has a crash or a
    /// fate override. Derived from the fields above at construction; the
    /// executor's per-round clean test is one mask probe instead of a
    /// crash-vector scan plus an ordered-map seek (rounds `>= 64` fall
    /// back to the scan). With the real `serde` this field would carry
    /// `#[serde(skip)]` and be recomputed on deserialize; the vendored
    /// derive serializes nothing.
    dirty_rounds: u64,
    /// Bit `k` set (for rounds `k <= 63`) when round `k` has at least one
    /// fate override — the O(1) front door of the per-sender override
    /// lookup.
    override_rounds: u64,
}

impl Schedule {
    /// A fully synchronous failure-free run (`K = 1`, no crashes).
    #[must_use]
    pub fn failure_free(config: SystemConfig, kind: ModelKind) -> Self {
        Schedule {
            config,
            kind,
            crash_rounds: vec![None; config.n()],
            overrides: BTreeMap::new(),
            sync_from: Round::FIRST,
            dirty_rounds: 0,
            override_rounds: 0,
        }
    }

    pub(crate) fn from_parts(
        config: SystemConfig,
        kind: ModelKind,
        crash_rounds: Vec<Option<Round>>,
        overrides: BTreeMap<(u32, usize, usize), MessageFate>,
        sync_from: Round,
    ) -> Self {
        let mut dirty_rounds = 0u64;
        let mut override_rounds = 0u64;
        for r in crash_rounds.iter().flatten() {
            if r.get() < 64 {
                dirty_rounds |= 1 << r.get();
            }
        }
        for &(r, _, _) in overrides.keys() {
            if r < 64 {
                override_rounds |= 1 << r;
            }
        }
        dirty_rounds |= override_rounds;
        Schedule { config, kind, crash_rounds, overrides, sync_from, dirty_rounds, override_rounds }
    }

    /// The system configuration this schedule was built for.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// The model this schedule belongs to.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The eventual-synchrony round `K`.
    #[must_use]
    pub fn sync_from(&self) -> Round {
        self.sync_from
    }

    /// Returns `true` if this is a *synchronous* run (`K = 1`).
    #[must_use]
    pub fn is_synchronous(&self) -> bool {
        self.sync_from == Round::FIRST
    }

    /// The crash round of `p`, or `None` if `p` is correct in this run.
    #[must_use]
    pub fn crash_round(&self, p: ProcessId) -> Option<Round> {
        self.crash_rounds.get(p.index()).copied().flatten()
    }

    /// The set of faulty processes (those that crash at some round).
    #[must_use]
    pub fn faulty(&self) -> ProcessSet {
        self.config.processes().filter(|p| self.crash_round(*p).is_some()).collect()
    }

    /// Number of crashes in the schedule.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.faulty().len()
    }

    /// Returns `true` if `p` is alive *entering* round `k` (it may still
    /// crash during `k`).
    #[must_use]
    pub fn alive_entering(&self, p: ProcessId, k: Round) -> bool {
        match self.crash_round(p) {
            None => true,
            Some(r) => r >= k,
        }
    }

    /// Returns `true` if `p` completes round `k` (alive entering `k` and not
    /// crashing in `k`).
    #[must_use]
    pub fn completes(&self, p: ProcessId, k: Round) -> bool {
        match self.crash_round(p) {
            None => true,
            Some(r) => r > k,
        }
    }

    /// Returns `true` when round `k` is *clean*: no process crashes in `k`
    /// and no message sent in `k` has a non-default fate, i.e. every
    /// process alive entering `k` completes it and every copy of every
    /// message is delivered in `k` itself.
    ///
    /// Clean rounds are the executor's shared-broadcast fast path: all
    /// completing receivers observe the identical message multiset, so one
    /// pooled delivery serves every receiver. In serial schedules every
    /// round other than the (at most `t`) crash rounds is clean, which is
    /// what makes the fast path the steady state of exhaustive sweeps.
    ///
    /// One bitmask probe for rounds `< 64`; O(n) crash scan plus one
    /// ordered-map seek beyond the mask. Allocation-free either way.
    #[must_use]
    pub fn round_is_clean(&self, k: Round) -> bool {
        if k.get() < 64 {
            return self.dirty_rounds & (1 << k.get()) == 0;
        }
        self.crash_rounds.iter().all(|r| *r != Some(k))
            && self
                .overrides
                .range((k.get(), 0, 0)..=(k.get(), usize::MAX, usize::MAX))
                .next()
                .is_none()
    }

    /// Returns `true` when some message sent by `sender` in round `k` has
    /// a non-default fate. One bitmask probe when the round has no
    /// override at all, one ordered-map seek otherwise; the executor uses
    /// it to skip the per-receiver [`fate`](Schedule::fate) lookups for
    /// the senders of a dirty round that broadcast normally (in a serial
    /// schedule that is everyone but the round's crash victim).
    #[must_use]
    pub fn sender_has_overrides(&self, k: Round, sender: ProcessId) -> bool {
        if k.get() < 64 && self.override_rounds & (1 << k.get()) == 0 {
            return false;
        }
        self.overrides
            .range((k.get(), sender.index(), 0)..=(k.get(), sender.index(), usize::MAX))
            .next()
            .is_some()
    }

    /// The fate of the message sent by `sender` to `receiver` in round `k`.
    ///
    /// Self-addressed messages are always delivered in the same round.
    /// Rounds without any override answer in O(1) off the round bitmask.
    #[must_use]
    pub fn fate(&self, k: Round, sender: ProcessId, receiver: ProcessId) -> MessageFate {
        if sender == receiver || (k.get() < 64 && self.override_rounds & (1 << k.get()) == 0) {
            return MessageFate::Deliver;
        }
        self.overrides
            .get(&(k.get(), sender.index(), receiver.index()))
            .copied()
            .unwrap_or_default()
    }

    /// Iterates over all non-default message fates.
    pub fn overrides(
        &self,
    ) -> impl Iterator<Item = (Round, ProcessId, ProcessId, MessageFate)> + '_ {
        self.overrides
            .iter()
            .map(|(&(r, s, d), &f)| (Round::new(r), ProcessId::new(s), ProcessId::new(d), f))
    }

    /// A stable 64-bit fingerprint of the schedule's content (FNV-1a over
    /// kind, crash rounds, message fates and the synchrony round).
    ///
    /// Equal schedules have equal fingerprints; distinct schedules collide
    /// with probability `~2^-64`. The sweep engine's tests use fingerprints
    /// to compare the schedule sets visited by different enumeration
    /// strategies without materializing every schedule.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(match self.kind {
            ModelKind::Scs => 1,
            ModelKind::Es => 2,
        });
        mix(self.config.n() as u64);
        mix(self.config.t() as u64);
        for crash in &self.crash_rounds {
            mix(crash.map_or(0, |r| u64::from(r.get())));
        }
        for (&(r, s, d), &fate) in &self.overrides {
            mix(u64::from(r));
            mix(s as u64);
            mix(d as u64);
            mix(match fate {
                MessageFate::Deliver => 1,
                MessageFate::Lose => 2,
                MessageFate::Delay(a) => 3 | (u64::from(a.get()) << 8),
            });
        }
        mix(u64::from(self.sync_from.get()));
        h
    }

    /// Validates the schedule against the model constraints, considering
    /// rounds `1..=horizon`.
    ///
    /// The checks are:
    ///
    /// 1. at most `t` crashes;
    /// 2. non-default fates only on meaningful edges (no self edges, sender
    ///    alive in that round);
    /// 3. `Lose` only where the model allows: in the sender's crash round,
    ///    or (ES, before `K`) when the sender or the receiver is faulty
    ///    (reliable channels protect correct→correct messages only);
    /// 4. `Delay` only in ES, only to a strictly later round, and only
    ///    before `K` or in the sender's crash round (the paper's footnote 5:
    ///    crash-round messages may be delayed arbitrarily even in
    ///    synchronous runs);
    /// 5. t-resilience (ES): every process completing round `k` receives at
    ///    least `n - t` round-`k` messages in round `k`.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ScheduleError`].
    pub fn validate(&self, horizon: u32) -> Result<(), ScheduleError> {
        let n = self.config.n();
        let t = self.config.t();
        if self.crash_count() > t {
            return Err(ScheduleError::TooManyCrashes { crashes: self.crash_count(), t });
        }
        for (&(k, s, d), &fate) in &self.overrides {
            if k == 0 || k > horizon {
                return Err(ScheduleError::RoundOutOfRange { round: k, horizon });
            }
            if s >= n || d >= n {
                return Err(ScheduleError::UnknownProcess { index: s.max(d) });
            }
            if s == d {
                return Err(ScheduleError::SelfEdge { process: ProcessId::new(s) });
            }
            let round = Round::new(k);
            let sender = ProcessId::new(s);
            let receiver = ProcessId::new(d);
            if !self.alive_entering(sender, round) {
                return Err(ScheduleError::DeadSender { sender, round });
            }
            let sender_crashes_now = self.crash_round(sender) == Some(round);
            match fate {
                MessageFate::Deliver => {}
                MessageFate::Lose => {
                    let sender_faulty = self.crash_round(sender).is_some();
                    let receiver_faulty = self.crash_round(receiver).is_some();
                    let async_period = self.kind == ModelKind::Es && round < self.sync_from;
                    let allowed =
                        sender_crashes_now || (async_period && (sender_faulty || receiver_faulty));
                    if !allowed {
                        return Err(ScheduleError::IllegalLoss { sender, receiver, round });
                    }
                }
                MessageFate::Delay(arrival) => {
                    if self.kind == ModelKind::Scs {
                        return Err(ScheduleError::DelayInScs { sender, receiver, round });
                    }
                    if arrival <= round {
                        return Err(ScheduleError::DelayNotFuture { round, arrival });
                    }
                    let allowed = round < self.sync_from || sender_crashes_now;
                    if !allowed {
                        return Err(ScheduleError::DelayAfterSync { sender, receiver, round });
                    }
                }
            }
        }
        if self.kind == ModelKind::Es {
            self.check_t_resilience(horizon)?;
        }
        Ok(())
    }

    fn check_t_resilience(&self, horizon: u32) -> Result<(), ScheduleError> {
        let quorum = self.config.quorum();
        for k in 1..=horizon {
            let round = Round::new(k);
            for receiver in self.config.processes() {
                if !self.completes(receiver, round) {
                    continue;
                }
                let delivered = self
                    .config
                    .processes()
                    .filter(|&s| {
                        self.alive_entering(s, round)
                            && self.fate(round, s, receiver) == MessageFate::Deliver
                    })
                    .count();
                if delivered < quorum {
                    return Err(ScheduleError::NotTResilient {
                        receiver,
                        round,
                        delivered,
                        quorum,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Error produced when a schedule violates the model constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// More crashes scheduled than the resilience `t` allows.
    TooManyCrashes {
        /// Scheduled crashes.
        crashes: usize,
        /// Allowed maximum.
        t: usize,
    },
    /// A fate override references a round outside `1..=horizon`.
    RoundOutOfRange {
        /// The offending round number.
        round: u32,
        /// The validation horizon.
        horizon: u32,
    },
    /// A fate override references a process outside the system.
    UnknownProcess {
        /// The offending index.
        index: usize,
    },
    /// A fate override on a self-addressed message (always delivered).
    SelfEdge {
        /// The process.
        process: ProcessId,
    },
    /// A fate override for a sender that has already crashed.
    DeadSender {
        /// The crashed sender.
        sender: ProcessId,
        /// The round of the override.
        round: Round,
    },
    /// A message loss the model does not permit.
    IllegalLoss {
        /// Sender of the lost message.
        sender: ProcessId,
        /// Intended receiver.
        receiver: ProcessId,
        /// Round of the message.
        round: Round,
    },
    /// A delay scheduled in the synchronous crash-stop model.
    DelayInScs {
        /// Sender of the delayed message.
        sender: ProcessId,
        /// Intended receiver.
        receiver: ProcessId,
        /// Round of the message.
        round: Round,
    },
    /// A delay whose arrival round is not in the future.
    DelayNotFuture {
        /// Round of the message.
        round: Round,
        /// Scheduled arrival.
        arrival: Round,
    },
    /// A delay scheduled after the eventual-synchrony round `K` for a
    /// non-crashing sender.
    DelayAfterSync {
        /// Sender of the delayed message.
        sender: ProcessId,
        /// Intended receiver.
        receiver: ProcessId,
        /// Round of the message.
        round: Round,
    },
    /// A process completing a round receives fewer than `n - t` current
    /// messages.
    NotTResilient {
        /// The under-supplied receiver.
        receiver: ProcessId,
        /// The round.
        round: Round,
        /// Current-round messages delivered.
        delivered: usize,
        /// Required minimum (`n - t`).
        quorum: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::TooManyCrashes { crashes, t } => {
                write!(f, "{crashes} crashes scheduled but resilience allows at most {t}")
            }
            ScheduleError::RoundOutOfRange { round, horizon } => {
                write!(f, "fate override at round {round} outside 1..={horizon}")
            }
            ScheduleError::UnknownProcess { index } => {
                write!(f, "fate override references unknown process index {index}")
            }
            ScheduleError::SelfEdge { process } => {
                write!(f, "fate override on self-addressed message of {process}")
            }
            ScheduleError::DeadSender { sender, round } => {
                write!(f, "fate override for {sender} at {round} but it crashed earlier")
            }
            ScheduleError::IllegalLoss { sender, receiver, round } => {
                write!(f, "message {sender} -> {receiver} at {round} cannot be lost in this model")
            }
            ScheduleError::DelayInScs { sender, receiver, round } => {
                write!(f, "message {sender} -> {receiver} at {round} cannot be delayed in SCS")
            }
            ScheduleError::DelayNotFuture { round, arrival } => {
                write!(f, "delay at {round} must arrive strictly later, got {arrival}")
            }
            ScheduleError::DelayAfterSync { sender, receiver, round } => {
                write!(
                    f,
                    "message {sender} -> {receiver} at {round} cannot be delayed after the synchrony round"
                )
            }
            ScheduleError::NotTResilient { receiver, round, delivered, quorum } => {
                write!(
                    f,
                    "{receiver} completing {round} receives only {delivered} current messages, needs {quorum}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    #[test]
    fn failure_free_is_valid_and_synchronous() {
        let s = Schedule::failure_free(cfg(), ModelKind::Es);
        assert!(s.validate(10).is_ok());
        assert!(s.is_synchronous());
        assert_eq!(s.crash_count(), 0);
        assert_eq!(s.faulty(), ProcessSet::empty());
    }

    #[test]
    fn fate_defaults_to_deliver_and_self_always_delivers() {
        let s = Schedule::failure_free(cfg(), ModelKind::Es);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        assert_eq!(s.fate(Round::FIRST, p0, p1), MessageFate::Deliver);
        assert_eq!(s.fate(Round::FIRST, p0, p0), MessageFate::Deliver);
    }

    #[test]
    fn too_many_crashes_rejected() {
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::FIRST), Some(Round::FIRST), Some(Round::FIRST), None, None],
            BTreeMap::new(),
            Round::FIRST,
        );
        assert_eq!(s.validate(5), Err(ScheduleError::TooManyCrashes { crashes: 3, t: 2 }));
    }

    #[test]
    fn loss_outside_crash_round_rejected_in_sync_run() {
        let mut overrides = BTreeMap::new();
        overrides.insert((1, 0, 1), MessageFate::Lose);
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::FIRST);
        assert!(matches!(s.validate(5), Err(ScheduleError::IllegalLoss { .. })));
    }

    #[test]
    fn loss_in_crash_round_accepted() {
        let mut overrides = BTreeMap::new();
        overrides.insert((2, 0, 1), MessageFate::Lose);
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::new(2)), None, None, None, None],
            overrides,
            Round::FIRST,
        );
        assert!(s.validate(5).is_ok());
    }

    #[test]
    fn delay_rejected_in_scs() {
        let mut overrides = BTreeMap::new();
        overrides.insert((1, 0, 1), MessageFate::Delay(Round::new(3)));
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Scs,
            vec![Some(Round::FIRST), None, None, None, None],
            overrides,
            Round::FIRST,
        );
        assert!(matches!(s.validate(5), Err(ScheduleError::DelayInScs { .. })));
    }

    #[test]
    fn delay_allowed_in_async_prefix() {
        let mut overrides = BTreeMap::new();
        overrides.insert((1, 0, 1), MessageFate::Delay(Round::new(3)));
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::new(4));
        assert!(s.validate(5).is_ok());
    }

    #[test]
    fn delay_after_sync_rejected_for_live_sender() {
        let mut overrides = BTreeMap::new();
        overrides.insert((4, 0, 1), MessageFate::Delay(Round::new(6)));
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::new(2));
        assert!(matches!(s.validate(6), Err(ScheduleError::DelayAfterSync { .. })));
    }

    #[test]
    fn crash_round_delay_allowed_even_in_synchronous_run() {
        // Paper footnote 5: crash-round messages may be delayed arbitrarily
        // even in synchronous runs of ES.
        let mut overrides = BTreeMap::new();
        overrides.insert((2, 0, 1), MessageFate::Delay(Round::new(5)));
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::new(2)), None, None, None, None],
            overrides,
            Round::FIRST,
        );
        assert!(s.validate(6).is_ok());
        assert!(s.is_synchronous());
    }

    #[test]
    fn delay_must_be_future() {
        let mut overrides = BTreeMap::new();
        overrides.insert((3, 0, 1), MessageFate::Delay(Round::new(3)));
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::new(9));
        assert!(matches!(s.validate(5), Err(ScheduleError::DelayNotFuture { .. })));
    }

    #[test]
    fn t_resilience_violation_detected() {
        // n=5, t=2, quorum 3: a receiver with 3 of its 4 peers' messages
        // delayed sees only 2 current messages (incl. its own).
        let mut overrides = BTreeMap::new();
        for s in 1..=3 {
            overrides.insert((1, s, 0), MessageFate::Delay(Round::new(2)));
        }
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::new(3));
        assert!(matches!(s.validate(3), Err(ScheduleError::NotTResilient { delivered: 2, .. })));
    }

    #[test]
    fn t_resilience_boundary_accepted() {
        // Delaying exactly 2 (= t) messages keeps the quorum intact.
        let mut overrides = BTreeMap::new();
        for s in 1..=2 {
            overrides.insert((1, s, 0), MessageFate::Delay(Round::new(2)));
        }
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::new(3));
        assert!(s.validate(3).is_ok());
    }

    #[test]
    fn crashing_receiver_exempt_from_t_resilience() {
        // p0 crashes in round 1, so it need not receive a quorum there.
        let mut overrides = BTreeMap::new();
        for s in 1..=3 {
            overrides.insert((1, s, 0), MessageFate::Delay(Round::new(2)));
        }
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::FIRST), None, None, None, None],
            overrides,
            Round::new(3),
        );
        // The overrides now target a receiver that crashes in round 1; the
        // senders are alive, so the schedule is valid.
        assert!(s.validate(3).is_ok());
    }

    #[test]
    fn alive_and_completes() {
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::new(2)), None, None, None, None],
            BTreeMap::new(),
            Round::FIRST,
        );
        let p0 = ProcessId::new(0);
        assert!(s.alive_entering(p0, Round::FIRST));
        assert!(s.alive_entering(p0, Round::new(2)));
        assert!(!s.alive_entering(p0, Round::new(3)));
        assert!(s.completes(p0, Round::FIRST));
        assert!(!s.completes(p0, Round::new(2)));
    }

    #[test]
    fn dead_sender_override_rejected() {
        let mut overrides = BTreeMap::new();
        overrides.insert((3, 0, 1), MessageFate::Lose);
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::FIRST), None, None, None, None],
            overrides,
            Round::FIRST,
        );
        assert!(matches!(s.validate(5), Err(ScheduleError::DeadSender { .. })));
    }

    #[test]
    fn self_edge_override_rejected() {
        let mut overrides = BTreeMap::new();
        overrides.insert((1, 0, 0), MessageFate::Lose);
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::FIRST);
        assert!(matches!(s.validate(5), Err(ScheduleError::SelfEdge { .. })));
    }

    #[test]
    fn round_cleanliness_tracks_crashes_and_overrides() {
        let mut overrides = BTreeMap::new();
        overrides.insert((2, 0, 1), MessageFate::Lose);
        let s = Schedule::from_parts(
            cfg(),
            ModelKind::Es,
            vec![Some(Round::new(2)), None, None, Some(Round::new(4)), None],
            overrides,
            Round::FIRST,
        );
        assert!(s.round_is_clean(Round::FIRST));
        assert!(!s.round_is_clean(Round::new(2))); // crash + override
        assert!(s.round_is_clean(Round::new(3)));
        assert!(!s.round_is_clean(Round::new(4))); // crash only
        assert!(s.round_is_clean(Round::new(5)));
        // A pure-override round (no crash) is dirty too.
        let mut overrides = BTreeMap::new();
        overrides.insert((3, 1, 2), MessageFate::Delay(Round::new(5)));
        let s = Schedule::from_parts(cfg(), ModelKind::Es, vec![None; 5], overrides, Round::new(4));
        assert!(!s.round_is_clean(Round::new(3)));
        assert!(s.round_is_clean(Round::new(2)));
    }

    #[test]
    fn error_display_nonempty() {
        let err = ScheduleError::TooManyCrashes { crashes: 3, t: 2 };
        assert!(!err.to_string().is_empty());
    }
}
