//! The deterministic round executor and its snapshotable stepper.
//!
//! [`RunState`] holds everything a run accumulates — the `n`
//! [`RoundProcess`] automatons, first decisions, pending mailboxes — and
//! [`RunState::step`] executes exactly one round of a [`Schedule`]: the
//! send phase broadcasts each alive process's message and applies the
//! adversary's per-receiver fates; the receive phase hands every process
//! the messages arriving that round (current and delayed) and records
//! decisions. Execution is completely deterministic: identical inputs
//! produce identical outcomes, which the checker and the property tests
//! rely on.
//!
//! Because [`RoundProcess`] requires `Clone`, a `RunState` is a *snapshot*:
//! cloning it forks the run, and both copies evolve identically under
//! identical subsequent rounds. The incremental prefix-sharing sweep
//! ([`incremental`](crate::incremental)) exploits this to execute each
//! shared schedule prefix exactly once, forking at branch points instead
//! of replaying whole schedules. [`run_schedule`] is the classic
//! run-from-scratch entry point, now a thin wrapper over the stepper; the
//! traced executor ([`run_traced`](crate::run_traced)) drives the same
//! stepper through the [`RoundObserver`] hook, so there is a single
//! send/receive-phase implementation in the workspace.
//!
//! # Zero-allocation steady state
//!
//! The message plumbing is built so that, once warm, stepping a round
//! performs **no heap allocation** (asserted by the counting-allocator
//! test in `crates/integration/tests/zero_alloc.rs`):
//!
//! * **Flat ring mailboxes.** Each receiver's pending messages live in a
//!   [`RingMailbox`]: a flat ring of message buffers keyed by
//!   arrival-round *offset* from the round currently executing (offset 0
//!   = due now). Delays are bounded by the schedule horizon, so the ring
//!   grows to the longest in-flight delay span once and then cycles,
//!   reusing its buffers forever; `clone_from` recycles them across the
//!   incremental engine's fork snapshots instead of reallocating tree
//!   nodes the way the former `BTreeMap` mailbox did.
//! * **Pooled deliveries.** The receive phase rebuilds one pooled
//!   [`Delivery`] in place per receiver (`reset` + `append`) instead of
//!   allocating and dropping a fresh `Vec` every process-round. Mailbox
//!   buffers are filled in (sent round, sender) order by construction —
//!   send phases run in ascending round order and iterate senders in
//!   ascending id order — so the former per-round sort is gone.
//! * **Shared-broadcast fast path.** When a round is *clean*
//!   ([`Schedule::round_is_clean`]: no crash, no non-default fate) and no
//!   delayed arrival is due, every completing receiver observes the
//!   identical message multiset. The stepper then builds **one** shared
//!   delivery — every payload moved, none cloned — and hands the same
//!   `&Delivery` to all `n` `deliver()` calls, cutting the round's payload
//!   copies from O(n²) to zero. Serial schedules make this the common
//!   case: every round except the at-most-`t` crash rounds is clean.
//!
//! The engine counts what it does (rounds, fast-path hits, deliveries,
//! clones, forks) in the global [`stats`](crate::stats) counters.

use std::fmt;

use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessFactory, Round, RoundProcess, RunOutcome, Step, Value,
};

use crate::schedule::{MessageFate, Schedule};
use crate::stats::engine_counters;

/// Per-receiver mailbox: a flat ring of message buffers keyed by
/// arrival-round offset from the round currently executing.
///
/// `slots[(head + offset) % slots.len()]` holds the messages arriving
/// `offset` rounds from now; offset 0 is the round being executed. The
/// executor pushes every surviving message copy at its arrival offset
/// (0 for on-time delivery, `arrival - k` for a delay landing at
/// `arrival`), drains the due slot in the receive phase, and
/// [`advance`](RingMailbox::advance)s the ring by one slot per round.
/// The ring grows only when a delay reaches beyond its current span —
/// bounded by the schedule horizon — after which stepping recycles the
/// same buffers round after round: the steady state allocates nothing.
#[derive(Debug)]
struct RingMailbox<M> {
    slots: Vec<Vec<DeliveredMsg<M>>>,
    head: usize,
}

impl<M> RingMailbox<M> {
    /// An empty one-slot ring (the footprint of a delay-free run).
    fn new() -> Self {
        RingMailbox { slots: vec![Vec::new()], head: 0 }
    }

    /// The buffer for messages arriving `offset` rounds from the round
    /// being executed, growing the ring if the delay reaches beyond it.
    fn slot_mut(&mut self, offset: usize) -> &mut Vec<DeliveredMsg<M>> {
        if offset >= self.slots.len() {
            self.grow(offset + 1);
        }
        let len = self.slots.len();
        &mut self.slots[(self.head + offset) % len]
    }

    /// Whether anything is due in the round being executed.
    fn due_is_empty(&self) -> bool {
        self.slots[self.head].is_empty()
    }

    /// The buffer due in the round being executed.
    fn due_mut(&mut self) -> &mut Vec<DeliveredMsg<M>> {
        let head = self.head;
        &mut self.slots[head]
    }

    /// Rotates the ring by one round. Anything left in the due slot is
    /// dropped — messages addressed to a receiver that crashed before
    /// their arrival round — so the buffer is clean for its next lap.
    fn advance(&mut self) {
        self.slots[self.head].clear();
        self.head = (self.head + 1) % self.slots.len();
    }

    /// Empties every slot, keeping the ring's span and each buffer's
    /// capacity — the multi-shot instance reset: the next instance starts
    /// with clean mailboxes but a warm ring.
    fn clear_all(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.head = 0;
    }

    /// Re-bases the ring at `head = 0` with at least `min_slots` slots,
    /// preserving every buffer (and its capacity) at its logical offset.
    fn grow(&mut self, min_slots: usize) {
        let new_len = min_slots.next_power_of_two().max(4);
        let old_len = self.slots.len();
        let mut slots = Vec::with_capacity(new_len);
        for i in 0..old_len {
            slots.push(std::mem::take(&mut self.slots[(self.head + i) % old_len]));
        }
        slots.resize_with(new_len, Vec::new);
        self.slots = slots;
        self.head = 0;
    }
}

impl<M: Clone> Clone for RingMailbox<M> {
    fn clone(&self) -> Self {
        RingMailbox { slots: self.slots.clone(), head: self.head }
    }

    /// Mirrors `source`'s physical layout while reusing `self`'s existing
    /// buffers — the incremental sweep recycles fork snapshots through
    /// this, so the per-slot `Vec`s (and their message payloads' buffers)
    /// are rewritten in place instead of reallocated.
    fn clone_from(&mut self, source: &Self) {
        if self.slots.len() != source.slots.len() {
            // Rare: the rings grew apart between snapshots. Keep as many
            // existing buffers as possible and adopt the source layout.
            self.slots.resize_with(source.slots.len(), Vec::new);
        }
        self.head = source.head;
        for (dst, src) in self.slots.iter_mut().zip(&source.slots) {
            dst.clone_from(src);
        }
    }
}

/// Per-step scratch space owned by a [`RunState`]: buffers whose contents
/// are meaningless between steps but whose *capacity* is the point —
/// reusing them across rounds (and, via `clone_from`, across recycled
/// fork snapshots) is what makes the steady-state step allocation-free.
/// Scratch is never part of the logical snapshot: clones start with fresh
/// empty scratch and still evolve identically.
#[derive(Debug)]
struct StepScratch<M> {
    /// (receiver index, arrival round) of each surviving copy of the
    /// message currently being sent; reused across senders and rounds.
    fates: Vec<(usize, u32)>,
    /// The pooled delivery every receive phase is rebuilt in — one per
    /// receiver on the general path, one shared by all receivers on the
    /// broadcast fast path.
    delivery: Delivery<M>,
}

impl<M> StepScratch<M> {
    fn new() -> Self {
        StepScratch { fates: Vec::new(), delivery: Delivery::empty(Round::FIRST) }
    }
}

/// One receive phase: hand `delivery` to `receiver`, record its first
/// decision, notify the observer — shared by the fast and general paths
/// so their semantics cannot drift apart.
fn deliver_one<P, O>(
    processes: &mut [P],
    decisions: &mut [Option<Decision>],
    observer: &mut O,
    round: Round,
    receiver: indulgent_model::ProcessId,
    delivery: &Delivery<P::Msg>,
) where
    P: RoundProcess,
    O: RoundObserver<P::Msg>,
{
    let step = processes[receiver.index()].deliver(round, delivery);
    let mut decided_now = None;
    if let Step::Decide(value) = step {
        if decisions[receiver.index()].is_none() {
            decisions[receiver.index()] = Some(Decision { process: receiver, round, value });
            decided_now = Some(value);
        }
    }
    observer.on_receive(round, receiver, delivery, decided_now);
}

/// Error from the deterministic executors: the run inputs are inconsistent
/// with the schedule's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorError {
    /// The proposal vector's length differs from the configuration size
    /// (one proposal per process is required).
    ProposalCountMismatch {
        /// The configuration size `n`.
        expected: usize,
        /// The number of proposals supplied.
        got: usize,
    },
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::ProposalCountMismatch { expected, got } => {
                write!(f, "one proposal per process required: config has {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Validates the run inputs shared by every executor entry point.
pub(crate) fn check_run_inputs(n: usize, proposals: &[Value]) -> Result<(), ExecutorError> {
    if proposals.len() != n {
        return Err(ExecutorError::ProposalCountMismatch { expected: n, got: proposals.len() });
    }
    Ok(())
}

/// Observer of a round's receive phase, for executors that record more
/// than the outcome (the traced executor builds its per-round records
/// here). The plain executors use the no-op `()` implementation.
pub trait RoundObserver<M> {
    /// Called once per process completing `round`, after its `deliver`:
    /// `delivery` is what the process received, `decision` the value
    /// recorded this round (`None` if it continued or had decided before).
    fn on_receive(
        &mut self,
        round: Round,
        process: indulgent_model::ProcessId,
        delivery: &Delivery<M>,
        decision: Option<Value>,
    );
}

impl<M> RoundObserver<M> for () {
    fn on_receive(
        &mut self,
        _round: Round,
        _process: indulgent_model::ProcessId,
        _delivery: &Delivery<M>,
        _decision: Option<Value>,
    ) {
    }
}

/// The complete mid-run state of a deterministic execution: a snapshot.
///
/// A `RunState` is created from a factory and proposals, then driven round
/// by round against a [`Schedule`] with [`step`](RunState::step) or to a
/// horizon with [`run_to`](RunState::run_to). Cloning forks the run: the
/// clone and the original evolve identically when driven by identical
/// schedules — the property the fork-on-branch sweep engine
/// ([`incremental`](crate::incremental)) is built on and the snapshot
/// proptests assert for every algorithm in the workspace.
///
/// A `RunState` may be driven by *different* schedules as long as they
/// agree on all rounds already executed (e.g. serial extensions of a
/// common prefix); the executed prefix is baked into the state, and only
/// future rounds consult the schedule.
#[derive(Debug)]
pub struct RunState<P: RoundProcess> {
    processes: Vec<P>,
    decisions: Vec<Option<Decision>>,
    /// pending[r] -> ring of arriving messages for receiver r.
    pending: Vec<RingMailbox<P::Msg>>,
    rounds_executed: u32,
    /// Latched once every process completing the last executed round had
    /// decided — the executor's early-exit condition.
    halted: bool,
    /// Reusable step buffers; not part of the logical snapshot.
    scratch: StepScratch<P::Msg>,
}

impl<P: RoundProcess> Clone for RunState<P> {
    fn clone(&self) -> Self {
        RunState {
            processes: self.processes.clone(),
            decisions: self.decisions.clone(),
            pending: self.pending.clone(),
            rounds_executed: self.rounds_executed,
            halted: self.halted,
            // Scratch contents are dead between steps; a fork starts cold
            // and warms on its first step.
            scratch: StepScratch::new(),
        }
    }

    /// Overwrites `self` with `source`, reusing existing allocations —
    /// the fork-on-branch DFS forks thousands of snapshots per sweep and
    /// recycles per-depth scratch states through this. `self`'s own warm
    /// step scratch is kept as-is (its contents are meaningless between
    /// steps), so recycled snapshots stay allocation-free.
    fn clone_from(&mut self, source: &Self) {
        self.processes.clone_from(&source.processes);
        self.decisions.clone_from(&source.decisions);
        if self.pending.len() == source.pending.len() {
            for (dst, src) in self.pending.iter_mut().zip(&source.pending) {
                dst.clone_from(src);
            }
        } else {
            self.pending.clone_from(&source.pending);
        }
        self.rounds_executed = source.rounds_executed;
        self.halted = source.halted;
    }
}

impl<P: RoundProcess> RunState<P> {
    /// Builds the initial state (round 0, nothing executed) for `n`
    /// processes from `factory` and `proposals`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError::ProposalCountMismatch`] if
    /// `proposals.len() != n`.
    pub fn new<F>(factory: &F, proposals: &[Value], n: usize) -> Result<Self, ExecutorError>
    where
        F: ProcessFactory<Process = P>,
    {
        check_run_inputs(n, proposals)?;
        Ok(RunState {
            processes: (0..n).map(|i| factory.build(i, proposals[i])).collect(),
            decisions: vec![None; n],
            pending: (0..n).map(|_| RingMailbox::new()).collect(),
            rounds_executed: 0,
            halted: false,
            scratch: StepScratch::new(),
        })
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds_executed(&self) -> u32 {
        self.rounds_executed
    }

    /// Rewinds the state to round 0 for the next instance of a multi-shot
    /// execution, keeping every allocation warm: mailbox rings keep their
    /// span and buffer capacity, the step scratch stays hot, and the
    /// automatons are re-fitted in place by `reset` (typically an
    /// instance-reset hook such as `AtPlus2::reset_instance`) instead of
    /// being rebuilt. After the call the state is indistinguishable — up
    /// to buffer capacity — from a fresh [`RunState::new`] whose factory
    /// produced the reset automatons.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError::ProposalCountMismatch`] if
    /// `proposals.len()` differs from the state's process count.
    pub fn reset_instance(
        &mut self,
        proposals: &[Value],
        mut reset: impl FnMut(usize, &mut P, Value),
    ) -> Result<(), ExecutorError> {
        check_run_inputs(self.processes.len(), proposals)?;
        for (i, p) in self.processes.iter_mut().enumerate() {
            reset(i, p, proposals[i]);
        }
        for d in &mut self.decisions {
            *d = None;
        }
        for ring in &mut self.pending {
            ring.clear_all();
        }
        self.rounds_executed = 0;
        self.halted = false;
        Ok(())
    }

    /// Returns `true` once every process completing the last executed
    /// round has decided. Executing further rounds cannot change any
    /// decision; [`run_to`](RunState::run_to) stops here, mirroring the
    /// classic executor's early exit.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Executes one round — the next after [`rounds_executed`] — of
    /// `schedule`, feeding the receive phases to `observer`.
    ///
    /// The schedule only needs to be defined (and stable) for rounds up to
    /// the one being executed; later rounds are never consulted.
    pub fn step_observed<O>(&mut self, schedule: &Schedule, observer: &mut O)
    where
        O: RoundObserver<P::Msg>,
    {
        let config = schedule.config();
        let k = self.rounds_executed + 1;
        let round = Round::new(k);
        self.rounds_executed = k;
        let Self { processes, decisions, pending, scratch, .. } = &mut *self;
        let mut deliveries_built = 0u64;
        let mut messages_cloned = 0u64;

        // Shared-broadcast fast path: in a clean round
        // ([`Schedule::round_is_clean`]) with no delayed arrival due,
        // every process alive entering the round completes it and every
        // completing receiver observes the identical message multiset —
        // the round-k messages of all alive senders, in ascending sender
        // order, with nothing delayed in or out. Build that delivery once
        // (each payload moved, none cloned) and hand the same reference to
        // every `deliver()`.
        let fast = schedule.round_is_clean(round) && pending.iter().all(RingMailbox::due_is_empty);
        if fast {
            scratch.delivery.reset(round);
            for sender in config.processes() {
                if !schedule.alive_entering(sender, round) {
                    continue;
                }
                let msg = processes[sender.index()].send(round);
                scratch.delivery.push(DeliveredMsg { sender, sent_round: round, msg });
            }
            deliveries_built = 1;
            for ring in pending.iter_mut() {
                ring.advance();
            }
            for receiver in config.processes() {
                if !schedule.alive_entering(receiver, round) {
                    continue;
                }
                deliver_one(processes, decisions, observer, round, receiver, &scratch.delivery);
            }
        } else {
            // General path. Send phase: every process alive *entering* the
            // round sends; the adversary decides each copy's fate.
            // Crashing processes send the subset the schedule dictates.
            // The message is cloned once per receiving mailbox except the
            // last, which takes it by move; if every copy's fate is `Lose`
            // the message is dropped without any clone at all.
            for sender in config.processes() {
                if !schedule.alive_entering(sender, round) {
                    continue;
                }
                let msg = processes[sender.index()].send(round);
                scratch.fates.clear();
                if schedule.sender_has_overrides(round, sender) {
                    for receiver in config.processes() {
                        // Deliveries to processes that crashed strictly
                        // before this round are irrelevant.
                        if !schedule.alive_entering(receiver, round) {
                            continue;
                        }
                        match schedule.fate(round, sender, receiver) {
                            MessageFate::Deliver => scratch.fates.push((receiver.index(), k)),
                            // A past arrival (unvalidated schedules only)
                            // can never be delivered; drop the copy like
                            // the mailbox engines before the ring did.
                            MessageFate::Delay(arrival) if arrival.get() >= k => {
                                scratch.fates.push((receiver.index(), arrival.get()));
                            }
                            MessageFate::Delay(_) | MessageFate::Lose => {}
                        }
                    }
                } else {
                    // No override for this sender: every copy toward a
                    // live receiver is delivered on time.
                    for receiver in config.processes() {
                        if schedule.alive_entering(receiver, round) {
                            scratch.fates.push((receiver.index(), k));
                        }
                    }
                }
                let mut msg = Some(msg);
                let last = scratch.fates.len().checked_sub(1);
                for (i, &(receiver, arrival)) in scratch.fates.iter().enumerate() {
                    let copy = if Some(i) == last {
                        msg.take().expect("message moved at most once")
                    } else {
                        messages_cloned += 1;
                        msg.as_ref().expect("message present until the final receiver").clone()
                    };
                    // Mailbox buffers stay sorted by (sent round, sender)
                    // by construction: send phases run in ascending round
                    // order and senders iterate in ascending id order.
                    pending[receiver].slot_mut((arrival - k) as usize).push(DeliveredMsg {
                        sender,
                        sent_round: round,
                        msg: copy,
                    });
                }
            }

            // Receive phase: only processes completing the round receive;
            // every ring rotates exactly once.
            for receiver in config.processes() {
                let ring = &mut pending[receiver.index()];
                if !schedule.completes(receiver, round) {
                    ring.advance();
                    continue;
                }
                scratch.delivery.reset(round);
                scratch.delivery.append(ring.due_mut());
                ring.advance();
                deliveries_built += 1;
                deliver_one(processes, decisions, observer, round, receiver, &scratch.delivery);
            }
        }

        // Early-exit latch: everyone still alive has decided.
        self.halted = config
            .processes()
            .filter(|&p| schedule.completes(p, round))
            .all(|p| self.decisions[p.index()].is_some());
        engine_counters().record_round(fast, deliveries_built, messages_cloned);
    }

    /// Executes one round of `schedule` without observation.
    pub fn step(&mut self, schedule: &Schedule) {
        self.step_observed(schedule, &mut ());
    }

    /// Drives the run forward until `horizon` rounds have executed or the
    /// run halts (every alive process decided), whichever comes first.
    pub fn run_to(&mut self, schedule: &Schedule, horizon: u32) {
        while self.rounds_executed < horizon && !self.halted {
            self.step(schedule);
        }
    }

    /// The outcome of the run so far under `schedule` (whose crash set
    /// determines the reported `crashed` processes).
    #[must_use]
    pub fn outcome(&self, proposals: &[Value], schedule: &Schedule) -> RunOutcome {
        RunOutcome {
            proposals: proposals.to_vec(),
            decisions: self.decisions.clone(),
            crashed: schedule.faulty(),
            rounds_executed: self.rounds_executed,
        }
    }
}

/// Runs `factory`-built processes with `proposals` under `schedule` for at
/// most `horizon` rounds.
///
/// Execution stops early once every alive process has decided. The returned
/// [`RunOutcome`] records each process's first decision, the crash set and
/// the number of rounds executed.
///
/// # Errors
///
/// Returns [`ExecutorError::ProposalCountMismatch`] if `proposals.len()`
/// differs from the schedule's configuration size. Schedule legality is the
/// caller's concern: run [`Schedule::validate`] first (the builders and
/// generators in this crate only produce validated schedules).
pub fn run_schedule<F>(
    factory: &F,
    proposals: &[Value],
    schedule: &Schedule,
    horizon: u32,
) -> Result<RunOutcome, ExecutorError>
where
    F: ProcessFactory,
{
    let mut state = RunState::new(factory, proposals, schedule.config().n())?;
    state.run_to(schedule, horizon);
    Ok(state.outcome(proposals, schedule))
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessId, SystemConfig};

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::schedule::ModelKind;

    /// Broadcasts its estimate every round; decides the minimum seen at the
    /// end of round `rounds`. (A FloodSet skeleton for executor testing —
    /// not fault-tolerant reasoning, just deterministic plumbing.)
    #[derive(Debug, Clone)]
    struct MinAfter {
        est: Value,
        rounds: u32,
        decided: bool,
    }

    impl RoundProcess for MinAfter {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.est
        }

        fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
            for m in delivery.current() {
                self.est = self.est.min(m.msg);
            }
            if round.get() >= self.rounds && !self.decided {
                self.decided = true;
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn factory(rounds: u32) -> impl ProcessFactory<Process = MinAfter> {
        move |_i: usize, v: Value| MinAfter { est: v, rounds, decided: false }
    }

    fn cfg() -> SystemConfig {
        SystemConfig::majority(3, 1).unwrap()
    }

    fn proposals(vals: &[u64]) -> Vec<Value> {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn failure_free_run_floods_minimum() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(2), &proposals(&[5, 3, 9]), &schedule, 10).unwrap();
        assert!(outcome.check_consensus().is_ok());
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(3));
            assert_eq!(d.round, Round::new(2));
        }
        assert_eq!(outcome.rounds_executed, 2);
    }

    #[test]
    fn crash_before_send_hides_value() {
        // p1 (value 3) crashes before sending in round 1; with a 1-round
        // horizon the others decide without ever seeing 3.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(1), Round::FIRST)
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(1), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(5));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(5));
        assert_eq!(outcome.decision_of(ProcessId::new(1)), None);
        assert!(outcome.crashed.contains(ProcessId::new(1)));
    }

    #[test]
    fn partial_crash_delivery_splits_views() {
        // p1 crashes in round 1 delivering only to p0: p0 sees 3, p2 does
        // not. Deciding after round 1 exposes the classic disagreement that
        // motivates flooding for t+1 rounds.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(1), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(3));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(5));
        assert!(outcome.check_safety().is_err());
    }

    #[test]
    fn delayed_message_arrives_later_and_is_tagged() {
        #[derive(Debug, Clone)]
        struct Recorder {
            est: Value,
            delayed_seen: Vec<(u32, u32)>, // (arrival, sent)
        }
        impl RoundProcess for Recorder {
            type Msg = Value;
            fn send(&mut self, _round: Round) -> Value {
                self.est
            }
            fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
                for m in delivery.delayed() {
                    self.delayed_seen.push((round.get(), m.sent_round.get()));
                }
                if round.get() == 3 {
                    Step::Decide(self.est)
                } else {
                    Step::Continue
                }
            }
        }
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(2))
            .delay(Round::FIRST, ProcessId::new(1), ProcessId::new(0), Round::new(3))
            .build(5)
            .unwrap();
        let factory = |_i: usize, v: Value| Recorder { est: v, delayed_seen: vec![] };
        let outcome = run_schedule(&factory, &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.rounds_executed, 3);
        // We cannot inspect the recorder after the run (owned by executor),
        // so assert via behaviour: the run terminates with decisions.
        assert!(outcome.all_correct_decided());
    }

    #[test]
    fn early_exit_when_all_alive_decided() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(1), &proposals(&[1, 2, 3]), &schedule, 100).unwrap();
        assert_eq!(outcome.rounds_executed, 1);
    }

    #[test]
    fn proposal_arity_reported_as_typed_error() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let err = run_schedule(&factory(1), &proposals(&[1, 2]), &schedule, 5).unwrap_err();
        assert_eq!(err, ExecutorError::ProposalCountMismatch { expected: 3, got: 2 });
        assert!(err.to_string().contains("one proposal per process"));
    }

    #[test]
    fn first_decision_is_recorded_once() {
        // MinAfter never decides twice, so emulate with a custom automaton
        // that (incorrectly) decides every round; the executor must keep the
        // first decision only.
        #[derive(Debug, Clone)]
        struct Eager;
        impl RoundProcess for Eager {
            type Msg = ();
            fn send(&mut self, _round: Round) {}
            fn deliver(&mut self, round: Round, _delivery: &Delivery<()>) -> Step {
                Step::Decide(Value::new(u64::from(round.get())))
            }
        }
        // Keep one process undecided forever to avoid early exit.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_after_send(ProcessId::new(2), Round::new(4))
            .build(5)
            .unwrap();
        let factory = |_i: usize, _v: Value| Eager;
        let outcome = run_schedule(&factory, &proposals(&[0, 0, 0]), &schedule, 3).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().round, Round::FIRST);
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(1));
    }

    #[test]
    fn forked_state_resumes_to_the_same_outcome() {
        // Snapshot after round 1, fork, finish both: identical outcomes,
        // and identical to the one-shot executor.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(5)
            .unwrap();
        let props = proposals(&[5, 3, 9]);
        let mut state = RunState::new(&factory(2), &props, 3).unwrap();
        state.step(&schedule);
        let mut fork = state.clone();
        state.run_to(&schedule, 5);
        fork.run_to(&schedule, 5);
        let reference = run_schedule(&factory(2), &props, &schedule, 5).unwrap();
        assert_eq!(state.outcome(&props, &schedule), reference);
        assert_eq!(fork.outcome(&props, &schedule), reference);
    }

    #[test]
    fn halted_latch_matches_early_exit() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let props = proposals(&[1, 2, 3]);
        let mut state = RunState::new(&factory(1), &props, 3).unwrap();
        assert!(!state.halted());
        state.step(&schedule);
        assert!(state.halted());
        assert_eq!(state.rounds_executed(), 1);
        // run_to after halt is a no-op.
        state.run_to(&schedule, 100);
        assert_eq!(state.rounds_executed(), 1);
    }

    #[test]
    fn delayed_arrivals_survive_ring_growth_and_wrap() {
        // Delays spanning 6 rounds force the 1-slot ring to grow to 8
        // slots during round 1; later delays push and pop after the head
        // has lapped the ring. The traced executor's per-round delayed
        // counts pin every arrival to its scheduled round.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(15))
            .delay(Round::new(1), ProcessId::new(1), ProcessId::new(0), Round::new(7))
            .delay(Round::new(2), ProcessId::new(2), ProcessId::new(0), Round::new(3))
            .delay(Round::new(9), ProcessId::new(1), ProcessId::new(0), Round::new(12))
            .delay(Round::new(12), ProcessId::new(2), ProcessId::new(0), Round::new(14))
            .build(20)
            .unwrap();
        let trace =
            crate::trace::run_traced(&factory(18), &proposals(&[5, 3, 9]), &schedule, 18).unwrap();
        let delayed_at = |k: u32| {
            trace.record(Round::new(k), ProcessId::new(0)).expect("p0 completes").delayed_arrivals
        };
        for k in 1..=18u32 {
            let expected = usize::from(matches!(k, 3 | 7 | 12 | 14));
            assert_eq!(delayed_at(k), expected, "round {k}");
        }
        // The delayed senders are suspected in the sending round but not
        // in the arrival round.
        assert!(trace.suspected(Round::new(1), ProcessId::new(0), ProcessId::new(1)));
        assert!(!trace.suspected(Round::new(7), ProcessId::new(0), ProcessId::new(1)));
        assert!(trace.outcome().all_correct_decided());
    }

    #[test]
    fn clone_from_across_diverged_ring_sizes() {
        // A state whose rings grew (delays in flight) and a flat
        // failure-free state overwrite each other via clone_from; both
        // must keep evolving exactly like fresh clones.
        let delayed = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(4))
            .delay(Round::new(1), ProcessId::new(1), ProcessId::new(0), Round::new(5))
            .build(8)
            .unwrap();
        let flat = Schedule::failure_free(cfg(), ModelKind::Es);
        let props = proposals(&[5, 3, 9]);

        let mut grown = RunState::new(&factory(6), &props, 3).unwrap();
        grown.step(&delayed);
        let mut recycled = RunState::new(&factory(6), &props, 3).unwrap();
        recycled.step(&flat);
        // grown's rings span 5 rounds, recycled's a single slot.
        recycled.clone_from(&grown);
        let mut fresh = grown.clone();
        recycled.run_to(&delayed, 8);
        fresh.run_to(&delayed, 8);
        grown.run_to(&delayed, 8);
        assert_eq!(recycled.outcome(&props, &delayed), grown.outcome(&props, &delayed));
        assert_eq!(fresh.outcome(&props, &delayed), grown.outcome(&props, &delayed));

        // And the reverse: a grown state overwritten by a flat one.
        let mut grown2 = RunState::new(&factory(6), &props, 3).unwrap();
        grown2.step(&delayed);
        let flat_mid = {
            let mut s = RunState::new(&factory(6), &props, 3).unwrap();
            s.step(&flat);
            s
        };
        grown2.clone_from(&flat_mid);
        let mut fresh2 = flat_mid.clone();
        grown2.run_to(&flat, 8);
        fresh2.run_to(&flat, 8);
        assert_eq!(grown2.outcome(&props, &flat), fresh2.outcome(&props, &flat));
    }

    #[test]
    fn fast_path_rounds_are_counted_and_clone_free() {
        use crate::stats::engine_counters;
        // A failure-free synchronous run is clean in every round: each
        // step must take the shared-broadcast fast path and clone no
        // payload. The counters are global (other tests add to them
        // concurrently), so assert on deltas being at least what this run
        // contributes and use a probe automaton that never ends early.
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let props = proposals(&[5, 3, 9]);
        let mut state = RunState::new(&factory(40), &props, 3).unwrap();
        let before = engine_counters().snapshot();
        state.run_to(&schedule, 40);
        let d = engine_counters().snapshot().since(&before);
        assert!(d.rounds_stepped >= 40);
        assert!(d.fast_path_rounds >= 40);
        assert!(d.deliveries_built >= 40);
    }

    #[test]
    fn crash_round_falls_back_to_the_general_path_then_recovers() {
        // Round 1 is dirty (crash with a partial delivery): the general
        // path runs; rounds 2+ are clean again. The outcome must be what
        // the per-receiver semantics dictate — p0 sees p1's value, p2
        // does not, and both decide after flooding for t+1 rounds.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(2), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(3));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(3));
    }

    #[test]
    fn all_lose_round_materializes_no_copies_but_still_sends() {
        // p0 crashes in round 1 delivering to nobody: its `send` must still
        // run (state parity with the paper's model), but no peer mailbox
        // materializes a copy. Behaviour is asserted through the outcome:
        // nobody ever sees p0's minimum value 0.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::FIRST)
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(2), &proposals(&[0, 3, 9]), &schedule, 5).unwrap();
        for p in [1, 2] {
            assert_eq!(outcome.decision_of(ProcessId::new(p)).unwrap().value, Value::new(3));
        }
    }
}
