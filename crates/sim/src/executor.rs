//! The deterministic round executor.
//!
//! [`run_schedule`] drives `n` [`RoundProcess`] automatons through the rounds
//! of a [`Schedule`]: the send phase broadcasts each alive process's message
//! and applies the adversary's per-receiver fates; the receive phase hands
//! every process the messages arriving that round (current and delayed) and
//! records decisions. Execution is completely deterministic: identical
//! inputs produce identical outcomes, which the checker and the property
//! tests rely on.

use std::collections::BTreeMap;
use std::fmt;

use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessFactory, Round, RoundProcess, RunOutcome, Step, Value,
};

use crate::schedule::{MessageFate, Schedule};

/// Per-receiver mailbox: arrival round -> messages arriving that round.
type Mailbox<P> = BTreeMap<u32, Vec<DeliveredMsg<<P as RoundProcess>::Msg>>>;

/// Error from the deterministic executors: the run inputs are inconsistent
/// with the schedule's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorError {
    /// The proposal vector's length differs from the configuration size
    /// (one proposal per process is required).
    ProposalCountMismatch {
        /// The configuration size `n`.
        expected: usize,
        /// The number of proposals supplied.
        got: usize,
    },
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::ProposalCountMismatch { expected, got } => {
                write!(f, "one proposal per process required: config has {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Validates the run inputs shared by [`run_schedule`] and
/// [`run_traced`](crate::run_traced).
pub(crate) fn check_run_inputs(n: usize, proposals: &[Value]) -> Result<(), ExecutorError> {
    if proposals.len() != n {
        return Err(ExecutorError::ProposalCountMismatch { expected: n, got: proposals.len() });
    }
    Ok(())
}

/// Runs `factory`-built processes with `proposals` under `schedule` for at
/// most `horizon` rounds.
///
/// Execution stops early once every alive process has decided. The returned
/// [`RunOutcome`] records each process's first decision, the crash set and
/// the number of rounds executed.
///
/// # Errors
///
/// Returns [`ExecutorError::ProposalCountMismatch`] if `proposals.len()`
/// differs from the schedule's configuration size. Schedule legality is the
/// caller's concern: run [`Schedule::validate`] first (the builders and
/// generators in this crate only produce validated schedules).
pub fn run_schedule<F>(
    factory: &F,
    proposals: &[Value],
    schedule: &Schedule,
    horizon: u32,
) -> Result<RunOutcome, ExecutorError>
where
    F: ProcessFactory,
{
    let config = schedule.config();
    let n = config.n();
    check_run_inputs(n, proposals)?;

    let mut processes: Vec<F::Process> = (0..n).map(|i| factory.build(i, proposals[i])).collect();
    let mut decisions: Vec<Option<Decision>> = vec![None; n];
    // pending[r] -> messages arriving at round key for receiver r.
    let mut pending: Vec<Mailbox<F::Process>> = vec![BTreeMap::new(); n];
    let mut rounds_executed = 0;

    for k in 1..=horizon {
        let round = Round::new(k);
        rounds_executed = k;

        // Send phase: every process alive *entering* the round sends; the
        // adversary decides each copy's fate. Crashing processes send the
        // subset the schedule dictates.
        for sender in config.processes() {
            if !schedule.alive_entering(sender, round) {
                continue;
            }
            let msg = processes[sender.index()].send(round);
            for receiver in config.processes() {
                // Deliveries to processes that crashed strictly before this
                // round are irrelevant.
                if !schedule.alive_entering(receiver, round) {
                    continue;
                }
                match schedule.fate(round, sender, receiver) {
                    MessageFate::Deliver => {
                        pending[receiver.index()].entry(k).or_default().push(DeliveredMsg {
                            sender,
                            sent_round: round,
                            msg: msg.clone(),
                        });
                    }
                    MessageFate::Delay(arrival) => {
                        pending[receiver.index()]
                            .entry(arrival.get())
                            .or_default()
                            .push(DeliveredMsg { sender, sent_round: round, msg: msg.clone() });
                    }
                    MessageFate::Lose => {}
                }
            }
        }

        // Receive phase: only processes completing the round receive.
        for receiver in config.processes() {
            if !schedule.completes(receiver, round) {
                continue;
            }
            let mut arrived = pending[receiver.index()].remove(&k).unwrap_or_default();
            // Deterministic presentation order: by sent round, then sender.
            arrived.sort_by_key(|m| (m.sent_round, m.sender));
            let delivery = Delivery::new(round, arrived);
            let step = processes[receiver.index()].deliver(round, &delivery);
            if let Step::Decide(value) = step {
                if decisions[receiver.index()].is_none() {
                    decisions[receiver.index()] =
                        Some(Decision { process: receiver, round, value });
                }
            }
        }

        // Early exit: everyone still alive has decided.
        let all_alive_decided = config
            .processes()
            .filter(|&p| schedule.completes(p, round))
            .all(|p| decisions[p.index()].is_some());
        if all_alive_decided {
            break;
        }
    }

    Ok(RunOutcome {
        proposals: proposals.to_vec(),
        decisions,
        crashed: schedule.faulty(),
        rounds_executed,
    })
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessId, SystemConfig};

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::schedule::ModelKind;

    /// Broadcasts its estimate every round; decides the minimum seen at the
    /// end of round `rounds`. (A FloodSet skeleton for executor testing —
    /// not fault-tolerant reasoning, just deterministic plumbing.)
    #[derive(Debug)]
    struct MinAfter {
        est: Value,
        rounds: u32,
        decided: bool,
    }

    impl RoundProcess for MinAfter {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.est
        }

        fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
            for m in delivery.current() {
                self.est = self.est.min(m.msg);
            }
            if round.get() >= self.rounds && !self.decided {
                self.decided = true;
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn factory(rounds: u32) -> impl ProcessFactory<Process = MinAfter> {
        move |_i: usize, v: Value| MinAfter { est: v, rounds, decided: false }
    }

    fn cfg() -> SystemConfig {
        SystemConfig::majority(3, 1).unwrap()
    }

    fn proposals(vals: &[u64]) -> Vec<Value> {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn failure_free_run_floods_minimum() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(2), &proposals(&[5, 3, 9]), &schedule, 10).unwrap();
        assert!(outcome.check_consensus().is_ok());
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(3));
            assert_eq!(d.round, Round::new(2));
        }
        assert_eq!(outcome.rounds_executed, 2);
    }

    #[test]
    fn crash_before_send_hides_value() {
        // p1 (value 3) crashes before sending in round 1; with a 1-round
        // horizon the others decide without ever seeing 3.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(1), Round::FIRST)
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(1), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(5));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(5));
        assert_eq!(outcome.decision_of(ProcessId::new(1)), None);
        assert!(outcome.crashed.contains(ProcessId::new(1)));
    }

    #[test]
    fn partial_crash_delivery_splits_views() {
        // p1 crashes in round 1 delivering only to p0: p0 sees 3, p2 does
        // not. Deciding after round 1 exposes the classic disagreement that
        // motivates flooding for t+1 rounds.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(1), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(3));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(5));
        assert!(outcome.check_safety().is_err());
    }

    #[test]
    fn delayed_message_arrives_later_and_is_tagged() {
        #[derive(Debug)]
        struct Recorder {
            est: Value,
            delayed_seen: Vec<(u32, u32)>, // (arrival, sent)
        }
        impl RoundProcess for Recorder {
            type Msg = Value;
            fn send(&mut self, _round: Round) -> Value {
                self.est
            }
            fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
                for m in delivery.delayed() {
                    self.delayed_seen.push((round.get(), m.sent_round.get()));
                }
                if round.get() == 3 {
                    Step::Decide(self.est)
                } else {
                    Step::Continue
                }
            }
        }
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(2))
            .delay(Round::FIRST, ProcessId::new(1), ProcessId::new(0), Round::new(3))
            .build(5)
            .unwrap();
        let factory = |_i: usize, v: Value| Recorder { est: v, delayed_seen: vec![] };
        let outcome = run_schedule(&factory, &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.rounds_executed, 3);
        // We cannot inspect the recorder after the run (owned by executor),
        // so assert via behaviour: the run terminates with decisions.
        assert!(outcome.all_correct_decided());
    }

    #[test]
    fn early_exit_when_all_alive_decided() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(1), &proposals(&[1, 2, 3]), &schedule, 100).unwrap();
        assert_eq!(outcome.rounds_executed, 1);
    }

    #[test]
    fn proposal_arity_reported_as_typed_error() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let err = run_schedule(&factory(1), &proposals(&[1, 2]), &schedule, 5).unwrap_err();
        assert_eq!(err, ExecutorError::ProposalCountMismatch { expected: 3, got: 2 });
        assert!(err.to_string().contains("one proposal per process"));
    }

    #[test]
    fn first_decision_is_recorded_once() {
        // MinAfter never decides twice, so emulate with a custom automaton
        // that (incorrectly) decides every round; the executor must keep the
        // first decision only.
        #[derive(Debug)]
        struct Eager;
        impl RoundProcess for Eager {
            type Msg = ();
            fn send(&mut self, _round: Round) {}
            fn deliver(&mut self, round: Round, _delivery: &Delivery<()>) -> Step {
                Step::Decide(Value::new(u64::from(round.get())))
            }
        }
        // Keep one process undecided forever to avoid early exit.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_after_send(ProcessId::new(2), Round::new(4))
            .build(5)
            .unwrap();
        let factory = |_i: usize, _v: Value| Eager;
        let outcome = run_schedule(&factory, &proposals(&[0, 0, 0]), &schedule, 3).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().round, Round::FIRST);
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(1));
    }
}
