//! The deterministic round executor and its snapshotable stepper.
//!
//! [`RunState`] holds everything a run accumulates — the `n`
//! [`RoundProcess`] automatons, first decisions, pending mailboxes — and
//! [`RunState::step`] executes exactly one round of a [`Schedule`]: the
//! send phase broadcasts each alive process's message and applies the
//! adversary's per-receiver fates; the receive phase hands every process
//! the messages arriving that round (current and delayed) and records
//! decisions. Execution is completely deterministic: identical inputs
//! produce identical outcomes, which the checker and the property tests
//! rely on.
//!
//! Because [`RoundProcess`] requires `Clone`, a `RunState` is a *snapshot*:
//! cloning it forks the run, and both copies evolve identically under
//! identical subsequent rounds. The incremental prefix-sharing sweep
//! ([`incremental`](crate::incremental)) exploits this to execute each
//! shared schedule prefix exactly once, forking at branch points instead
//! of replaying whole schedules. [`run_schedule`] is the classic
//! run-from-scratch entry point, now a thin wrapper over the stepper; the
//! traced executor ([`run_traced`](crate::run_traced)) drives the same
//! stepper through the [`RoundObserver`] hook, so there is a single
//! send/receive-phase implementation in the workspace.

use std::collections::BTreeMap;
use std::fmt;

use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessFactory, Round, RoundProcess, RunOutcome, Step, Value,
};

use crate::schedule::{MessageFate, Schedule};

/// Per-receiver mailbox: arrival round -> messages arriving that round.
type Mailbox<M> = BTreeMap<u32, Vec<DeliveredMsg<M>>>;

/// Error from the deterministic executors: the run inputs are inconsistent
/// with the schedule's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorError {
    /// The proposal vector's length differs from the configuration size
    /// (one proposal per process is required).
    ProposalCountMismatch {
        /// The configuration size `n`.
        expected: usize,
        /// The number of proposals supplied.
        got: usize,
    },
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::ProposalCountMismatch { expected, got } => {
                write!(f, "one proposal per process required: config has {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Validates the run inputs shared by every executor entry point.
pub(crate) fn check_run_inputs(n: usize, proposals: &[Value]) -> Result<(), ExecutorError> {
    if proposals.len() != n {
        return Err(ExecutorError::ProposalCountMismatch { expected: n, got: proposals.len() });
    }
    Ok(())
}

/// Observer of a round's receive phase, for executors that record more
/// than the outcome (the traced executor builds its per-round records
/// here). The plain executors use the no-op `()` implementation.
pub trait RoundObserver<M> {
    /// Called once per process completing `round`, after its `deliver`:
    /// `delivery` is what the process received, `decision` the value
    /// recorded this round (`None` if it continued or had decided before).
    fn on_receive(
        &mut self,
        round: Round,
        process: indulgent_model::ProcessId,
        delivery: &Delivery<M>,
        decision: Option<Value>,
    );
}

impl<M> RoundObserver<M> for () {
    fn on_receive(
        &mut self,
        _round: Round,
        _process: indulgent_model::ProcessId,
        _delivery: &Delivery<M>,
        _decision: Option<Value>,
    ) {
    }
}

/// The complete mid-run state of a deterministic execution: a snapshot.
///
/// A `RunState` is created from a factory and proposals, then driven round
/// by round against a [`Schedule`] with [`step`](RunState::step) or to a
/// horizon with [`run_to`](RunState::run_to). Cloning forks the run: the
/// clone and the original evolve identically when driven by identical
/// schedules — the property the fork-on-branch sweep engine
/// ([`incremental`](crate::incremental)) is built on and the snapshot
/// proptests assert for every algorithm in the workspace.
///
/// A `RunState` may be driven by *different* schedules as long as they
/// agree on all rounds already executed (e.g. serial extensions of a
/// common prefix); the executed prefix is baked into the state, and only
/// future rounds consult the schedule.
#[derive(Debug)]
pub struct RunState<P: RoundProcess> {
    processes: Vec<P>,
    decisions: Vec<Option<Decision>>,
    /// pending[r] -> messages arriving at round key for receiver r.
    pending: Vec<Mailbox<P::Msg>>,
    rounds_executed: u32,
    /// Latched once every process completing the last executed round had
    /// decided — the executor's early-exit condition.
    halted: bool,
}

impl<P: RoundProcess> Clone for RunState<P> {
    fn clone(&self) -> Self {
        RunState {
            processes: self.processes.clone(),
            decisions: self.decisions.clone(),
            pending: self.pending.clone(),
            rounds_executed: self.rounds_executed,
            halted: self.halted,
        }
    }

    /// Overwrites `self` with `source`, reusing existing allocations —
    /// the fork-on-branch DFS forks thousands of snapshots per sweep and
    /// recycles per-depth scratch states through this.
    fn clone_from(&mut self, source: &Self) {
        self.processes.clone_from(&source.processes);
        self.decisions.clone_from(&source.decisions);
        self.pending.clone_from(&source.pending);
        self.rounds_executed = source.rounds_executed;
        self.halted = source.halted;
    }
}

impl<P: RoundProcess> RunState<P> {
    /// Builds the initial state (round 0, nothing executed) for `n`
    /// processes from `factory` and `proposals`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError::ProposalCountMismatch`] if
    /// `proposals.len() != n`.
    pub fn new<F>(factory: &F, proposals: &[Value], n: usize) -> Result<Self, ExecutorError>
    where
        F: ProcessFactory<Process = P>,
    {
        check_run_inputs(n, proposals)?;
        Ok(RunState {
            processes: (0..n).map(|i| factory.build(i, proposals[i])).collect(),
            decisions: vec![None; n],
            pending: vec![BTreeMap::new(); n],
            rounds_executed: 0,
            halted: false,
        })
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds_executed(&self) -> u32 {
        self.rounds_executed
    }

    /// Returns `true` once every process completing the last executed
    /// round has decided. Executing further rounds cannot change any
    /// decision; [`run_to`](RunState::run_to) stops here, mirroring the
    /// classic executor's early exit.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Executes one round — the next after [`rounds_executed`] — of
    /// `schedule`, feeding the receive phases to `observer`.
    ///
    /// The schedule only needs to be defined (and stable) for rounds up to
    /// the one being executed; later rounds are never consulted.
    pub fn step_observed<O>(&mut self, schedule: &Schedule, observer: &mut O)
    where
        O: RoundObserver<P::Msg>,
    {
        let config = schedule.config();
        let k = self.rounds_executed + 1;
        let round = Round::new(k);
        self.rounds_executed = k;

        // Send phase: every process alive *entering* the round sends; the
        // adversary decides each copy's fate. Crashing processes send the
        // subset the schedule dictates. The message is cloned once per
        // receiving mailbox except the last, which takes it by move; if
        // every copy's fate is `Lose` the message is dropped without any
        // clone at all.
        // (receiver, arrival round) of every surviving copy; one scratch
        // buffer reused across senders.
        let mut fates: Vec<(usize, u32)> = Vec::with_capacity(config.n());
        for sender in config.processes() {
            if !schedule.alive_entering(sender, round) {
                continue;
            }
            let msg = self.processes[sender.index()].send(round);
            fates.clear();
            for receiver in config.processes() {
                // Deliveries to processes that crashed strictly before this
                // round are irrelevant.
                if !schedule.alive_entering(receiver, round) {
                    continue;
                }
                match schedule.fate(round, sender, receiver) {
                    MessageFate::Deliver => fates.push((receiver.index(), k)),
                    MessageFate::Delay(arrival) => fates.push((receiver.index(), arrival.get())),
                    MessageFate::Lose => {}
                }
            }
            let mut msg = Some(msg);
            let last = fates.len().checked_sub(1);
            for (i, &(receiver, arrival)) in fates.iter().enumerate() {
                let copy = if Some(i) == last {
                    msg.take().expect("message moved at most once")
                } else {
                    msg.as_ref().expect("message present until the final receiver").clone()
                };
                self.pending[receiver].entry(arrival).or_default().push(DeliveredMsg {
                    sender,
                    sent_round: round,
                    msg: copy,
                });
            }
        }

        // Receive phase: only processes completing the round receive.
        for receiver in config.processes() {
            if !schedule.completes(receiver, round) {
                continue;
            }
            let mut arrived = self.pending[receiver.index()].remove(&k).unwrap_or_default();
            // Deterministic presentation order: by sent round, then sender.
            arrived.sort_by_key(|m| (m.sent_round, m.sender));
            let delivery = Delivery::new(round, arrived);
            let step = self.processes[receiver.index()].deliver(round, &delivery);
            let mut decided_now = None;
            if let Step::Decide(value) = step {
                if self.decisions[receiver.index()].is_none() {
                    self.decisions[receiver.index()] =
                        Some(Decision { process: receiver, round, value });
                    decided_now = Some(value);
                }
            }
            observer.on_receive(round, receiver, &delivery, decided_now);
        }

        // Early-exit latch: everyone still alive has decided.
        self.halted = config
            .processes()
            .filter(|&p| schedule.completes(p, round))
            .all(|p| self.decisions[p.index()].is_some());
    }

    /// Executes one round of `schedule` without observation.
    pub fn step(&mut self, schedule: &Schedule) {
        self.step_observed(schedule, &mut ());
    }

    /// Drives the run forward until `horizon` rounds have executed or the
    /// run halts (every alive process decided), whichever comes first.
    pub fn run_to(&mut self, schedule: &Schedule, horizon: u32) {
        while self.rounds_executed < horizon && !self.halted {
            self.step(schedule);
        }
    }

    /// The outcome of the run so far under `schedule` (whose crash set
    /// determines the reported `crashed` processes).
    #[must_use]
    pub fn outcome(&self, proposals: &[Value], schedule: &Schedule) -> RunOutcome {
        RunOutcome {
            proposals: proposals.to_vec(),
            decisions: self.decisions.clone(),
            crashed: schedule.faulty(),
            rounds_executed: self.rounds_executed,
        }
    }
}

/// Runs `factory`-built processes with `proposals` under `schedule` for at
/// most `horizon` rounds.
///
/// Execution stops early once every alive process has decided. The returned
/// [`RunOutcome`] records each process's first decision, the crash set and
/// the number of rounds executed.
///
/// # Errors
///
/// Returns [`ExecutorError::ProposalCountMismatch`] if `proposals.len()`
/// differs from the schedule's configuration size. Schedule legality is the
/// caller's concern: run [`Schedule::validate`] first (the builders and
/// generators in this crate only produce validated schedules).
pub fn run_schedule<F>(
    factory: &F,
    proposals: &[Value],
    schedule: &Schedule,
    horizon: u32,
) -> Result<RunOutcome, ExecutorError>
where
    F: ProcessFactory,
{
    let mut state = RunState::new(factory, proposals, schedule.config().n())?;
    state.run_to(schedule, horizon);
    Ok(state.outcome(proposals, schedule))
}

#[cfg(test)]
mod tests {
    use indulgent_model::{ProcessId, SystemConfig};

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::schedule::ModelKind;

    /// Broadcasts its estimate every round; decides the minimum seen at the
    /// end of round `rounds`. (A FloodSet skeleton for executor testing —
    /// not fault-tolerant reasoning, just deterministic plumbing.)
    #[derive(Debug, Clone)]
    struct MinAfter {
        est: Value,
        rounds: u32,
        decided: bool,
    }

    impl RoundProcess for MinAfter {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.est
        }

        fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
            for m in delivery.current() {
                self.est = self.est.min(m.msg);
            }
            if round.get() >= self.rounds && !self.decided {
                self.decided = true;
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn factory(rounds: u32) -> impl ProcessFactory<Process = MinAfter> {
        move |_i: usize, v: Value| MinAfter { est: v, rounds, decided: false }
    }

    fn cfg() -> SystemConfig {
        SystemConfig::majority(3, 1).unwrap()
    }

    fn proposals(vals: &[u64]) -> Vec<Value> {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn failure_free_run_floods_minimum() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(2), &proposals(&[5, 3, 9]), &schedule, 10).unwrap();
        assert!(outcome.check_consensus().is_ok());
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(3));
            assert_eq!(d.round, Round::new(2));
        }
        assert_eq!(outcome.rounds_executed, 2);
    }

    #[test]
    fn crash_before_send_hides_value() {
        // p1 (value 3) crashes before sending in round 1; with a 1-round
        // horizon the others decide without ever seeing 3.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(1), Round::FIRST)
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(1), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(5));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(5));
        assert_eq!(outcome.decision_of(ProcessId::new(1)), None);
        assert!(outcome.crashed.contains(ProcessId::new(1)));
    }

    #[test]
    fn partial_crash_delivery_splits_views() {
        // p1 crashes in round 1 delivering only to p0: p0 sees 3, p2 does
        // not. Deciding after round 1 exposes the classic disagreement that
        // motivates flooding for t+1 rounds.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(1), &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(3));
        assert_eq!(outcome.decision_of(ProcessId::new(2)).unwrap().value, Value::new(5));
        assert!(outcome.check_safety().is_err());
    }

    #[test]
    fn delayed_message_arrives_later_and_is_tagged() {
        #[derive(Debug, Clone)]
        struct Recorder {
            est: Value,
            delayed_seen: Vec<(u32, u32)>, // (arrival, sent)
        }
        impl RoundProcess for Recorder {
            type Msg = Value;
            fn send(&mut self, _round: Round) -> Value {
                self.est
            }
            fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
                for m in delivery.delayed() {
                    self.delayed_seen.push((round.get(), m.sent_round.get()));
                }
                if round.get() == 3 {
                    Step::Decide(self.est)
                } else {
                    Step::Continue
                }
            }
        }
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(2))
            .delay(Round::FIRST, ProcessId::new(1), ProcessId::new(0), Round::new(3))
            .build(5)
            .unwrap();
        let factory = |_i: usize, v: Value| Recorder { est: v, delayed_seen: vec![] };
        let outcome = run_schedule(&factory, &proposals(&[5, 3, 9]), &schedule, 5).unwrap();
        assert_eq!(outcome.rounds_executed, 3);
        // We cannot inspect the recorder after the run (owned by executor),
        // so assert via behaviour: the run terminates with decisions.
        assert!(outcome.all_correct_decided());
    }

    #[test]
    fn early_exit_when_all_alive_decided() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let outcome = run_schedule(&factory(1), &proposals(&[1, 2, 3]), &schedule, 100).unwrap();
        assert_eq!(outcome.rounds_executed, 1);
    }

    #[test]
    fn proposal_arity_reported_as_typed_error() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let err = run_schedule(&factory(1), &proposals(&[1, 2]), &schedule, 5).unwrap_err();
        assert_eq!(err, ExecutorError::ProposalCountMismatch { expected: 3, got: 2 });
        assert!(err.to_string().contains("one proposal per process"));
    }

    #[test]
    fn first_decision_is_recorded_once() {
        // MinAfter never decides twice, so emulate with a custom automaton
        // that (incorrectly) decides every round; the executor must keep the
        // first decision only.
        #[derive(Debug, Clone)]
        struct Eager;
        impl RoundProcess for Eager {
            type Msg = ();
            fn send(&mut self, _round: Round) {}
            fn deliver(&mut self, round: Round, _delivery: &Delivery<()>) -> Step {
                Step::Decide(Value::new(u64::from(round.get())))
            }
        }
        // Keep one process undecided forever to avoid early exit.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_after_send(ProcessId::new(2), Round::new(4))
            .build(5)
            .unwrap();
        let factory = |_i: usize, _v: Value| Eager;
        let outcome = run_schedule(&factory, &proposals(&[0, 0, 0]), &schedule, 3).unwrap();
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().round, Round::FIRST);
        assert_eq!(outcome.decision_of(ProcessId::new(0)).unwrap().value, Value::new(1));
    }

    #[test]
    fn forked_state_resumes_to_the_same_outcome() {
        // Snapshot after round 1, fork, finish both: identical outcomes,
        // and identical to the one-shot executor.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::FIRST, [ProcessId::new(0)])
            .build(5)
            .unwrap();
        let props = proposals(&[5, 3, 9]);
        let mut state = RunState::new(&factory(2), &props, 3).unwrap();
        state.step(&schedule);
        let mut fork = state.clone();
        state.run_to(&schedule, 5);
        fork.run_to(&schedule, 5);
        let reference = run_schedule(&factory(2), &props, &schedule, 5).unwrap();
        assert_eq!(state.outcome(&props, &schedule), reference);
        assert_eq!(fork.outcome(&props, &schedule), reference);
    }

    #[test]
    fn halted_latch_matches_early_exit() {
        let schedule = Schedule::failure_free(cfg(), ModelKind::Es);
        let props = proposals(&[1, 2, 3]);
        let mut state = RunState::new(&factory(1), &props, 3).unwrap();
        assert!(!state.halted());
        state.step(&schedule);
        assert!(state.halted());
        assert_eq!(state.rounds_executed(), 1);
        // run_to after halt is a no-op.
        state.run_to(&schedule, 100);
        assert_eq!(state.rounds_executed(), 1);
    }

    #[test]
    fn all_lose_round_materializes_no_copies_but_still_sends() {
        // p0 crashes in round 1 delivering to nobody: its `send` must still
        // run (state parity with the paper's model), but no peer mailbox
        // materializes a copy. Behaviour is asserted through the outcome:
        // nobody ever sees p0's minimum value 0.
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::FIRST)
            .build(5)
            .unwrap();
        let outcome = run_schedule(&factory(2), &proposals(&[0, 3, 9]), &schedule, 5).unwrap();
        for p in [1, 2] {
            assert_eq!(outcome.decision_of(ProcessId::new(p)).unwrap().value, Value::new(3));
        }
    }
}
