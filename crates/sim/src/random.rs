//! Seeded random adversaries.
//!
//! These generators produce *legal* schedules (they are validated before
//! being returned) with randomized crash patterns and, for ES runs, a
//! randomized asynchronous prefix with message delays causing false
//! suspicions. All generators are deterministic functions of their seed.

use std::collections::BTreeMap;

use indulgent_model::{ProcessId, Round, SystemConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::schedule::{MessageFate, ModelKind, Schedule};

/// Parameters for [`random_run`].
#[derive(Debug, Clone, Copy)]
pub struct RandomRunParams {
    /// Number of crashes to schedule (must be `<= t`).
    pub crashes: usize,
    /// Latest round in which a crash may be scheduled.
    pub crash_window: u32,
    /// The eventual-synchrony round `K`. `1` produces a synchronous run.
    pub sync_from: u32,
    /// Probability that a crash-round message copy is lost (vs delivered).
    pub crash_loss_probability: f64,
    /// Probability that a message copy in the asynchronous prefix is
    /// delayed, budget permitting.
    pub delay_probability: f64,
}

impl RandomRunParams {
    /// Parameters for a random *synchronous* run with `crashes` crashes in
    /// rounds `1..=crash_window`.
    #[must_use]
    pub fn synchronous(crashes: usize, crash_window: u32) -> Self {
        RandomRunParams {
            crashes,
            crash_window,
            sync_from: 1,
            crash_loss_probability: 0.5,
            delay_probability: 0.0,
        }
    }

    /// Parameters for a run that is asynchronous until round `sync_from`.
    #[must_use]
    pub fn eventually_synchronous(crashes: usize, crash_window: u32, sync_from: u32) -> Self {
        RandomRunParams {
            crashes,
            crash_window,
            sync_from,
            crash_loss_probability: 0.5,
            delay_probability: 0.35,
        }
    }
}

/// Generates a random legal schedule.
///
/// The schedule crashes `params.crashes` distinct processes at uniformly
/// random rounds within the crash window, losing each crash-round message
/// copy with `crash_loss_probability`. In ES runs with `sync_from > 1`,
/// messages in rounds before `K` are additionally delayed with
/// `delay_probability`, respecting the model's t-resilience constraint
/// (a receiver never loses more current messages than the quorum allows).
///
/// # Panics
///
/// Panics if `params.crashes > config.t()` or the produced schedule fails
/// validation (which would be a bug in this generator).
#[must_use]
pub fn random_run(
    config: SystemConfig,
    kind: ModelKind,
    params: RandomRunParams,
    horizon: u32,
    seed: u64,
) -> Schedule {
    assert!(params.crashes <= config.t(), "cannot schedule more than t crashes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = config.n();

    // Pick distinct crash victims and rounds.
    let mut ids: Vec<ProcessId> = config.processes().collect();
    ids.shuffle(&mut rng);
    let mut crash_rounds: Vec<Option<Round>> = vec![None; n];
    for victim in ids.iter().take(params.crashes) {
        let r = rng.gen_range(1..=params.crash_window.max(1));
        crash_rounds[victim.index()] = Some(Round::new(r));
    }

    let mut overrides: BTreeMap<(u32, usize, usize), MessageFate> = BTreeMap::new();

    let alive_entering =
        |crash_rounds: &Vec<Option<Round>>, p: ProcessId, k: u32| match crash_rounds[p.index()] {
            None => true,
            Some(r) => r.get() >= k,
        };

    // Crash-round fates.
    for sender in config.processes() {
        if let Some(cr) = crash_rounds[sender.index()] {
            for receiver in config.processes() {
                if receiver == sender || !alive_entering(&crash_rounds, receiver, cr.get()) {
                    continue;
                }
                if rng.gen_bool(params.crash_loss_probability) {
                    overrides
                        .insert((cr.get(), sender.index(), receiver.index()), MessageFate::Lose);
                }
            }
        }
    }

    // Asynchronous-prefix delays (rounds 1..sync_from).
    if kind == ModelKind::Es && params.sync_from > 1 && params.delay_probability > 0.0 {
        for k in 1..params.sync_from.min(horizon + 1) {
            for receiver in config.processes() {
                // Receivers that do not complete round k need no budget.
                let completes = match crash_rounds[receiver.index()] {
                    None => true,
                    Some(r) => r.get() > k,
                };
                if !completes {
                    continue;
                }
                // Count current deliveries so far (crash fates applied).
                let delivered: Vec<ProcessId> = config
                    .processes()
                    .filter(|&s| {
                        alive_entering(&crash_rounds, s, k)
                            && !overrides.contains_key(&(k, s.index(), receiver.index()))
                    })
                    .collect();
                let budget = delivered.len().saturating_sub(config.quorum());
                let mut delayed = 0usize;
                for s in delivered {
                    if s == receiver || delayed >= budget {
                        continue;
                    }
                    // A sender crashing in round k already has its fate
                    // decided by the crash plan.
                    if crash_rounds[s.index()].map(Round::get) == Some(k) {
                        continue;
                    }
                    if rng.gen_bool(params.delay_probability) {
                        let arrival = rng.gen_range(k + 1..=params.sync_from);
                        overrides.insert(
                            (k, s.index(), receiver.index()),
                            MessageFate::Delay(Round::new(arrival)),
                        );
                        delayed += 1;
                    }
                }
            }
        }
    }

    let schedule = Schedule::from_parts(
        config,
        kind,
        crash_rounds,
        overrides,
        Round::new(params.sync_from.max(1)),
    );
    schedule.validate(horizon).expect("random generator must produce legal schedules");
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(7, 3).unwrap()
    }

    #[test]
    fn synchronous_runs_are_synchronous_and_legal() {
        for seed in 0..50 {
            let s = random_run(cfg(), ModelKind::Es, RandomRunParams::synchronous(3, 5), 10, seed);
            assert!(s.is_synchronous());
            assert_eq!(s.crash_count(), 3);
            assert!(s.validate(10).is_ok());
        }
    }

    #[test]
    fn es_runs_validate_and_respect_k() {
        for seed in 0..50 {
            let s = random_run(
                cfg(),
                ModelKind::Es,
                RandomRunParams::eventually_synchronous(2, 6, 5),
                12,
                seed,
            );
            assert_eq!(s.sync_from(), Round::new(5));
            assert!(s.validate(12).is_ok());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_run(
            cfg(),
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(2, 4, 4),
            8,
            7,
        );
        let b = random_run(
            cfg(),
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(2, 4, 4),
            8,
            7,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn zero_crashes_allowed() {
        let s = random_run(cfg(), ModelKind::Es, RandomRunParams::synchronous(0, 1), 5, 3);
        assert_eq!(s.crash_count(), 0);
    }

    #[test]
    #[should_panic(expected = "more than t")]
    fn too_many_crashes_panics() {
        let _ = random_run(cfg(), ModelKind::Es, RandomRunParams::synchronous(4, 5), 10, 0);
    }

    #[test]
    fn scs_runs_have_no_delays() {
        for seed in 0..20 {
            let s = random_run(cfg(), ModelKind::Scs, RandomRunParams::synchronous(2, 3), 8, seed);
            assert!(s.overrides().all(|(_, _, _, f)| !matches!(f, MessageFate::Delay(_))));
            assert!(s.validate(8).is_ok());
        }
    }
}
