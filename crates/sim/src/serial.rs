//! Exhaustive enumeration of *serial* runs.
//!
//! The paper's lower-bound proof works with serial runs: synchronous runs in
//! which at most one process crashes per round. For small systems the space
//! of serial runs is finite and enumerable — a crash schedule chooses, for
//! each round, either no crash or a crashing process together with the
//! subset of (alive) receivers that still get its last message, all other
//! copies being lost.
//!
//! [`for_each_serial_schedule`] enumerates exactly that space; the checker
//! crate layers decision-round searches and valency computations on top.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use indulgent_model::{ProcessId, Round, SystemConfig};

use crate::schedule::{MessageFate, ModelKind, Schedule};

/// Enumerates every serial schedule of `config` over rounds `1..=horizon`,
/// invoking `visit` on each. Returning [`ControlFlow::Break`] from the
/// visitor aborts the enumeration.
///
/// A serial schedule crashes at most one process per round and at most
/// `config.t()` processes overall. The crashing process's round message is
/// delivered to an arbitrary subset of the processes alive in that round and
/// lost to the rest (an empty subset is a crash before sending; the full
/// subset is a crash just after sending). All other messages are delivered
/// in the round they are sent, so every enumerated schedule is a legal
/// *synchronous* run of both SCS and ES.
///
/// The number of schedules grows as `O((n · 2^(n-1) · horizon)^t)`. This
/// single-threaded enumerator handles `n ≤ 6, t ≤ 2` comfortably; for
/// larger spaces (up to `n = 7, t = 2`, roughly half a million schedules)
/// use the parallel sweep engine in [`parallel`](crate::parallel), which
/// partitions the same space into independent work units
/// ([`batch`](crate::batch)) and fans them out over a worker pool while
/// preserving this enumerator's visit semantics. When every visited
/// schedule is also *executed*, prefer the incremental engine in
/// [`incremental`](crate::incremental): it fuses this enumeration with
/// execution, running each shared schedule prefix once instead of once
/// per schedule.
pub fn for_each_serial_schedule<F>(
    config: SystemConfig,
    kind: ModelKind,
    horizon: u32,
    mut visit: F,
) -> ControlFlow<()>
where
    F: FnMut(&Schedule) -> ControlFlow<()>,
{
    let mut crash_rounds: Vec<Option<Round>> = vec![None; config.n()];
    let mut overrides: BTreeMap<(u32, usize, usize), MessageFate> = BTreeMap::new();
    recurse(
        config,
        kind,
        Round::FIRST,
        horizon,
        1,
        0,
        &mut crash_rounds,
        &mut overrides,
        &mut visit,
    )
}

/// Enumerates every serial extension of `prefix` whose additional crashes
/// happen in rounds `from_round..=horizon`, invoking `visit` on each.
///
/// `prefix` must itself be a serial schedule with crashes confined to
/// rounds `< from_round`; the enumeration preserves its crashes, message
/// fates and synchrony round `K` and adds at most one crash per round
/// beyond, up to the resilience bound. This is the workhorse of the checker's valency computations: a
/// *partial run* in the paper's sense is `(proposals, prefix, from_round)`,
/// and its extensions are exactly what this function enumerates.
///
/// # Panics
///
/// Panics if `prefix` schedules a crash at or after `from_round` (such a
/// crash would conflict with the enumeration's choices).
pub fn for_each_serial_extension<F>(
    prefix: &Schedule,
    from_round: u32,
    horizon: u32,
    mut visit: F,
) -> ControlFlow<()>
where
    F: FnMut(&Schedule) -> ControlFlow<()>,
{
    let config = prefix.config();
    let mut crash_rounds: Vec<Option<Round>> =
        config.processes().map(|p| prefix.crash_round(p)).collect();
    assert!(
        crash_rounds.iter().flatten().all(|r| r.get() < from_round),
        "prefix crashes must be confined to rounds before the extension"
    );
    let mut overrides: BTreeMap<(u32, usize, usize), MessageFate> =
        prefix.overrides().map(|(r, s, d, f)| ((r.get(), s.index(), d.index()), f)).collect();
    let crashes = crash_rounds.iter().flatten().count();
    recurse(
        config,
        prefix.kind(),
        prefix.sync_from(),
        horizon,
        from_round,
        crashes,
        &mut crash_rounds,
        &mut overrides,
        &mut visit,
    )
}

/// Counts the serial schedules of `config` over rounds `1..=horizon`.
#[must_use]
pub fn count_serial_schedules(config: SystemConfig, horizon: u32) -> u64 {
    let mut count = 0u64;
    let _ = for_each_serial_schedule(config, ModelKind::Es, horizon, |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    count
}

#[allow(clippy::too_many_arguments)]
fn recurse<F>(
    config: SystemConfig,
    kind: ModelKind,
    sync_from: Round,
    horizon: u32,
    round: u32,
    crashes: usize,
    crash_rounds: &mut Vec<Option<Round>>,
    overrides: &mut BTreeMap<(u32, usize, usize), MessageFate>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Schedule) -> ControlFlow<()>,
{
    if round > horizon {
        let schedule =
            Schedule::from_parts(config, kind, crash_rounds.clone(), overrides.clone(), sync_from);
        return visit(&schedule);
    }

    // Option 1: no crash this round.
    recurse(config, kind, sync_from, horizon, round + 1, crashes, crash_rounds, overrides, visit)?;

    if crashes >= config.t() {
        return ControlFlow::Continue(());
    }

    // Option 2: crash one alive process, choosing the receiver subset that
    // still gets its message among the processes alive entering this round.
    let alive: Vec<ProcessId> = config
        .processes()
        .filter(|p| match crash_rounds[p.index()] {
            None => true,
            Some(r) => r.get() >= round,
        })
        .collect();
    for &victim in &alive {
        let receivers: Vec<ProcessId> = alive.iter().copied().filter(|&q| q != victim).collect();
        let m = receivers.len();
        for keep_mask in 0u32..(1 << m) {
            crash_rounds[victim.index()] = Some(Round::new(round));
            for (bit, &q) in receivers.iter().enumerate() {
                if keep_mask & (1 << bit) == 0 {
                    overrides.insert((round, victim.index(), q.index()), MessageFate::Lose);
                }
            }
            recurse(
                config,
                kind,
                sync_from,
                horizon,
                round + 1,
                crashes + 1,
                crash_rounds,
                overrides,
                visit,
            )?;
            // Undo.
            crash_rounds[victim.index()] = None;
            for &q in &receivers {
                overrides.remove(&(round, victim.index(), q.index()));
            }
        }
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_closed_form_for_one_crash() {
        // n=3, t=1, horizon=2: either no crash (1), or one crash in one of
        // 2 rounds. Round 1: 3 victims x 2^2 subsets = 12. Round 2 likewise
        // 12. Total 25.
        let cfg = SystemConfig::majority(3, 1).unwrap();
        assert_eq!(count_serial_schedules(cfg, 2), 25);
    }

    #[test]
    fn all_schedules_are_valid_synchronous_runs() {
        let cfg = SystemConfig::majority(4, 1).unwrap();
        let mut total = 0;
        let _ = for_each_serial_schedule(cfg, ModelKind::Es, 3, |s| {
            assert!(s.validate(3).is_ok(), "serial schedule must be legal: {s:?}");
            assert!(s.is_synchronous());
            assert!(s.crash_count() <= 1);
            total += 1;
            ControlFlow::Continue(())
        });
        assert!(total > 0);
    }

    #[test]
    fn at_most_one_crash_per_round() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        let _ = for_each_serial_schedule(cfg, ModelKind::Es, 3, |s| {
            for k in 1..=3u32 {
                let crashes_in_k =
                    cfg.processes().filter(|&p| s.crash_round(p) == Some(Round::new(k))).count();
                assert!(crashes_in_k <= 1);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn break_aborts_enumeration() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        let mut seen = 0;
        let flow = for_each_serial_schedule(cfg, ModelKind::Es, 4, |_| {
            seen += 1;
            if seen == 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, 10);
    }

    #[test]
    fn extensions_preserve_prefix() {
        use crate::builder::ScheduleBuilder;
        let cfg = SystemConfig::majority(4, 1).unwrap();
        // Prefix: p0 crashes in round 1 losing everything. With t = 1 no
        // further crash is possible: all extensions equal the prefix runs.
        let prefix = ScheduleBuilder::new(cfg, ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::FIRST)
            .build(3)
            .unwrap();
        let mut count = 0;
        let _ = for_each_serial_extension(&prefix, 2, 3, |s| {
            assert_eq!(s.crash_round(ProcessId::new(0)), Some(Round::FIRST));
            assert_eq!(s.crash_count(), 1);
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn extensions_add_serial_crashes() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        let prefix = Schedule::failure_free(cfg, ModelKind::Es);
        let mut max_crashes = 0;
        let mut count = 0u64;
        let _ = for_each_serial_extension(&prefix, 2, 3, |s| {
            assert!(s.validate(3).is_ok());
            assert!(s.crash_round(ProcessId::new(0)).is_none_or(|r| r.get() >= 2));
            max_crashes = max_crashes.max(s.crash_count());
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(max_crashes, 2);
        // Rounds 2 and 3, each optionally one crash: 1 + 80 + 80 + 80*4*8.
        assert_eq!(count, 1 + 80 + 80 + 80 * 32);
    }

    #[test]
    #[should_panic(expected = "confined to rounds before")]
    fn extension_rejects_conflicting_prefix() {
        use crate::builder::ScheduleBuilder;
        let cfg = SystemConfig::majority(4, 1).unwrap();
        let prefix = ScheduleBuilder::new(cfg, ModelKind::Es)
            .crash_after_send(ProcessId::new(0), Round::new(3))
            .build(4)
            .unwrap();
        let _ = for_each_serial_extension(&prefix, 2, 4, |_| ControlFlow::Continue(()));
    }

    #[test]
    fn scs_schedules_also_valid() {
        let cfg = SystemConfig::synchronous(3, 1).unwrap();
        let _ = for_each_serial_schedule(cfg, ModelKind::Scs, 2, |s| {
            assert!(s.validate(2).is_ok());
            ControlFlow::Continue(())
        });
    }
}
