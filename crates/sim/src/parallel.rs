//! The parallel batch-sweep engine.
//!
//! Exhaustive serial-run sweeps are embarrassingly parallel: the schedule
//! space partitions into independent work units by first crash
//! ([`batch`](crate::batch)), each unit can be swept without coordination,
//! and per-unit partial results merge associatively. This module provides
//! the worker pool that exploits that structure:
//!
//! * [`SweepBackend`] selects serial or parallel execution (and the thread
//!   count); [`SweepBackend::from_env`] reads `INDULGENT_SWEEP_BACKEND` so
//!   test suites and CI can force the parallel pool without touching call
//!   sites.
//! * [`sweep_extensions`] / [`sweep_schedules`] fold a visitor over a
//!   schedule space: work units travel over a crossbeam channel to a pool
//!   of scoped worker threads, each worker folds its units locally with
//!   early-abort propagation, and the per-unit partial accumulators are
//!   merged **in unit order** — which equals serial visit order — so the
//!   result is bit-identical regardless of thread count.
//!
//! These folds visit *schedules*; when each schedule is also executed,
//! the incremental engine ([`incremental`](crate::incremental)) runs on
//! the same pool but shares prefix execution across the tree —
//! `sweep_runs` there supersedes "`sweep_schedules` + `run_schedule` per
//! schedule" for exhaustive run sweeps. [`pooled_map_indexed`] exposes
//! the pool for structureless index/seed fan-outs.
//!
//! The engine counters ([`stats`](crate::stats)) are process-wide relaxed
//! atomics, so a pooled sweep's workers aggregate into the same tallies a
//! serial sweep writes — `rounds_stepped`, fast-path hits, forks and
//! clone counts are totals across every worker thread.
//!
//! # Determinism
//!
//! For a sweep that completes without error, the merged accumulator equals
//! the serial fold exactly, for any thread count, provided `merge` is
//! associative and agrees with `step` (for every pair of sub-sequences `a`
//! then `b` of the visit order, folding `a ++ b` equals
//! `merge(fold(a), fold(b))`). All the folds in this workspace (counts,
//! histograms, min/max with first-witness tie-breaking on the left) have
//! this property. When `step` fails, every backend reports an error
//! produced by `step` on some schedule; the parallel pool aborts
//! outstanding work early, so *which* failing schedule is reported may
//! differ from the serial backend's (it is the first failure within the
//! lowest-indexed failing unit among those processed).

use std::num::NonZeroUsize;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::channel::unbounded;
use crossbeam::thread as cb_thread;

use indulgent_model::SystemConfig;

use crate::batch::{extension_work_units, WorkUnit};
use crate::schedule::{ModelKind, Schedule};

/// Environment variable consulted by [`SweepBackend::from_env`]:
/// `serial` (default), `parallel` (one worker per available core), or
/// `parallel:N` (exactly `N` workers).
pub const SWEEP_BACKEND_ENV: &str = "INDULGENT_SWEEP_BACKEND";

/// Execution strategy for exhaustive schedule sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepBackend {
    /// Single-threaded, in-order sweep (the reference semantics and the
    /// default).
    #[default]
    Serial,
    /// Fan the work units out over this many pooled worker threads.
    Parallel(NonZeroUsize),
}

impl SweepBackend {
    /// A parallel backend with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn parallel(threads: usize) -> Self {
        SweepBackend::Parallel(NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1"))
    }

    /// Reads the backend from [`SWEEP_BACKEND_ENV`].
    ///
    /// Unset, empty or `serial` selects [`SweepBackend::Serial`];
    /// `parallel` selects one worker per available core; `parallel:N`
    /// selects exactly `N` workers. Anything unparseable falls back to
    /// serial (sweeps must never fail because of an environment typo).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(SWEEP_BACKEND_ENV) {
            Ok(value) => match value.trim() {
                "" | "serial" => SweepBackend::Serial,
                "parallel" => SweepBackend::parallel(
                    std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
                ),
                other => match other.strip_prefix("parallel:").and_then(|n| n.parse().ok()) {
                    Some(threads) => SweepBackend::parallel(threads),
                    None => SweepBackend::Serial,
                },
            },
            Err(_) => SweepBackend::Serial,
        }
    }

    /// The number of worker threads this backend uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        match self {
            SweepBackend::Serial => 1,
            SweepBackend::Parallel(n) => n.get(),
        }
    }
}

/// What a worker reports for one work item.
pub(crate) enum UnitResult<Acc, E> {
    /// The item was swept completely.
    Complete(Acc),
    /// `step` failed on a schedule in this item (the first one, in visit
    /// order).
    Failed(E),
    /// The sweep was aborted mid-item (another worker failed); the partial
    /// accumulator is discarded.
    Aborted,
}

/// The shared worker pool behind every parallel fan-out: distributes
/// `items` over `threads` scoped workers, processes each with
/// `sweep_item` (which should poll `abort` and report
/// [`UnitResult::Aborted`] when it fires), and merges completed
/// accumulators **in item order** — the property that makes parallel
/// folds bit-identical to serial ones. The replay sweeps
/// ([`sweep_extensions`]), the incremental fork-on-branch sweeps
/// ([`incremental`](crate::incremental)) and the seeded index maps
/// ([`pooled_map_indexed`]) all run on this pool.
///
/// A panicking `sweep_item` sets the abort flag (stopping the other
/// workers) and the panic is resumed after the scope joins.
pub(crate) fn pooled_fold<T, Acc, E, U, I, M>(
    items: &[T],
    threads: NonZeroUsize,
    sweep_item: &U,
    init: &I,
    merge: M,
) -> Result<Acc, E>
where
    T: Sync,
    Acc: Send,
    E: Send,
    U: Fn(&T, &AtomicBool) -> UnitResult<Acc, E> + Sync,
    I: Fn() -> Acc,
    M: Fn(Acc, Acc) -> Acc,
{
    let workers = threads.get().min(items.len()).max(1);
    let abort = AtomicBool::new(false);
    let (work_tx, work_rx) = unbounded::<usize>();
    for idx in 0..items.len() {
        work_tx.send(idx).expect("work receiver alive");
    }
    drop(work_tx);
    let (result_tx, result_rx) = unbounded::<(usize, UnitResult<Acc, E>)>();

    let pool = cb_thread::scope(|scope| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let (items, abort) = (&items, &abort);
            scope.spawn(move |_| {
                while let Ok(idx) = work_rx.recv() {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let outcome = {
                        let _panic_guard = AbortOnPanic(abort);
                        sweep_item(&items[idx], abort)
                    };
                    let failed = matches!(outcome, UnitResult::Failed(_));
                    if failed {
                        abort.store(true, Ordering::Relaxed);
                    }
                    let _ = result_tx.send((idx, outcome));
                    if failed {
                        break;
                    }
                }
            });
        }
    });
    if let Err(panic) = pool {
        std::panic::resume_unwind(panic);
    }
    drop(result_tx);

    let mut partials: Vec<(usize, UnitResult<Acc, E>)> = result_rx.iter().collect();
    partials.sort_by_key(|(idx, _)| *idx);
    let mut merged: Option<Acc> = None;
    let mut first_failure: Option<E> = None;
    for (_, outcome) in partials {
        match outcome {
            UnitResult::Complete(acc) => {
                merged = Some(match merged.take() {
                    None => acc,
                    Some(m) => merge(m, acc),
                });
            }
            UnitResult::Failed(e) => {
                first_failure.get_or_insert(e);
            }
            UnitResult::Aborted => {}
        }
    }
    match first_failure {
        Some(e) => Err(e),
        None => Ok(merged.unwrap_or_else(init)),
    }
}

/// Folds `step` over every serial extension of `prefix` (additional
/// crashes in `from_round..=horizon`), using `backend`.
///
/// Semantics match folding [`for_each_serial_extension`] serially:
/// per-unit accumulators start from `init()`, `step` folds each schedule
/// in visit order, and `merge` combines unit accumulators in serial visit
/// order. See the module docs for the determinism contract.
///
/// # Errors
///
/// Returns the error of a failing `step`; the parallel backend stops
/// claiming and sweeping work as soon as any worker fails.
///
/// # Panics
///
/// Panics (resuming the worker's panic) if `step` panics on any schedule.
///
/// [`for_each_serial_extension`]: crate::for_each_serial_extension
pub fn sweep_extensions<Acc, E, I, S, M>(
    prefix: &Schedule,
    from_round: u32,
    horizon: u32,
    backend: SweepBackend,
    init: I,
    step: S,
    merge: M,
) -> Result<Acc, E>
where
    Acc: Send,
    E: Send,
    I: Fn() -> Acc + Sync,
    S: Fn(&mut Acc, &Schedule) -> Result<(), E> + Sync,
    M: Fn(Acc, Acc) -> Acc,
{
    match backend {
        SweepBackend::Serial => {
            let mut acc = init();
            let mut failure = None;
            let _ =
                crate::serial::for_each_serial_extension(
                    prefix,
                    from_round,
                    horizon,
                    |s| match step(&mut acc, s) {
                        Ok(()) => ControlFlow::Continue(()),
                        Err(e) => {
                            failure = Some(e);
                            ControlFlow::Break(())
                        }
                    },
                );
            match failure {
                Some(e) => Err(e),
                None => Ok(acc),
            }
        }
        SweepBackend::Parallel(threads) => {
            let units = extension_work_units(prefix, from_round, horizon);
            pooled_fold(
                &units,
                threads,
                &|unit, abort| sweep_one_unit(unit, abort, &init, &step),
                &init,
                merge,
            )
        }
    }
}

/// Folds `step` over every serial schedule of `config` (crashes in rounds
/// `1..=horizon`), using `backend`.
///
/// Convenience wrapper over [`sweep_extensions`] with a failure-free
/// prefix; semantics match folding
/// [`for_each_serial_schedule`](crate::for_each_serial_schedule) serially.
///
/// # Errors
///
/// Returns the error of a failing `step` (see [`sweep_extensions`]).
pub fn sweep_schedules<Acc, E, I, S, M>(
    config: SystemConfig,
    kind: ModelKind,
    horizon: u32,
    backend: SweepBackend,
    init: I,
    step: S,
    merge: M,
) -> Result<Acc, E>
where
    Acc: Send,
    E: Send,
    I: Fn() -> Acc + Sync,
    S: Fn(&mut Acc, &Schedule) -> Result<(), E> + Sync,
    M: Fn(Acc, Acc) -> Acc,
{
    let prefix = Schedule::failure_free(config, kind);
    sweep_extensions(&prefix, 1, horizon, backend, init, step, merge)
}

/// Counts the serial schedules of `config` over rounds `1..=horizon` with
/// the chosen backend (the parallel counterpart of
/// [`count_serial_schedules`](crate::count_serial_schedules)).
#[must_use]
pub fn sweep_count(
    config: SystemConfig,
    kind: ModelKind,
    horizon: u32,
    backend: SweepBackend,
) -> u64 {
    let counted: Result<u64, std::convert::Infallible> = sweep_schedules(
        config,
        kind,
        horizon,
        backend,
        || 0u64,
        |acc, _| {
            *acc += 1;
            Ok(())
        },
        |a, b| a + b,
    );
    counted.expect("counting never fails")
}

/// Maps `f` over the index range `0..count` on `backend`'s worker pool,
/// returning the results **in index order** regardless of thread count.
///
/// This is the engine's escape hatch for workloads without serial-tree
/// structure to share — the seeded random-adversary experiments
/// (`exp_early_decision`, `exp_eventual_decision`, `exp_asynchrony` and
/// friends) map independent seeds through it, so their `--threads N` flag
/// rides the same [`SweepBackend`] as the exhaustive sweeps. Each index is
/// computed exactly once; determinism is the caller's business (seeded
/// computations are).
///
/// # Panics
///
/// Panics (resuming the worker's panic) if `f` panics on any index.
#[must_use]
pub fn pooled_map_indexed<T, F>(count: u64, backend: SweepBackend, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    match backend {
        SweepBackend::Serial => (0..count).map(f).collect(),
        SweepBackend::Parallel(threads) => {
            let indices: Vec<u64> = (0..count).collect();
            let mapped: Result<Vec<T>, std::convert::Infallible> = pooled_fold(
                &indices,
                threads,
                &|&idx, _abort| UnitResult::Complete(vec![f(idx)]),
                &Vec::new,
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            match mapped {
                Ok(values) => values,
                Err(never) => match never {},
            }
        }
    }
}

/// Sets the abort flag if dropped while panicking, so a panicking `step`
/// stops the other workers just like a failing one (the panic itself is
/// re-raised by the pool after the scope joins).
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

fn sweep_one_unit<Acc, E, I, S>(
    unit: &WorkUnit,
    abort: &AtomicBool,
    init: &I,
    step: &S,
) -> UnitResult<Acc, E>
where
    I: Fn() -> Acc,
    S: Fn(&mut Acc, &Schedule) -> Result<(), E>,
{
    let mut acc = init();
    let mut failure = None;
    let mut aborted = false;
    let _ = unit.for_each(|schedule| {
        if abort.load(Ordering::Relaxed) {
            aborted = true;
            return ControlFlow::Break(());
        }
        match step(&mut acc, schedule) {
            Ok(()) => ControlFlow::Continue(()),
            Err(e) => {
                failure = Some(e);
                ControlFlow::Break(())
            }
        }
    });
    match (failure, aborted) {
        (Some(e), _) => UnitResult::Failed(e),
        (None, true) => UnitResult::Aborted,
        (None, false) => UnitResult::Complete(acc),
    }
}

#[cfg(test)]
mod tests {
    use std::convert::Infallible;

    use indulgent_model::Round;

    use super::*;
    use crate::serial::count_serial_schedules;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    #[test]
    fn parallel_count_matches_serial_for_every_thread_count() {
        let expected = count_serial_schedules(cfg(), 3);
        for threads in 1..=5 {
            let counted = sweep_count(cfg(), ModelKind::Es, 3, SweepBackend::parallel(threads));
            assert_eq!(counted, expected, "thread count {threads}");
        }
        assert_eq!(sweep_count(cfg(), ModelKind::Es, 3, SweepBackend::Serial), expected);
    }

    #[test]
    fn fingerprint_fold_is_identical_across_backends() {
        // An order-sensitive fold (hash chaining) proves the parallel merge
        // reproduces the serial visit order exactly, not just the multiset.
        let fold = |backend: SweepBackend| -> Vec<u64> {
            let folded: Result<Vec<u64>, Infallible> = sweep_schedules(
                cfg(),
                ModelKind::Es,
                3,
                backend,
                Vec::new,
                |acc, s| {
                    acc.push(s.fingerprint());
                    Ok(())
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            folded.expect("infallible")
        };
        let serial = fold(SweepBackend::Serial);
        assert_eq!(serial, fold(SweepBackend::parallel(2)));
        assert_eq!(serial, fold(SweepBackend::parallel(4)));
    }

    #[test]
    fn failing_step_aborts_and_reports() {
        let result: Result<u64, String> = sweep_schedules(
            cfg(),
            ModelKind::Es,
            3,
            SweepBackend::parallel(4),
            || 0u64,
            |acc, s| {
                *acc += 1;
                if s.crash_count() == 2 {
                    Err(format!("two crashes: {:?}", s.faulty()))
                } else {
                    Ok(())
                }
            },
            |a, b| a + b,
        );
        assert!(result.is_err());
        let serial_result: Result<u64, String> = sweep_schedules(
            cfg(),
            ModelKind::Es,
            3,
            SweepBackend::Serial,
            || 0u64,
            |acc, s| {
                *acc += 1;
                if s.crash_count() == 2 {
                    Err("two crashes".into())
                } else {
                    Ok(())
                }
            },
            |a, b| a + b,
        );
        assert!(serial_result.is_err());
    }

    #[test]
    fn extension_sweep_respects_the_prefix() {
        use crate::builder::ScheduleBuilder;
        use indulgent_model::ProcessId;
        let prefix = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::FIRST)
            .build(3)
            .unwrap();
        let counted: Result<u64, Infallible> = sweep_extensions(
            &prefix,
            2,
            3,
            SweepBackend::parallel(3),
            || 0u64,
            |acc, s| {
                assert_eq!(s.crash_round(ProcessId::new(0)), Some(Round::FIRST));
                *acc += 1;
                Ok(())
            },
            |a, b| a + b,
        );
        // Rounds 2 and 3: bare prefix + one more crash among 4 alive with
        // 2^3 receiver subsets each round.
        assert_eq!(counted.expect("infallible"), 1 + 2 * 4 * 8);
    }

    #[test]
    fn backend_from_env_parses_the_documented_forms() {
        // The process environment is global and libtest runs tests
        // concurrently: serialize every env-mutating test on one lock and
        // restore the prior value (CI forces the variable for whole jobs).
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().expect("env lock poisoned");
        let prior = std::env::var(SWEEP_BACKEND_ENV).ok();

        std::env::set_var(SWEEP_BACKEND_ENV, "parallel:3");
        assert_eq!(SweepBackend::from_env(), SweepBackend::parallel(3));
        std::env::set_var(SWEEP_BACKEND_ENV, "serial");
        assert_eq!(SweepBackend::from_env(), SweepBackend::Serial);
        std::env::set_var(SWEEP_BACKEND_ENV, "nonsense");
        assert_eq!(SweepBackend::from_env(), SweepBackend::Serial);
        std::env::set_var(SWEEP_BACKEND_ENV, "parallel");
        assert!(matches!(SweepBackend::from_env(), SweepBackend::Parallel(_)));
        std::env::remove_var(SWEEP_BACKEND_ENV);
        assert_eq!(SweepBackend::from_env(), SweepBackend::Serial);

        match prior {
            Some(value) => std::env::set_var(SWEEP_BACKEND_ENV, value),
            None => std::env::remove_var(SWEEP_BACKEND_ENV),
        }
    }

    #[test]
    fn pooled_map_returns_in_index_order_for_every_backend() {
        let expected: Vec<u64> = (0..100).map(|i| i * i).collect();
        for backend in [SweepBackend::Serial, SweepBackend::parallel(3), SweepBackend::parallel(7)]
        {
            assert_eq!(pooled_map_indexed(100, backend, |i| i * i), expected, "{backend:?}");
        }
        assert!(pooled_map_indexed(0, SweepBackend::parallel(2), |i| i).is_empty());
    }

    #[test]
    fn panicking_step_propagates() {
        let result = std::panic::catch_unwind(|| {
            let _: Result<u64, Infallible> = sweep_schedules(
                cfg(),
                ModelKind::Es,
                2,
                SweepBackend::parallel(2),
                || 0u64,
                |_, s| {
                    assert!(s.crash_count() < 2, "boom");
                    Ok(())
                },
                |a, b| a + b,
            );
        });
        assert!(result.is_err());
    }
}
