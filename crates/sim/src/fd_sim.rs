//! The paper's Sect. 4 construction: simulating a failure detector from ES.
//!
//! "To simulate a round-based model enriched with ◇P or ◇S from ES, we give
//! a possible output of the failure detector for every run in ES: … on
//! receiving messages of round k, the simulated failure detector output is
//! changed to the set of processes from which no message was received in
//! round k."
//!
//! [`ScheduleDetector`] computes that output directly from a [`Schedule`]
//! — the set of senders whose round-`k` message does not reach the observer
//! in round `k` — so it can be handed to the `A_◇S` variant (or any other
//! detector-driven algorithm) and *exactly* reproduces the suspicions the
//! derived-suspicion variant would see under the same schedule. The tests
//! verify the paper's claim that this output satisfies the ◇P properties:
//! strong completeness, and eventual strong accuracy from the synchrony
//! round on.

use indulgent_fd::FailureDetector;
use indulgent_model::{ProcessId, ProcessSet, Round};

use crate::schedule::{MessageFate, Schedule};

/// A failure detector whose output is derived from an adversary schedule
/// per the paper's Sect. 4 (suspect exactly the processes whose
/// current-round message does not arrive in the current round).
#[derive(Debug, Clone)]
pub struct ScheduleDetector {
    schedule: Schedule,
}

impl ScheduleDetector {
    /// Builds the detector for `schedule`.
    #[must_use]
    pub fn new(schedule: Schedule) -> Self {
        ScheduleDetector { schedule }
    }

    /// The underlying schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

impl FailureDetector for ScheduleDetector {
    fn suspects(&mut self, observer: ProcessId, round: Round) -> ProcessSet {
        let config = self.schedule.config();
        let mut out = ProcessSet::empty();
        for sender in config.processes() {
            if sender == observer {
                continue;
            }
            let absent = !self.schedule.alive_entering(sender, round)
                || self.schedule.fate(round, sender, observer) != MessageFate::Deliver;
            if absent {
                out.insert(sender);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::SystemConfig;

    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::schedule::ModelKind;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    #[test]
    fn failure_free_schedule_never_suspects() {
        let mut d = ScheduleDetector::new(Schedule::failure_free(cfg(), ModelKind::Es));
        for k in 1..=10 {
            for p in cfg().processes() {
                assert!(d.suspects(p, Round::new(k)).is_empty());
            }
        }
    }

    #[test]
    fn strong_completeness_holds() {
        // A crashed process is suspected by every alive observer from the
        // round after its crash (and possibly in the crash round itself,
        // depending on message fates).
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_after_send(ProcessId::new(1), Round::new(2))
            .build(10)
            .unwrap();
        let mut d = ScheduleDetector::new(schedule);
        // Crash round: message was delivered, so no suspicion yet.
        assert!(!d.suspects(ProcessId::new(0), Round::new(2)).contains(ProcessId::new(1)));
        // Every later round: permanently suspected.
        for k in 3..=10 {
            assert!(d.suspects(ProcessId::new(0), Round::new(k)).contains(ProcessId::new(1)));
        }
    }

    #[test]
    fn eventual_strong_accuracy_from_the_synchrony_round() {
        // Delays before K cause false suspicions; from K on, correct
        // processes are never suspected (the paper's ◇P argument).
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .sync_from(Round::new(4))
            .delay(Round::new(1), ProcessId::new(1), ProcessId::new(0), Round::new(4))
            .delay(Round::new(2), ProcessId::new(2), ProcessId::new(3), Round::new(4))
            .build(10)
            .unwrap();
        let mut d = ScheduleDetector::new(schedule);
        // False suspicion during the asynchronous prefix.
        assert!(d.suspects(ProcessId::new(0), Round::new(1)).contains(ProcessId::new(1)));
        assert!(d.suspects(ProcessId::new(3), Round::new(2)).contains(ProcessId::new(2)));
        // Nobody is faulty, so from K = 4 on the output is empty.
        for k in 4..=10 {
            for p in cfg().processes() {
                assert!(
                    d.suspects(p, Round::new(k)).is_empty(),
                    "false suspicion after the synchrony round ({p}, round {k})"
                );
            }
        }
    }

    #[test]
    fn detector_matches_derived_suspicion_behaviour() {
        use indulgent_consensus::{AtPlus2, RotatingCoordinator};
        use indulgent_model::Value;

        // A_◇S driven by the Sect. 4 simulated detector behaves exactly
        // like the derived-suspicion A_{t+2} under the same schedule: same
        // decisions, same rounds.
        let config = cfg();
        let schedule = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_delivering_only(ProcessId::new(1), Round::new(1), [ProcessId::new(0)])
            .build(30)
            .unwrap();
        let props: Vec<Value> = [6u64, 2, 8, 4, 7].map(Value::new).to_vec();

        let derived = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let a = crate::run_schedule(&derived, &props, &schedule, 30).unwrap();

        let sched2 = schedule.clone();
        let with_detector = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::with_detector(
                config,
                id,
                v,
                RotatingCoordinator::new(config, id),
                ScheduleDetector::new(sched2.clone()),
            )
        };
        let b = crate::run_schedule(&with_detector, &props, &schedule, 30).unwrap();
        assert_eq!(a.decisions, b.decisions);
    }

    /// Sweeps a whole serial-schedule batch through the parallel engine
    /// and checks the detector's ◇P properties in *every* schedule:
    /// strong completeness (a crashed process is permanently suspected
    /// from the round after its crash) and, since serial schedules are
    /// synchronous, strong accuracy (a suspicion implies the sender's
    /// message really did not arrive: it crashed by the current round).
    #[test]
    fn detector_properties_hold_over_a_swept_batch() {
        use crate::parallel::{sweep_schedules, SweepBackend};

        let config = SystemConfig::majority(5, 2).unwrap();
        let horizon = 3u32;
        let checked: Result<u64, String> = sweep_schedules(
            config,
            ModelKind::Es,
            horizon,
            SweepBackend::parallel(2),
            || 0u64,
            |count, schedule| {
                let mut d = ScheduleDetector::new(schedule.clone());
                for k in 1..=horizon + 2 {
                    let round = Round::new(k);
                    for observer in config.processes() {
                        if !schedule.completes(observer, round) {
                            continue;
                        }
                        let suspects = d.suspects(observer, round);
                        for target in config.processes() {
                            let crashed_by_now =
                                schedule.crash_round(target).is_some_and(|r| r < round);
                            if crashed_by_now && !suspects.contains(target) {
                                return Err(format!(
                                    "completeness: {observer} trusts crashed {target} at {round}"
                                ));
                            }
                            let crashed_ever = schedule.crash_round(target).is_some();
                            if suspects.contains(target) && !crashed_ever {
                                return Err(format!(
                                    "accuracy: {observer} suspects correct {target} at {round}"
                                ));
                            }
                        }
                    }
                }
                *count += 1;
                Ok(())
            },
            |a, b| a + b,
        );
        let swept = checked.expect("detector properties hold in every serial schedule");
        assert_eq!(swept, crate::serial::count_serial_schedules(config, horizon));
    }

    /// Eventual strong accuracy over a swept batch of *asynchronous*
    /// prefixes: extensions of a delayed prefix (K = 3) may produce false
    /// suspicions before K, but from K on every suspicion implies a crash.
    #[test]
    fn eventual_accuracy_holds_over_swept_extensions_of_a_delayed_prefix() {
        use crate::parallel::{sweep_extensions, SweepBackend};

        let config = SystemConfig::majority(5, 2).unwrap();
        let sync_from = Round::new(3);
        let horizon = 4u32;
        let prefix = ScheduleBuilder::new(config, ModelKind::Es)
            .sync_from(sync_from)
            .delay(Round::new(1), ProcessId::new(1), ProcessId::new(0), Round::new(3))
            .delay(Round::new(2), ProcessId::new(2), ProcessId::new(3), Round::new(4))
            .build(horizon)
            .unwrap();

        let checked: Result<u64, String> = sweep_extensions(
            &prefix,
            sync_from.get(),
            horizon,
            SweepBackend::parallel(2),
            || 0u64,
            |count, schedule| {
                assert_eq!(schedule.sync_from(), sync_from, "extensions must preserve K");
                let mut d = ScheduleDetector::new(schedule.clone());
                // False suspicion during the asynchronous prefix is real.
                if !d.suspects(ProcessId::new(0), Round::new(1)).contains(ProcessId::new(1)) {
                    return Err("expected a false suspicion before K".into());
                }
                // From K on: suspicion implies the target crashed.
                for k in sync_from.get()..=horizon + 2 {
                    let round = Round::new(k);
                    for observer in config.processes() {
                        if !schedule.completes(observer, round) {
                            continue;
                        }
                        for target in d.suspects(observer, round).iter() {
                            if schedule.crash_round(target).is_none() {
                                return Err(format!(
                                    "eventual accuracy: {observer} suspects correct {target} \
                                     at {round} (K = {sync_from})"
                                ));
                            }
                        }
                    }
                }
                *count += 1;
                Ok(())
            },
            |a, b| a + b,
        );
        let swept = checked.expect("eventual accuracy holds in every extension");
        // Bare prefix + one or two crashes in rounds 3..=4 among 5 alive:
        // the batch is non-trivial.
        assert!(swept > 100, "swept only {swept} extensions");
    }

    #[test]
    fn never_suspects_the_observer_itself() {
        let schedule = ScheduleBuilder::new(cfg(), ModelKind::Es)
            .crash_before_send(ProcessId::new(0), Round::new(1))
            .build(10)
            .unwrap();
        let mut d = ScheduleDetector::new(schedule);
        for k in 1..=5 {
            for p in cfg().processes() {
                assert!(!d.suspects(p, Round::new(k)).contains(p));
            }
        }
    }
}
