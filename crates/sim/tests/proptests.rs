//! Property-based tests of the simulator: schedule legality, executor
//! determinism, enumeration invariants, and a differential reference for
//! the flat-ring message plumbing.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessFactory, ProcessId, Round, RoundProcess, RunOutcome,
    Step, SystemConfig, Value,
};
use indulgent_sim::{
    count_serial_schedules, for_each_serial_schedule, random_run, run_schedule, run_traced,
    sweep_count, work_units, MessageFate, ModelKind, RandomRunParams, Schedule, ScheduleBuilder,
    SweepBackend,
};
use proptest::prelude::*;

/// Deterministic flooding automaton used as a probe.
#[derive(Debug, Clone)]
struct Probe {
    est: Value,
    decide_at: u32,
    decided: bool,
}

impl RoundProcess for Probe {
    type Msg = Value;

    fn send(&mut self, _round: Round) -> Value {
        self.est
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
        for m in delivery.current() {
            self.est = self.est.min(m.msg);
        }
        if round.get() >= self.decide_at && !self.decided {
            self.decided = true;
            Step::Decide(self.est)
        } else {
            Step::Continue
        }
    }
}

fn probe_factory(decide_at: u32) -> impl Fn(usize, Value) -> Probe {
    move |_i, v| Probe { est: v, decide_at, decided: false }
}

/// Reference executor: the executor semantics spelled out with the
/// pre-optimization data structures — `BTreeMap` mailboxes keyed by
/// arrival round, a fresh `Delivery` per process-round, an explicit
/// (sent round, sender) sort, no fast path. The production engine
/// (flat ring mailboxes, pooled deliveries, shared-broadcast rounds)
/// must be outcome-identical to this on *every* schedule, delays and
/// ring wrap-arounds included.
fn reference_run<F>(
    factory: &F,
    proposals: &[Value],
    schedule: &Schedule,
    horizon: u32,
) -> RunOutcome
where
    F: ProcessFactory,
{
    type Mailbox<M> = BTreeMap<u32, Vec<DeliveredMsg<M>>>;
    let config = schedule.config();
    let n = config.n();
    let mut processes: Vec<F::Process> = (0..n).map(|i| factory.build(i, proposals[i])).collect();
    let mut decisions: Vec<Option<Decision>> = vec![None; n];
    let mut pending: Vec<Mailbox<<F::Process as RoundProcess>::Msg>> = vec![BTreeMap::new(); n];
    let mut rounds_executed = 0;
    for k in 1..=horizon {
        let round = Round::new(k);
        rounds_executed = k;
        for sender in config.processes() {
            if !schedule.alive_entering(sender, round) {
                continue;
            }
            let msg = processes[sender.index()].send(round);
            for receiver in config.processes() {
                if !schedule.alive_entering(receiver, round) {
                    continue;
                }
                let arrival = match schedule.fate(round, sender, receiver) {
                    MessageFate::Deliver => k,
                    MessageFate::Delay(a) => a.get(),
                    MessageFate::Lose => continue,
                };
                pending[receiver.index()].entry(arrival).or_default().push(DeliveredMsg {
                    sender,
                    sent_round: round,
                    msg: msg.clone(),
                });
            }
        }
        for receiver in config.processes() {
            if !schedule.completes(receiver, round) {
                continue;
            }
            let mut arrived = pending[receiver.index()].remove(&k).unwrap_or_default();
            arrived.sort_by_key(|m| (m.sent_round, m.sender));
            let delivery = Delivery::new(round, arrived);
            if let Step::Decide(value) = processes[receiver.index()].deliver(round, &delivery) {
                if decisions[receiver.index()].is_none() {
                    decisions[receiver.index()] =
                        Some(Decision { process: receiver, round, value });
                }
            }
        }
        let halted = config
            .processes()
            .filter(|&p| schedule.completes(p, round))
            .all(|p| decisions[p.index()].is_some());
        if halted {
            break;
        }
    }
    RunOutcome {
        proposals: proposals.to_vec(),
        decisions,
        crashed: schedule.faulty(),
        rounds_executed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every schedule the random generator produces is legal, with the
    /// requested crash count and synchrony round.
    #[test]
    fn random_runs_are_legal(
        seed in any::<u64>(),
        n in 3usize..10,
        crash_frac in 0usize..3,
        sync_from in 1u32..9,
    ) {
        let t = (n - 1) / 2;
        prop_assume!(t >= 1);
        let config = SystemConfig::majority(n, t).unwrap();
        let crashes = crash_frac.min(t);
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 5, sync_from),
            40,
            seed,
        );
        prop_assert!(schedule.validate(40).is_ok());
        prop_assert_eq!(schedule.crash_count(), crashes);
        prop_assert_eq!(schedule.sync_from(), Round::new(sync_from.max(1)));
    }

    /// The executor is a pure function of (factory, proposals, schedule):
    /// re-running produces identical outcomes, and the traced executor
    /// agrees with the plain one.
    #[test]
    fn executor_is_deterministic_and_trace_consistent(
        seed in any::<u64>(),
        props in proptest::collection::vec(0u64..30, 5),
    ) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let proposals: Vec<Value> = props.into_iter().map(Value::new).collect();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(2, 4, 4),
            40,
            seed,
        );
        let a = run_schedule(&probe_factory(6), &proposals, &schedule, 40).unwrap();
        let b = run_schedule(&probe_factory(6), &proposals, &schedule, 40).unwrap();
        prop_assert_eq!(&a, &b);
        let t = run_traced(&probe_factory(6), &proposals, &schedule, 40).unwrap();
        prop_assert_eq!(t.outcome(), &a);
    }

    /// In a synchronous failure-free run, a one-round flooding probe
    /// decides the global minimum — delivery is truly all-to-all.
    #[test]
    fn failure_free_flood_reaches_global_minimum(
        props in proptest::collection::vec(0u64..100, 4),
    ) {
        let config = SystemConfig::majority(4, 1).unwrap();
        let proposals: Vec<Value> = props.iter().copied().map(Value::new).collect();
        let schedule = indulgent_sim::Schedule::failure_free(config, ModelKind::Es);
        let outcome = run_schedule(&probe_factory(1), &proposals, &schedule, 5).unwrap();
        let min = proposals.iter().copied().min().unwrap();
        for d in outcome.decisions.iter().flatten() {
            prop_assert_eq!(d.value, min);
        }
    }

    /// Serial enumeration visits the closed-form number of schedules for
    /// t = 1, and every visited schedule is distinct.
    #[test]
    fn serial_enumeration_counts_match_closed_form(n in 3usize..6, horizon in 1u32..4) {
        let config = SystemConfig::majority(n, 1).unwrap();
        // t = 1: 1 crash-free + horizon rounds x n victims x 2^(n-1) fates.
        let expected = 1 + u64::from(horizon) * n as u64 * (1u64 << (n - 1));
        prop_assert_eq!(count_serial_schedules(config, horizon), expected);
        let mut seen = std::collections::HashSet::new();
        let _ = for_each_serial_schedule(config, ModelKind::Es, horizon, |s| {
            assert!(seen.insert(format!("{s:?}")), "duplicate schedule");
            ControlFlow::Continue(())
        });
    }

    /// The flat-ring engine is outcome-identical to the reference
    /// `BTreeMap`-mailbox executor on random eventually-synchronous
    /// schedules — crashes, losses and delayed arrivals included.
    #[test]
    fn ring_engine_matches_reference_on_delayed_schedules(
        seed in any::<u64>(),
        n in 3usize..8,
        crash_frac in 0usize..3,
        sync_from in 2u32..11,
        props in proptest::collection::vec(0u64..50, 8),
    ) {
        let t = (n - 1) / 2;
        prop_assume!(t >= 1);
        let config = SystemConfig::majority(n, t).unwrap();
        let proposals: Vec<Value> = props[..n].iter().copied().map(Value::new).collect();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crash_frac.min(t), 5, sync_from),
            40,
            seed,
        );
        let factory = probe_factory(sync_from + 2);
        let engine = run_schedule(&factory, &proposals, &schedule, 40).unwrap();
        let reference = reference_run(&factory, &proposals, &schedule, 40);
        prop_assert_eq!(engine, reference);
    }

    /// Long delay spans force the ring mailbox to grow and its head to
    /// lap the buffer repeatedly; arrivals across the wrap boundary must
    /// land exactly where the reference executor lands them.
    #[test]
    fn ring_engine_matches_reference_across_wrap_boundary(
        span in 2u32..12,
        target in 0usize..4,
        stride in 1usize..4,
        props in proptest::collection::vec(0u64..50, 4),
    ) {
        let config = SystemConfig::majority(4, 1).unwrap();
        let proposals: Vec<Value> = props.iter().copied().map(Value::new).collect();
        let mut builder =
            ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(14));
        // One delayed message per round 1..=12 toward `target`, arriving
        // `span` rounds later: the 1-slot ring grows once, then wraps
        // every lap while fresh delays keep landing ahead of the head.
        for k in 1..=12u32 {
            let sender = (target + 1 + (k as usize * stride) % 3) % 4;
            builder = builder.delay(
                Round::new(k),
                ProcessId::new(sender),
                ProcessId::new(target),
                Round::new(k + span),
            );
        }
        let schedule = builder.build(40).unwrap();
        let factory = probe_factory(30);
        let engine = run_schedule(&factory, &proposals, &schedule, 40).unwrap();
        let reference = reference_run(&factory, &proposals, &schedule, 40);
        prop_assert_eq!(engine, reference);
    }

    /// Schedules built via the fluent builder round-trip their crash
    /// plans, and t-resilience rejects over-delaying.
    #[test]
    fn builder_roundtrips_crashes(round in 1u32..6, victim in 0usize..5) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = ScheduleBuilder::new(config, ModelKind::Es)
            .crash_after_send(ProcessId::new(victim), Round::new(round))
            .build(10)
            .unwrap();
        prop_assert_eq!(schedule.crash_round(ProcessId::new(victim)), Some(Round::new(round)));
        prop_assert_eq!(schedule.crash_count(), 1);
        prop_assert!(schedule.is_synchronous());
    }

    /// Delaying more than t messages towards one receiver in one round is
    /// always rejected (t-resilience), no matter which senders.
    #[test]
    fn over_delaying_is_rejected(receiver in 0usize..5, seed in any::<u64>()) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let mut b = ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(4));
        let mut senders: Vec<usize> = (0..5).filter(|&s| s != receiver).collect();
        // Rotate deterministically by seed to vary which 3 senders delay.
        senders.rotate_left((seed % 4) as usize);
        for &s in senders.iter().take(3) {
            b = b.delay(Round::new(1), ProcessId::new(s), ProcessId::new(receiver), Round::new(3));
        }
        let err = b.build(10).unwrap_err();
        let is_resilience_error =
            matches!(err, indulgent_sim::ScheduleError::NotTResilient { .. });
        prop_assert!(is_resilience_error);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batch engine's work units partition the serial space: units are
    /// pairwise disjoint, and concatenating their enumerations yields the
    /// exact schedule sequence (count, content *and* order) that
    /// `for_each_serial_schedule` visits.
    #[test]
    fn work_units_partition_the_serial_space(
        n in 3usize..6,
        t_pick in 1usize..3,
        horizon in 1u32..4,
    ) {
        let t = t_pick.min((n - 1) / 2);
        prop_assume!(t >= 1);
        let config = SystemConfig::majority(n, t).unwrap();

        let mut serial_fps: Vec<u64> = Vec::new();
        let _ = for_each_serial_schedule(config, ModelKind::Es, horizon, |s| {
            serial_fps.push(s.fingerprint());
            ControlFlow::Continue(())
        });

        let mut unit_fps: Vec<u64> = Vec::new();
        let mut unit_sizes: Vec<u64> = Vec::new();
        for unit in work_units(config, ModelKind::Es, horizon) {
            let before = unit_fps.len();
            let _ = unit.for_each(|s| {
                unit_fps.push(s.fingerprint());
                ControlFlow::Continue(())
            });
            unit_sizes.push((unit_fps.len() - before) as u64);
        }

        // Same visit count and the same schedules in the same order.
        prop_assert_eq!(serial_fps.len() as u64, count_serial_schedules(config, horizon));
        prop_assert_eq!(&serial_fps, &unit_fps);
        // Disjoint: no schedule appears in two units (the serial enumerator
        // never repeats a schedule, and the sequences are equal, but check
        // the multiset has no duplicates explicitly).
        let distinct: std::collections::HashSet<u64> = unit_fps.iter().copied().collect();
        prop_assert_eq!(distinct.len(), unit_fps.len());
        // Every unit is non-empty.
        prop_assert!(unit_sizes.iter().all(|&c| c > 0));
    }

    /// The parallel sweep visits exactly as many schedules as the serial
    /// enumerator, for any thread count.
    #[test]
    fn parallel_sweep_count_matches_serial(
        n in 3usize..6,
        horizon in 1u32..4,
        threads in 1usize..5,
    ) {
        let t = (n - 1) / 2;
        prop_assume!(t >= 1);
        let config = SystemConfig::majority(n, t).unwrap();
        let expected = count_serial_schedules(config, horizon);
        prop_assert_eq!(
            sweep_count(config, ModelKind::Es, horizon, SweepBackend::parallel(threads)),
            expected
        );
        prop_assert_eq!(
            sweep_count(config, ModelKind::Es, horizon, SweepBackend::Serial),
            expected
        );
    }
}
