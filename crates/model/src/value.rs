//! Proposal and decision values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A consensus proposal/decision value.
///
/// The paper assumes the set of proposal values in a run is totally ordered
/// (algorithm assumption 4, Sect. 3): the `A_{t+2}` algorithm repeatedly
/// takes minima of estimate values, and the failure-free optimization decides
/// on "the minimum of all proposed values". A `u64` newtype provides that
/// order directly; a process can encode "value tagged with its index" by
/// packing the tag into the integer.
///
/// # Examples
///
/// ```
/// use indulgent_model::Value;
///
/// let v = Value::new(42);
/// assert_eq!(v.get(), 42);
/// assert!(Value::ZERO < Value::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Value(u64);

impl Value {
    /// The binary-consensus value `0`.
    pub const ZERO: Value = Value(0);
    /// The binary-consensus value `1`.
    pub const ONE: Value = Value(1);

    /// Creates a value.
    #[must_use]
    pub fn new(v: u64) -> Self {
        Value(v)
    }

    /// The underlying integer.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Creates the binary value for a boolean (`false → 0`, `true → 1`).
    #[must_use]
    pub fn binary(b: bool) -> Self {
        if b {
            Value::ONE
        } else {
            Value::ZERO
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value(v)
    }
}

impl From<Value> for u64 {
    fn from(v: Value) -> u64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(Value::new(3) < Value::new(10));
        assert_eq!(Value::ZERO, Value::new(0));
        assert_eq!(Value::ONE, Value::new(1));
    }

    #[test]
    fn binary_helper() {
        assert_eq!(Value::binary(false), Value::ZERO);
        assert_eq!(Value::binary(true), Value::ONE);
    }

    #[test]
    fn conversions() {
        let v: Value = 9u64.into();
        assert_eq!(u64::from(v), 9);
        assert_eq!(v.to_string(), "9");
    }
}
