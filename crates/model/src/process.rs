//! Process identifiers and compact process sets.
//!
//! The paper's system is `Π = {p1, …, pn}`. We index processes from `0`
//! internally and display them as `p0, p1, …` to keep arithmetic simple;
//! nothing in the algorithms depends on 1-based indexing.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process in the system `Π = {p0, …, p(n-1)}`.
///
/// `ProcessId` is a cheap copyable newtype over the process index. Process
/// ids are totally ordered; several algorithms in this workspace (for
/// example the leader election of [`indulgent-consensus`]'s `LeaderEcho`)
/// rely on that order.
///
/// # Examples
///
/// ```
/// use indulgent_model::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ProcessSet::MAX_PROCESSES`; sets of processes are
    /// stored as fixed-width bitmasks.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < ProcessSet::MAX_PROCESSES,
            "process index {index} exceeds the supported maximum of {}",
            ProcessSet::MAX_PROCESSES
        );
        ProcessId(index)
    }

    /// Returns the raw index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.0
    }
}

/// A set of processes, stored as a bitmask.
///
/// `ProcessSet` is the representation used for the paper's `Halt` sets
/// (processes involved in suspicions) as well as for delivery bookkeeping in
/// the simulator. It supports at most [`ProcessSet::MAX_PROCESSES`]
/// processes, far beyond any configuration the experiments exercise.
///
/// # Examples
///
/// ```
/// use indulgent_model::{ProcessId, ProcessSet};
///
/// let mut halt = ProcessSet::empty();
/// halt.insert(ProcessId::new(1));
/// halt.insert(ProcessId::new(4));
/// assert_eq!(halt.len(), 2);
/// assert!(halt.contains(ProcessId::new(4)));
/// assert!(!halt.contains(ProcessId::new(0)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// Maximum number of processes representable in a `ProcessSet`.
    pub const MAX_PROCESSES: usize = 64;

    /// Creates an empty set.
    ///
    /// # Examples
    ///
    /// ```
    /// use indulgent_model::ProcessSet;
    /// assert!(ProcessSet::empty().is_empty());
    /// ```
    #[must_use]
    pub fn empty() -> Self {
        ProcessSet(0)
    }

    /// Creates the full set `{p0, …, p(n-1)}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessSet::MAX_PROCESSES`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_PROCESSES, "at most {} processes supported", Self::MAX_PROCESSES);
        if n == Self::MAX_PROCESSES {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of process ids.
    #[must_use]
    pub fn from_ids<I: IntoIterator<Item = ProcessId>>(ids: I) -> Self {
        let mut s = Self::empty();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Returns `true` if the set has no members.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of processes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if `id` is a member.
    #[must_use]
    pub fn contains(self, id: ProcessId) -> bool {
        self.0 & (1 << id.index()) != 0
    }

    /// Inserts `id`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let was = self.contains(id);
        self.0 |= 1 << id.index();
        !was
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let was = self.contains(id);
        self.0 &= !(1 << id.index());
        was
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }

    /// Complement with respect to the universe `{p0, …, p(n-1)}`.
    #[must_use]
    pub fn complement(self, n: usize) -> ProcessSet {
        Self::full(n).difference(self)
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: ProcessSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over members in increasing id order.
    pub fn iter(self) -> Iter {
        Iter { bits: self.0 }
    }

    /// The smallest member, if any. Used by leader-based algorithms that
    /// elect the minimum-id alive process.
    #[must_use]
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId(self.0.trailing_zeros() as usize))
        }
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        Self::from_ids(iter)
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`] in increasing id order.
#[derive(Debug, Clone)]
pub struct Iter {
    bits: u64,
}

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            let idx = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(ProcessId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
        assert_eq!(usize::from(p), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn id_out_of_range_panics() {
        let _ = ProcessId::new(64);
    }

    #[test]
    fn empty_and_full() {
        assert!(ProcessSet::empty().is_empty());
        assert_eq!(ProcessSet::full(5).len(), 5);
        assert_eq!(ProcessSet::full(64).len(), 64);
        assert_eq!(ProcessSet::full(0).len(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::empty();
        assert!(s.insert(ProcessId::new(3)));
        assert!(!s.insert(ProcessId::new(3)));
        assert!(s.contains(ProcessId::new(3)));
        assert!(s.remove(ProcessId::new(3)));
        assert!(!s.remove(ProcessId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_ids([0, 1, 2].map(ProcessId::new));
        let b = ProcessSet::from_ids([2, 3].map(ProcessId::new));
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 1);
        assert_eq!(a.difference(b).len(), 2);
        assert!(a.intersection(b).is_subset(a));
        assert_eq!(a.complement(4), ProcessSet::from_ids([ProcessId::new(3)]));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = ProcessSet::from_ids([5, 1, 3].map(ProcessId::new));
        let ids: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn min_member() {
        assert_eq!(ProcessSet::empty().min(), None);
        let s = ProcessSet::from_ids([4, 2].map(ProcessId::new));
        assert_eq!(s.min(), Some(ProcessId::new(2)));
    }

    #[test]
    fn display_format() {
        let s = ProcessSet::from_ids([0, 2].map(ProcessId::new));
        assert_eq!(s.to_string(), "{p0, p2}");
        assert_eq!(ProcessSet::empty().to_string(), "{}");
    }

    #[test]
    fn collect_and_extend() {
        let s: ProcessSet = [0, 1].map(ProcessId::new).into_iter().collect();
        assert_eq!(s.len(), 2);
        let mut s2 = s;
        s2.extend([ProcessId::new(5)]);
        assert_eq!(s2.len(), 3);
    }
}
