//! Client commands, batches and replicated-log entries.
//!
//! The one-shot consensus machinery of this workspace decides a single
//! [`Value`] per run. The `indulgent-log` crate chains such instances into
//! a *replicated log*: clients submit [`Command`]s, a frontend groups them
//! into [`Batch`]es, and each consensus instance decides which batch
//! occupies the next log slot. This module fixes the vocabulary those
//! layers share, mirroring how [`crate::ProcessId`] / [`crate::Round`] fix
//! the one-shot vocabulary.
//!
//! A batch is identified by a [`BatchId`] that doubles as the consensus
//! proposal for the slot ([`BatchId::as_value`]): batch *ordering* is
//! agreed on through consensus, while batch *content* travels on a
//! dissemination side channel (in this workspace, a shared registry — the
//! split mirrors generalized-consensus designs that separate payload
//! dissemination from sequencing). Lower ids are older batches, so
//! min-estimate algorithms such as `A_{t+2}` prefer the oldest outstanding
//! work; the reserved [`BatchId::NOOP`] is the *largest* id and therefore
//! wins a slot only when nothing real was proposed.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Identifier of a client command, unique within a workload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CommandId(pub u64);

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a client *session* talking to the replicated service.
///
/// Where [`CommandId`] names a command inside one workload, a `ClientId`
/// names the session that submitted it: the networked service layer
/// (`indulgent-server`) keys its exactly-once bookkeeping by
/// `(ClientId, RequestId)`, so a client that retries a request — on the
/// same connection or after reconnecting — is recognized and answered
/// with the original acknowledgement instead of a second apply.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Per-client monotonic request number.
///
/// A client session assigns strictly increasing `RequestId`s to its
/// requests; the pair `(ClientId, RequestId)` is the service-wide
/// exactly-once key. Ids need not be dense — only monotonic — so a
/// client may skip numbers, but reusing one *is* the retry protocol:
/// the service deduplicates it against the decided log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The next request id in the session's monotonic sequence.
    #[must_use]
    pub fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A client command: an opaque payload tagged with a unique id.
///
/// The payload is a `u64` for the same reason [`Value`] is: the
/// reproduction needs ordering and equality, not serialization of real
/// application state. A key-value store encodes `(key, value)` pairs into
/// the integer (see the `replicated_kv` example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    /// Unique command id (assigned at submission).
    pub id: CommandId,
    /// Opaque application payload.
    pub payload: u64,
}

/// Identifier of a batch of commands; doubles as the consensus proposal
/// for a log slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId(pub u64);

impl BatchId {
    /// The reserved "no batch" proposal: a replica with an empty queue
    /// proposes `NOOP`. It is the maximum id, so min-based decisions pick
    /// it only when *every* proposal was a no-op.
    pub const NOOP: BatchId = BatchId(u64::MAX);

    /// Encodes the id as a consensus proposal.
    #[must_use]
    pub fn as_value(self) -> Value {
        Value::new(self.0)
    }

    /// Decodes a decided consensus value back into a batch id.
    #[must_use]
    pub fn from_value(v: Value) -> Self {
        BatchId(v.get())
    }

    /// Returns `true` for the reserved no-op id.
    #[must_use]
    pub fn is_noop(self) -> bool {
        self == Self::NOOP
    }
}

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_noop() {
            write!(f, "b⊥")
        } else {
            write!(f, "b{}", self.0)
        }
    }
}

/// A batch of client commands proposed for one log slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// The batch id (monotonic per frontend; older batches have lower ids).
    pub id: BatchId,
    /// The commands in submission order.
    pub commands: Vec<Command>,
}

/// Index of a slot in the replicated log (1-based, like rounds: slot `i`
/// is decided by consensus instance `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogIndex(pub u64);

impl fmt::Display for LogIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

/// The log prefix a read reflects: a response computed from the store
/// materialized by every slot `<= index`, without occupying a slot of
/// its own. A read served at `ReadIndex(i)` is linearized after slot `i`
/// and before slot `i + 1` — equal, by construction, to what a sequenced
/// read decided at slot `i + 1` would have answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReadIndex(pub u64);

impl fmt::Display for ReadIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read-index {}", self.0)
    }
}

/// A leader-lease epoch: monotonic per service across restarts, so a
/// rebooted leader can never serve reads under an epoch a quorum may
/// still remember granting to its previous incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeaseEpoch(pub u64);

impl fmt::Display for LeaseEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// What a replica applied at one log slot after deciding it.
///
/// The decided value of the slot's consensus instance is recorded
/// verbatim; the entry then classifies it: a fresh batch is `Applied`, the
/// reserved no-op id is `Noop`, and a batch id already applied at an
/// earlier slot is `Duplicate` (apply-time deduplication — the safety net
/// that keeps at-most-once semantics even if a proposer re-proposes a
/// chosen batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppliedEntry {
    /// The batch was applied at this slot (first occurrence).
    Applied(BatchId),
    /// The slot decided the reserved no-op proposal.
    Noop,
    /// The slot decided a batch already applied at an earlier slot.
    Duplicate(BatchId),
}

impl AppliedEntry {
    /// The batch applied at this slot, if any.
    #[must_use]
    pub fn applied(self) -> Option<BatchId> {
        match self {
            AppliedEntry::Applied(b) => Some(b),
            AppliedEntry::Noop | AppliedEntry::Duplicate(_) => None,
        }
    }

    /// The raw decided batch id (`NOOP` for no-op slots).
    #[must_use]
    pub fn decided(self) -> BatchId {
        match self {
            AppliedEntry::Applied(b) | AppliedEntry::Duplicate(b) => b,
            AppliedEntry::Noop => BatchId::NOOP,
        }
    }
}

impl fmt::Display for AppliedEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppliedEntry::Applied(b) => write!(f, "{b}"),
            AppliedEntry::Noop => write!(f, "noop"),
            AppliedEntry::Duplicate(b) => write!(f, "dup({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_id_value_round_trip() {
        let b = BatchId(42);
        assert_eq!(BatchId::from_value(b.as_value()), b);
        assert!(!b.is_noop());
        assert!(BatchId::NOOP.is_noop());
        assert_eq!(BatchId::from_value(BatchId::NOOP.as_value()), BatchId::NOOP);
    }

    #[test]
    fn noop_is_the_maximum_id() {
        // Min-based decisions must prefer any real batch over the no-op.
        assert!(BatchId(u64::MAX - 1) < BatchId::NOOP);
        assert!(BatchId(0).as_value() < BatchId::NOOP.as_value());
    }

    #[test]
    fn applied_entry_accessors() {
        assert_eq!(AppliedEntry::Applied(BatchId(3)).applied(), Some(BatchId(3)));
        assert_eq!(AppliedEntry::Duplicate(BatchId(3)).applied(), None);
        assert_eq!(AppliedEntry::Noop.applied(), None);
        assert_eq!(AppliedEntry::Noop.decided(), BatchId::NOOP);
        assert_eq!(AppliedEntry::Duplicate(BatchId(3)).decided(), BatchId(3));
    }

    #[test]
    fn request_ids_are_monotonic() {
        let r = RequestId(3);
        assert_eq!(r.next(), RequestId(4));
        assert!(r < r.next());
        assert_eq!(RequestId::default(), RequestId(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(CommandId(7).to_string(), "c7");
        assert_eq!(ClientId(7).to_string(), "client7");
        assert_eq!(RequestId(7).to_string(), "r7");
        assert_eq!(BatchId(7).to_string(), "b7");
        assert_eq!(BatchId::NOOP.to_string(), "b⊥");
        assert_eq!(LogIndex(2).to_string(), "slot 2");
        assert_eq!(ReadIndex(2).to_string(), "read-index 2");
        assert_eq!(LeaseEpoch(3).to_string(), "epoch 3");
        assert_eq!(AppliedEntry::Applied(BatchId(1)).to_string(), "b1");
        assert_eq!(AppliedEntry::Duplicate(BatchId(1)).to_string(), "dup(b1)");
        assert_eq!(AppliedEntry::Noop.to_string(), "noop");
    }
}
