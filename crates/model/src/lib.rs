//! Round-based distributed computing model for indulgent consensus.
//!
//! This crate defines the vocabulary shared by the whole workspace, which
//! reproduces *"The inherent price of indulgence"* (Dutta & Guerraoui,
//! PODC 2002 / Distributed Computing 2005):
//!
//! * [`ProcessId`], [`ProcessSet`], [`Round`], [`Value`] — newtypes for the
//!   paper's `Π`, round numbers and totally ordered proposal values;
//! * [`SystemConfig`] — validated `(n, t)` pairs for the paper's three
//!   resilience regimes (`t < n/2`, `t < n/3`, `t ≤ n - 2`);
//! * [`Delivery`] and [`RoundProcess`] — the send/receive round automaton
//!   interface every algorithm implements;
//! * [`RunOutcome`] — executor-independent run results with checking of the
//!   consensus properties (validity, uniform agreement, termination);
//! * [`Command`], [`Batch`], [`AppliedEntry`] — the multi-shot vocabulary
//!   of the `indulgent-log` replicated-log subsystem, which chains
//!   consensus instances into an agreed sequence of command batches.
//!
//! # The two models
//!
//! The paper considers the synchronous crash-stop model **SCS** and an
//! eventually synchronous model **ES**. Both proceed in rounds: a send phase
//! where each process broadcasts one message, and a receive phase. In SCS a
//! message is either received in the round it was sent or (if the sender
//! crashed that round) lost. In ES messages may additionally be *delayed*
//! for finitely many rounds, subject to:
//!
//! * **t-resilience** — every process completing round `k` receives round-`k`
//!   messages from at least `n - t` processes;
//! * **reliable channels** — messages between correct processes are never
//!   lost;
//! * **eventual synchrony** — from some unknown round `K` on, delivery is
//!   synchronous.
//!
//! A run with `K = 1` is *synchronous*; the paper's headline result is that
//! consensus in ES needs `t + 2` rounds even in synchronous runs, one more
//! than the `t + 1` bound of SCS. The model distinctions themselves live in
//! `indulgent-sim`, which enforces these constraints on adversary schedules;
//! this crate only fixes the interfaces.
//!
//! # Example
//!
//! ```
//! use indulgent_model::{Delivery, Round, RoundProcess, Step, SystemConfig, Value};
//!
//! /// A (non-fault-tolerant!) automaton deciding the minimum of round-1 values.
//! #[derive(Clone)]
//! struct MinOnce {
//!     proposal: Value,
//! }
//!
//! impl RoundProcess for MinOnce {
//!     type Msg = Value;
//!
//!     fn send(&mut self, _round: Round) -> Value {
//!         self.proposal
//!     }
//!
//!     fn deliver(&mut self, _round: Round, delivery: &Delivery<Value>) -> Step {
//!         let min = delivery.current().map(|m| m.msg).min().unwrap_or(self.proposal);
//!         Step::Decide(min)
//!     }
//! }
//!
//! let cfg = SystemConfig::majority(3, 1)?;
//! assert_eq!(cfg.quorum(), 2);
//! # Ok::<(), indulgent_model::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod automaton;
mod command;
mod config;
mod message;
mod outcome;
mod process;
mod round;
mod value;

pub use automaton::{ProcessFactory, RoundProcess, Step};
pub use command::{
    AppliedEntry, Batch, BatchId, ClientId, Command, CommandId, LeaseEpoch, LogIndex, ReadIndex,
    RequestId,
};
pub use config::{ConfigError, Resilience, SystemConfig};
pub use message::{DeliveredMsg, Delivery};
pub use outcome::{ConsensusViolation, Decision, RunOutcome};
pub use process::{Iter, ProcessId, ProcessSet};
pub use round::Round;
pub use value::Value;
