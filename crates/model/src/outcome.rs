//! Run outcomes and consensus property verification.
//!
//! Every executor in the workspace (deterministic simulator, exhaustive
//! checker, threaded runtime) reports a [`RunOutcome`]: who proposed what,
//! who crashed, and who decided what in which round. The consensus
//! properties of Sect. 1.3 — validity, uniform agreement, termination — are
//! checked directly on outcomes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;
use crate::value::Value;

/// A recorded decision: which process decided which value in which round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// The deciding process.
    pub process: ProcessId,
    /// The round at whose end the decision was taken.
    pub round: Round,
    /// The decided value.
    pub value: Value,
}

/// The observable outcome of one run.
///
/// # Examples
///
/// ```
/// use indulgent_model::{Decision, ProcessId, ProcessSet, Round, RunOutcome, Value};
///
/// let outcome = RunOutcome {
///     proposals: vec![Value::ZERO, Value::ONE, Value::ONE],
///     decisions: vec![
///         Some(Decision { process: ProcessId::new(0), round: Round::new(3), value: Value::ONE }),
///         Some(Decision { process: ProcessId::new(1), round: Round::new(3), value: Value::ONE }),
///         None,
///     ],
///     crashed: ProcessSet::from_ids([ProcessId::new(2)]),
///     rounds_executed: 4,
/// };
/// assert!(outcome.check_consensus().is_ok());
/// assert_eq!(outcome.global_decision_round(), Some(Round::new(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Proposal of each process (index = process id).
    pub proposals: Vec<Value>,
    /// First decision of each process, if it decided.
    pub decisions: Vec<Option<Decision>>,
    /// Processes that crashed during the run.
    pub crashed: ProcessSet,
    /// Number of rounds the executor ran.
    pub rounds_executed: u32,
}

impl RunOutcome {
    /// Number of processes in the run.
    #[must_use]
    pub fn n(&self) -> usize {
        self.proposals.len()
    }

    /// The correct processes of this run (those that never crashed).
    #[must_use]
    pub fn correct(&self) -> ProcessSet {
        self.crashed.complement(self.n())
    }

    /// The decision of process `id`, if any.
    #[must_use]
    pub fn decision_of(&self, id: ProcessId) -> Option<Decision> {
        self.decisions.get(id.index()).copied().flatten()
    }

    /// The round at which the run achieves a *global decision* (Sect. 1.3):
    /// the highest round in which any process decides, provided at least one
    /// process decided. Returns `None` if no process ever decided.
    ///
    /// Note the paper's definition also requires that all deciding processes
    /// decide at that round or lower, which holds trivially for a maximum.
    #[must_use]
    pub fn global_decision_round(&self) -> Option<Round> {
        self.decisions.iter().flatten().map(|d| d.round).max()
    }

    /// The earliest decision round among deciders, if any decided.
    #[must_use]
    pub fn first_decision_round(&self) -> Option<Round> {
        self.decisions.iter().flatten().map(|d| d.round).min()
    }

    /// Returns `true` if every correct (non-crashed) process decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.correct().iter().all(|p| self.decision_of(p).is_some())
    }

    /// Checks validity, uniform agreement and termination.
    ///
    /// Termination here is the executor-level property "every correct
    /// process decided within the executed horizon"; for runs truncated
    /// before the algorithm's fallback completes, use
    /// [`RunOutcome::check_safety`] instead.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn check_consensus(&self) -> Result<(), ConsensusViolation> {
        self.check_safety()?;
        if !self.all_correct_decided() {
            let undecided = self
                .correct()
                .iter()
                .find(|p| self.decision_of(*p).is_none())
                .expect("some undecided");
            return Err(ConsensusViolation::Termination { process: undecided });
        }
        Ok(())
    }

    /// Checks the safety properties only: validity and uniform agreement.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn check_safety(&self) -> Result<(), ConsensusViolation> {
        // Validity: every decided value was proposed by some process.
        for d in self.decisions.iter().flatten() {
            if !self.proposals.contains(&d.value) {
                return Err(ConsensusViolation::Validity { decision: *d });
            }
        }
        // Uniform agreement: no two processes (correct or not) decide
        // differently.
        let mut deciders = self.decisions.iter().flatten();
        if let Some(first) = deciders.next() {
            for d in deciders {
                if d.value != first.value {
                    return Err(ConsensusViolation::Agreement { a: *first, b: *d });
                }
            }
        }
        Ok(())
    }
}

/// A violated consensus property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusViolation {
    /// A process decided a value nobody proposed.
    Validity {
        /// The offending decision.
        decision: Decision,
    },
    /// Two processes decided differently (uniform agreement is violated even
    /// if one of them later crashed).
    Agreement {
        /// One decision.
        a: Decision,
        /// A conflicting decision.
        b: Decision,
    },
    /// A correct process never decided within the executed horizon.
    Termination {
        /// The undecided correct process.
        process: ProcessId,
    },
}

impl fmt::Display for ConsensusViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::Validity { decision } => write!(
                f,
                "validity violated: {} decided {} at {} but no process proposed it",
                decision.process, decision.value, decision.round
            ),
            ConsensusViolation::Agreement { a, b } => write!(
                f,
                "uniform agreement violated: {} decided {} at {} but {} decided {} at {}",
                a.process, a.value, a.round, b.process, b.value, b.round
            ),
            ConsensusViolation::Termination { process } => {
                write!(f, "termination violated: correct process {process} never decided")
            }
        }
    }
}

impl std::error::Error for ConsensusViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        proposals: Vec<u64>,
        decisions: Vec<Option<(u32, u64)>>,
        crashed: &[usize],
    ) -> RunOutcome {
        RunOutcome {
            proposals: proposals.into_iter().map(Value::new).collect(),
            decisions: decisions
                .into_iter()
                .enumerate()
                .map(|(i, d)| {
                    d.map(|(r, v)| Decision {
                        process: ProcessId::new(i),
                        round: Round::new(r),
                        value: Value::new(v),
                    })
                })
                .collect(),
            crashed: crashed.iter().map(|&i| ProcessId::new(i)).collect(),
            rounds_executed: 10,
        }
    }

    #[test]
    fn valid_run_passes() {
        let o = outcome(vec![0, 1, 1], vec![Some((3, 1)), Some((3, 1)), Some((4, 1))], &[]);
        assert!(o.check_consensus().is_ok());
        assert_eq!(o.global_decision_round(), Some(Round::new(4)));
        assert_eq!(o.first_decision_round(), Some(Round::new(3)));
    }

    #[test]
    fn validity_violation_detected() {
        let o = outcome(vec![0, 1, 1], vec![Some((3, 9)), None, None], &[]);
        assert!(matches!(o.check_consensus(), Err(ConsensusViolation::Validity { .. })));
    }

    #[test]
    fn agreement_violation_detected() {
        let o = outcome(vec![0, 1, 1], vec![Some((3, 0)), Some((3, 1)), None], &[2]);
        assert!(matches!(o.check_safety(), Err(ConsensusViolation::Agreement { .. })));
    }

    #[test]
    fn uniform_agreement_counts_crashed_deciders() {
        // p0 decided then crashed; its decision still counts.
        let o = outcome(vec![0, 1, 1], vec![Some((2, 0)), Some((3, 1)), Some((3, 1))], &[0]);
        assert!(matches!(o.check_safety(), Err(ConsensusViolation::Agreement { .. })));
    }

    #[test]
    fn termination_violation_detected() {
        let o = outcome(vec![0, 1, 1], vec![Some((3, 1)), None, None], &[]);
        assert_eq!(
            o.check_consensus(),
            Err(ConsensusViolation::Termination { process: ProcessId::new(1) })
        );
        // Safety alone passes.
        assert!(o.check_safety().is_ok());
    }

    #[test]
    fn crashed_processes_exempt_from_termination() {
        let o = outcome(vec![0, 1, 1], vec![Some((3, 1)), Some((3, 1)), None], &[2]);
        assert!(o.check_consensus().is_ok());
    }

    #[test]
    fn no_decisions_is_safe_but_nonterminating() {
        let o = outcome(vec![0, 1, 1], vec![None, None, None], &[]);
        assert!(o.check_safety().is_ok());
        assert!(o.check_consensus().is_err());
        assert_eq!(o.global_decision_round(), None);
    }

    #[test]
    fn violation_display() {
        let o = outcome(vec![0, 1, 1], vec![Some((3, 0)), Some((3, 1)), None], &[]);
        let err = o.check_safety().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("uniform agreement violated"));
    }
}
