//! System configuration: number of processes `n` and resilience `t`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::process::{ProcessId, ProcessSet};

/// Resilience regime a configuration must satisfy.
///
/// The paper's results hold in different regimes:
///
/// * the lower bound and `A_{t+2}` need `0 < t < n/2` ([`Resilience::Majority`]),
/// * `A_{f+2}` needs `t < n/3` ([`Resilience::Third`]),
/// * SCS algorithms such as FloodSet only need `t ≤ n - 2`
///   ([`Resilience::Synchronous`]) for the `t + 1` bound to be meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resilience {
    /// `0 < t < n/2`: a majority of processes is correct. Required by every
    /// indulgent algorithm (Chandra–Toueg), and by the paper's lower bound.
    Majority,
    /// `t < n/3`: more than two thirds of processes are correct. Required by
    /// the `A_{f+2}` algorithm of Sect. 6.
    Third,
    /// `t ≤ n - 2`: the classic requirement for the `t + 1` round lower
    /// bound in the synchronous model.
    Synchronous,
}

/// Validated system configuration `(n, t)`.
///
/// `n` is the total number of processes and `t` the maximum number that may
/// crash. Constructors validate the resilience regime so that algorithms can
/// assume their preconditions hold.
///
/// # Examples
///
/// ```
/// use indulgent_model::SystemConfig;
///
/// let cfg = SystemConfig::majority(5, 2)?;
/// assert_eq!(cfg.n(), 5);
/// assert_eq!(cfg.t(), 2);
/// assert_eq!(cfg.quorum(), 3); // n - t
/// # Ok::<(), indulgent_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemConfig {
    n: usize,
    t: usize,
}

impl SystemConfig {
    /// Creates a configuration in the `0 < t < n/2` regime (the paper's
    /// standing assumption for indulgent consensus, `n ≥ 3`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n < 3`, `t == 0`, `2t ≥ n`, or `n`
    /// exceeds [`ProcessSet::MAX_PROCESSES`].
    pub fn majority(n: usize, t: usize) -> Result<Self, ConfigError> {
        Self::validated(n, t, Resilience::Majority)
    }

    /// Creates a configuration in the `t < n/3` regime required by
    /// `A_{f+2}` (Sect. 6 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `t == 0` is fine here but `3t ≥ n`, `n < 3`,
    /// or `n` exceeds [`ProcessSet::MAX_PROCESSES`].
    pub fn third(n: usize, t: usize) -> Result<Self, ConfigError> {
        Self::validated(n, t, Resilience::Third)
    }

    /// Creates a configuration for the synchronous model (`t ≤ n - 2`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `t + 2 > n`, `n < 2`, or `n` exceeds
    /// [`ProcessSet::MAX_PROCESSES`].
    pub fn synchronous(n: usize, t: usize) -> Result<Self, ConfigError> {
        Self::validated(n, t, Resilience::Synchronous)
    }

    /// Creates a configuration validated against `regime`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the pair `(n, t)` violates the regime.
    pub fn validated(n: usize, t: usize, regime: Resilience) -> Result<Self, ConfigError> {
        if n > ProcessSet::MAX_PROCESSES {
            return Err(ConfigError::TooManyProcesses { n });
        }
        match regime {
            Resilience::Majority => {
                if n < 3 {
                    return Err(ConfigError::TooFewProcesses { n, min: 3 });
                }
                if t == 0 {
                    return Err(ConfigError::ZeroResilience);
                }
                if 2 * t >= n {
                    return Err(ConfigError::NoMajority { n, t });
                }
            }
            Resilience::Third => {
                if n < 3 {
                    return Err(ConfigError::TooFewProcesses { n, min: 3 });
                }
                if 3 * t >= n {
                    return Err(ConfigError::NoTwoThirds { n, t });
                }
            }
            Resilience::Synchronous => {
                if n < 2 {
                    return Err(ConfigError::TooFewProcesses { n, min: 2 });
                }
                if t + 2 > n {
                    return Err(ConfigError::SynchronousResilience { n, t });
                }
            }
        }
        Ok(SystemConfig { n, t })
    }

    /// Total number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of processes that may crash.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// The delivery quorum `n - t`: in ES every process completing a round
    /// receives round-`k` messages from at least this many processes.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.n - self.t
    }

    /// `n - 2t`, the adoption threshold used by `A_{f+2}` when `t < n/3`.
    #[must_use]
    pub fn small_quorum(&self) -> usize {
        self.n - 2 * self.t
    }

    /// All process ids `p0 … p(n-1)`.
    pub fn processes(&self) -> impl ExactSizeIterator<Item = ProcessId> {
        (0..self.n).map(ProcessId::new)
    }

    /// The full process set.
    #[must_use]
    pub fn all(&self) -> ProcessSet {
        ProcessSet::full(self.n)
    }

    /// Returns `true` if `id` names a process of this system.
    #[must_use]
    pub fn contains(&self, id: ProcessId) -> bool {
        id.index() < self.n
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}, t={}", self.n, self.t)
    }
}

/// Error produced when a `(n, t)` pair violates a resilience regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// More processes requested than [`ProcessSet`] can represent.
    TooManyProcesses {
        /// Requested number of processes.
        n: usize,
    },
    /// Fewer processes than the regime requires.
    TooFewProcesses {
        /// Requested number of processes.
        n: usize,
        /// Minimum allowed.
        min: usize,
    },
    /// `t == 0` requested for an indulgent configuration; the paper excludes
    /// it (decision is possible in round 1).
    ZeroResilience,
    /// `2t ≥ n`: no indulgent consensus exists (Chandra & Toueg).
    NoMajority {
        /// Number of processes.
        n: usize,
        /// Requested resilience.
        t: usize,
    },
    /// `3t ≥ n`: the `A_{f+2}` algorithm is not applicable.
    NoTwoThirds {
        /// Number of processes.
        n: usize,
        /// Requested resilience.
        t: usize,
    },
    /// `t + 2 > n`: the synchronous `t + 1` bound needs `t ≤ n - 2`.
    SynchronousResilience {
        /// Number of processes.
        n: usize,
        /// Requested resilience.
        t: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooManyProcesses { n } => {
                write!(
                    f,
                    "{n} processes exceed the supported maximum of {}",
                    ProcessSet::MAX_PROCESSES
                )
            }
            ConfigError::TooFewProcesses { n, min } => {
                write!(f, "{n} processes are fewer than the required minimum of {min}")
            }
            ConfigError::ZeroResilience => {
                write!(f, "t = 0 is excluded: processes can decide in the very first round")
            }
            ConfigError::NoMajority { n, t } => {
                write!(f, "t = {t} with n = {n} violates t < n/2; indulgent consensus requires a correct majority")
            }
            ConfigError::NoTwoThirds { n, t } => {
                write!(f, "t = {t} with n = {n} violates t < n/3 required by A_f+2")
            }
            ConfigError::SynchronousResilience { n, t } => {
                write!(
                    f,
                    "t = {t} with n = {n} violates t <= n - 2 required in the synchronous model"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_accepts_valid() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        assert_eq!(cfg.n(), 5);
        assert_eq!(cfg.t(), 2);
        assert_eq!(cfg.quorum(), 3);
        assert_eq!(cfg.small_quorum(), 1);
        assert_eq!(cfg.processes().len(), 5);
        assert_eq!(cfg.all().len(), 5);
        assert!(cfg.contains(ProcessId::new(4)));
        assert!(!cfg.contains(ProcessId::new(5)));
    }

    #[test]
    fn majority_rejects_half() {
        assert_eq!(SystemConfig::majority(4, 2), Err(ConfigError::NoMajority { n: 4, t: 2 }));
    }

    #[test]
    fn majority_rejects_zero_t() {
        assert_eq!(SystemConfig::majority(3, 0), Err(ConfigError::ZeroResilience));
    }

    #[test]
    fn majority_rejects_tiny_system() {
        assert_eq!(
            SystemConfig::majority(2, 1),
            Err(ConfigError::TooFewProcesses { n: 2, min: 3 })
        );
    }

    #[test]
    fn third_regime() {
        assert!(SystemConfig::third(4, 1).is_ok());
        assert!(SystemConfig::third(7, 2).is_ok());
        assert_eq!(SystemConfig::third(6, 2), Err(ConfigError::NoTwoThirds { n: 6, t: 2 }));
        // t = 0 is allowed for A_f+2 (f ranges over 0..=t).
        assert!(SystemConfig::third(3, 0).is_ok());
    }

    #[test]
    fn synchronous_regime() {
        assert!(SystemConfig::synchronous(3, 1).is_ok());
        assert!(SystemConfig::synchronous(4, 2).is_ok());
        assert_eq!(
            SystemConfig::synchronous(3, 2),
            Err(ConfigError::SynchronousResilience { n: 3, t: 2 })
        );
    }

    #[test]
    fn too_many_processes() {
        assert_eq!(SystemConfig::majority(65, 1), Err(ConfigError::TooManyProcesses { n: 65 }));
    }

    #[test]
    fn error_messages_are_lowercase_and_nonempty() {
        for err in [
            ConfigError::TooManyProcesses { n: 65 },
            ConfigError::TooFewProcesses { n: 1, min: 3 },
            ConfigError::ZeroResilience,
            ConfigError::NoMajority { n: 4, t: 2 },
            ConfigError::NoTwoThirds { n: 6, t: 2 },
            ConfigError::SynchronousResilience { n: 3, t: 2 },
        ] {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase() || msg.starts_with(char::is_numeric)
            );
        }
    }

    #[test]
    fn display() {
        let cfg = SystemConfig::majority(5, 2).unwrap();
        assert_eq!(cfg.to_string(), "n=5, t=2");
    }
}
