//! The round-based process automaton interface.
//!
//! Every algorithm in this workspace — the paper's `A_{t+2}`, its ◇S
//! variant, `A_{f+2}`, and all baselines — is expressed as a
//! [`RoundProcess`]: a deterministic state machine driven by alternating
//! *send* and *receive* phases. The same automaton runs unchanged under the
//! deterministic simulator (`indulgent-sim`), the exhaustive model checker
//! (`indulgent-checker`) and the threaded message-passing runtime
//! (`indulgent-runtime`).

use crate::message::Delivery;
use crate::round::Round;
use crate::value::Value;

/// Outcome of a receive phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The process continues to the next round.
    Continue,
    /// The process decides `Value`. A process decides at most once; the
    /// executors record the first `Decide` and ignore subsequent ones, but a
    /// well-behaved automaton never emits two.
    Decide(Value),
}

impl Step {
    /// The decided value, if this step is a decision.
    #[must_use]
    pub fn decision(self) -> Option<Value> {
        match self {
            Step::Continue => None,
            Step::Decide(v) => Some(v),
        }
    }
}

/// A deterministic round-based process.
///
/// The protocol is the paper's (Sect. 1.2): in the send phase of round `k`
/// the process emits one message, conceptually broadcast to all `n`
/// processes (including itself — self-delivery is never delayed or lost, and
/// a process never suspects itself). In the receive phase it gets a
/// [`Delivery`] of everything that arrived in round `k` and may decide.
///
/// After emitting [`Step::Decide`] the automaton keeps being driven: the
/// model's footnote 1 requires processes to keep sending (dummy) messages so
/// that delivery guarantees hold, and all paper algorithms relay `DECIDE`
/// messages after deciding. Implementations typically switch to broadcasting
/// their decision.
///
/// # Snapshotability
///
/// `RoundProcess` requires [`Clone`]: an automaton's state must be a plain
/// snapshotable value. Cloning a process (together with its pending
/// mailboxes) forks the run — both copies evolve identically under
/// identical subsequent inputs, because automatons are deterministic and
/// hold no hidden shared state. The incremental prefix-sharing sweep engine
/// (`indulgent-sim`'s fork-on-branch executor) relies on exactly this:
/// it executes each shared schedule prefix once and clones the mid-run
/// state at every branch point instead of replaying from round 1.
pub trait RoundProcess: Clone {
    /// The message type broadcast each round.
    type Msg: Clone + std::fmt::Debug;

    /// The message to broadcast in the send phase of `round`.
    ///
    /// Called exactly once per round, with strictly increasing rounds
    /// starting from [`Round::FIRST`].
    fn send(&mut self, round: Round) -> Self::Msg;

    /// Handles the receive phase of `round`.
    ///
    /// `delivery` contains every message arriving in `round` — current-round
    /// messages and delayed ones. Returns [`Step::Decide`] the first time
    /// the process decides.
    fn deliver(&mut self, round: Round, delivery: &Delivery<Self::Msg>) -> Step;
}

/// A factory producing the `n` process automatons of a run.
///
/// Executors (simulator, checker, runtime) construct one automaton per
/// process from the proposal vector. Implemented for closures.
pub trait ProcessFactory {
    /// The automaton type produced.
    type Process: RoundProcess;

    /// Builds the automaton for process `index` proposing `proposal`.
    fn build(&self, index: usize, proposal: Value) -> Self::Process;
}

impl<P: RoundProcess, F: Fn(usize, Value) -> P> ProcessFactory for F {
    type Process = P;

    fn build(&self, index: usize, proposal: Value) -> P {
        self(index, proposal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::DeliveredMsg;
    use crate::process::ProcessId;

    /// A trivial automaton deciding its own proposal in round 1.
    #[derive(Clone)]
    struct Trivial {
        proposal: Value,
    }

    impl RoundProcess for Trivial {
        type Msg = Value;

        fn send(&mut self, _round: Round) -> Value {
            self.proposal
        }

        fn deliver(&mut self, _round: Round, _delivery: &Delivery<Value>) -> Step {
            Step::Decide(self.proposal)
        }
    }

    #[test]
    fn step_decision_accessor() {
        assert_eq!(Step::Continue.decision(), None);
        assert_eq!(Step::Decide(Value::ONE).decision(), Some(Value::ONE));
    }

    #[test]
    fn closure_factory_builds_processes() {
        let factory = |_idx: usize, proposal: Value| Trivial { proposal };
        let mut p = factory.build(0, Value::new(7));
        assert_eq!(p.send(Round::FIRST), Value::new(7));
        let delivery = Delivery::new(
            Round::FIRST,
            vec![DeliveredMsg {
                sender: ProcessId::new(0),
                sent_round: Round::FIRST,
                msg: Value::new(7),
            }],
        );
        assert_eq!(p.deliver(Round::FIRST, &delivery), Step::Decide(Value::new(7)));
    }
}
