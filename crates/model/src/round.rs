//! Round numbers.
//!
//! Computation in both SCS and ES proceeds in rounds with increasing round
//! numbers starting from 1 (paper, Sect. 1.2).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A round number, starting at 1.
///
/// # Examples
///
/// ```
/// use indulgent_model::Round;
///
/// let r = Round::FIRST;
/// assert_eq!(r.get(), 1);
/// assert_eq!((r + 2).get(), 3);
/// assert_eq!((r + 2) - r, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Round(u32);

impl Round {
    /// The first round of every run.
    pub const FIRST: Round = Round(1);

    /// Creates a round from its number.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0`; rounds are 1-based.
    #[must_use]
    pub fn new(round: u32) -> Self {
        assert!(round >= 1, "round numbers start at 1");
        Round(round)
    }

    /// The round number as an integer.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The next round.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The previous round, or `None` for the first round.
    #[must_use]
    pub fn prev(self) -> Option<Round> {
        if self.0 > 1 {
            Some(Round(self.0 - 1))
        } else {
            None
        }
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

impl Add<u32> for Round {
    type Output = Round;

    fn add(self, rhs: u32) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u32> for Round {
    fn add_assign(&mut self, rhs: u32) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u32;

    /// Number of rounds from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub(self, rhs: Round) -> u32 {
        self.0.checked_sub(rhs.0).expect("round subtraction underflow")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Round::FIRST.get(), 1);
        assert_eq!(Round::new(5).get(), 5);
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn round_zero_panics() {
        let _ = Round::new(0);
    }

    #[test]
    fn next_prev() {
        assert_eq!(Round::FIRST.next(), Round::new(2));
        assert_eq!(Round::new(2).prev(), Some(Round::FIRST));
        assert_eq!(Round::FIRST.prev(), None);
    }

    #[test]
    fn arithmetic() {
        let mut r = Round::FIRST;
        r += 3;
        assert_eq!(r, Round::new(4));
        assert_eq!(r + 1, Round::new(5));
        assert_eq!(Round::new(7) - Round::new(4), 3);
    }

    #[test]
    fn ordering() {
        assert!(Round::FIRST < Round::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(Round::new(4).to_string(), "round 4");
    }
}
