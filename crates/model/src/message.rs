//! Message envelopes and per-round deliveries.
//!
//! In each round a process broadcasts one message (the paper assumes without
//! loss of generality that a process sends the same message to all processes;
//! a per-destination message can be encoded as an array). The receive phase
//! hands the process a [`Delivery`]: every message that *arrives* in that
//! round, each tagged with the round in which it was sent. In the eventually
//! synchronous model a message may arrive in a round higher than the one it
//! was sent in; such messages are *delayed* and — crucially — do **not**
//! prevent the receiver from suspecting the sender in the round of arrival.

use std::fmt;

use crate::process::{ProcessId, ProcessSet};
use crate::round::Round;

/// A message as delivered to a process: payload plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredMsg<M> {
    /// The process that sent the message.
    pub sender: ProcessId,
    /// The round in which the message was *sent* (its timestamp).
    pub sent_round: Round,
    /// The message payload.
    pub msg: M,
}

/// Everything delivered to one process in the receive phase of one round.
///
/// A `Delivery` distinguishes *current* messages (sent in this round and
/// arriving in this round) from *delayed* messages (sent in an earlier
/// round). Suspicion in the ES model is defined from current messages only:
/// `pi` suspects `pj` in round `k` iff `pj`'s round-`k` message is absent.
///
/// # Examples
///
/// ```
/// use indulgent_model::{Delivery, DeliveredMsg, ProcessId, Round};
///
/// let delivery = Delivery::new(
///     Round::new(2),
///     vec![
///         DeliveredMsg { sender: ProcessId::new(0), sent_round: Round::new(2), msg: "a" },
///         DeliveredMsg { sender: ProcessId::new(1), sent_round: Round::new(1), msg: "late" },
///     ],
/// );
/// assert!(delivery.current_senders().contains(ProcessId::new(0)));
/// assert!(!delivery.current_senders().contains(ProcessId::new(1))); // delayed
/// assert_eq!(delivery.suspected(2).len(), 1); // p1 suspected out of {p0, p1}
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    round: Round,
    messages: Vec<DeliveredMsg<M>>,
    current_senders: ProcessSet,
}

impl<M> Delivery<M> {
    /// Builds a delivery for `round` from arrived messages.
    #[must_use]
    pub fn new(round: Round, messages: Vec<DeliveredMsg<M>>) -> Self {
        let mut current_senders = ProcessSet::empty();
        for m in &messages {
            if m.sent_round == round {
                current_senders.insert(m.sender);
            }
        }
        Delivery { round, messages, current_senders }
    }

    /// Builds an empty delivery for `round`, with no buffer allocated.
    ///
    /// Together with [`reset`](Delivery::reset), [`push`](Delivery::push)
    /// and [`append`](Delivery::append) this is the *pooled* construction
    /// path: an executor keeps one `Delivery` alive across rounds and
    /// rebuilds it in place each receive phase, so the steady-state hot
    /// loop allocates nothing once the buffer has grown to its working
    /// size.
    #[must_use]
    pub fn empty(round: Round) -> Self {
        Delivery { round, messages: Vec::new(), current_senders: ProcessSet::empty() }
    }

    /// Clears the delivery and retargets it to `round`, keeping the
    /// message buffer's capacity for reuse.
    pub fn reset(&mut self, round: Round) {
        self.round = round;
        self.messages.clear();
        self.current_senders = ProcessSet::empty();
    }

    /// Appends one message, maintaining the current-sender bookkeeping.
    pub fn push(&mut self, m: DeliveredMsg<M>) {
        if m.sent_round == self.round {
            self.current_senders.insert(m.sender);
        }
        self.messages.push(m);
    }

    /// Moves every message out of `buf` into the delivery (in order),
    /// leaving `buf` empty but with its capacity intact — the zero-copy
    /// hand-off from a mailbox buffer to the pooled delivery.
    pub fn append(&mut self, buf: &mut Vec<DeliveredMsg<M>>) {
        for m in buf.iter() {
            if m.sent_round == self.round {
                self.current_senders.insert(m.sender);
            }
        }
        self.messages.append(buf);
    }

    /// The round this delivery belongs to.
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// All messages that arrived this round, current and delayed.
    #[must_use]
    pub fn messages(&self) -> &[DeliveredMsg<M>] {
        &self.messages
    }

    /// Senders whose *current-round* message arrived.
    #[must_use]
    pub fn current_senders(&self) -> ProcessSet {
        self.current_senders
    }

    /// Processes suspected this round by the receiving process: those among
    /// `{p0, …, p(n-1)}` whose current-round message did not arrive.
    ///
    /// This is the ES model's definition of suspicion (Sect. 1.2) and also
    /// the paper's Sect. 4 construction of a simulated failure-detector
    /// output from round receptions.
    #[must_use]
    pub fn suspected(&self, n: usize) -> ProcessSet {
        self.current_senders.complement(n)
    }

    /// Iterates over the *current-round* messages only.
    pub fn current(&self) -> impl Iterator<Item = &DeliveredMsg<M>> {
        let round = self.round;
        self.messages.iter().filter(move |m| m.sent_round == round)
    }

    /// Iterates over *delayed* messages (sent in an earlier round).
    pub fn delayed(&self) -> impl Iterator<Item = &DeliveredMsg<M>> {
        let round = self.round;
        self.messages.iter().filter(move |m| m.sent_round != round)
    }

    /// The current-round message from `sender`, if it arrived.
    ///
    /// Absence is answered in O(1) from the
    /// [`current_senders`](Delivery::current_senders) bitmask; a hit costs one O(`len`) scan
    /// for the payload. Algorithms call this inside per-sender loops
    /// (e.g. the coordinator lookup of the rotating-coordinator and echo
    /// baselines), where the common case in crash-prone rounds is a miss.
    #[must_use]
    pub fn current_from(&self, sender: ProcessId) -> Option<&M> {
        if !self.current_senders.contains(sender) {
            return None;
        }
        self.current().find(|m| m.sender == sender).map(|m| &m.msg)
    }

    /// Number of messages delivered (current plus delayed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` if nothing was delivered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

impl<M: fmt::Display> fmt::Display for DeliveredMsg<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ {}] {}", self.sender, self.sent_round, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Delivery<&'static str> {
        Delivery::new(
            Round::new(3),
            vec![
                DeliveredMsg { sender: ProcessId::new(0), sent_round: Round::new(3), msg: "x" },
                DeliveredMsg { sender: ProcessId::new(2), sent_round: Round::new(3), msg: "y" },
                DeliveredMsg { sender: ProcessId::new(1), sent_round: Round::new(1), msg: "old" },
            ],
        )
    }

    #[test]
    fn current_vs_delayed() {
        let d = sample();
        assert_eq!(d.current().count(), 2);
        assert_eq!(d.delayed().count(), 1);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.round(), Round::new(3));
    }

    #[test]
    fn current_senders_and_suspicion() {
        let d = sample();
        let senders = d.current_senders();
        assert!(senders.contains(ProcessId::new(0)));
        assert!(senders.contains(ProcessId::new(2)));
        assert!(!senders.contains(ProcessId::new(1)));
        // With n = 4 both p1 (delayed) and p3 (absent) are suspected.
        let suspected = d.suspected(4);
        assert_eq!(suspected.len(), 2);
        assert!(suspected.contains(ProcessId::new(1)));
        assert!(suspected.contains(ProcessId::new(3)));
    }

    #[test]
    fn current_from_lookup() {
        let d = sample();
        assert_eq!(d.current_from(ProcessId::new(2)), Some(&"y"));
        assert_eq!(d.current_from(ProcessId::new(1)), None);
    }

    #[test]
    fn empty_delivery() {
        let d: Delivery<()> = Delivery::new(Round::FIRST, vec![]);
        assert!(d.is_empty());
        assert_eq!(d.suspected(3).len(), 3);
    }

    #[test]
    fn pooled_rebuild_matches_fresh_construction() {
        let fresh = sample();
        let mut pooled: Delivery<&'static str> = Delivery::empty(Round::FIRST);
        // Fill once, then reset and rebuild — the second generation must be
        // indistinguishable from a freshly constructed delivery.
        pooled.push(DeliveredMsg { sender: ProcessId::new(3), sent_round: Round::FIRST, msg: "z" });
        pooled.reset(Round::new(3));
        for m in fresh.messages() {
            pooled.push(m.clone());
        }
        assert_eq!(pooled, fresh);
        assert_eq!(pooled.current_senders(), fresh.current_senders());
    }

    #[test]
    fn append_drains_buffer_and_tracks_senders() {
        let fresh = sample();
        let mut buf: Vec<DeliveredMsg<&'static str>> = fresh.messages().to_vec();
        let mut pooled: Delivery<&'static str> = Delivery::empty(Round::new(3));
        pooled.append(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(pooled, fresh);
        assert_eq!(pooled.suspected(4), fresh.suspected(4));
    }

    #[test]
    fn reset_clears_messages_and_senders() {
        let mut d = sample();
        d.reset(Round::new(4));
        assert!(d.is_empty());
        assert_eq!(d.round(), Round::new(4));
        assert!(d.current_senders().is_empty());
        assert_eq!(d.current_from(ProcessId::new(0)), None);
    }

    #[test]
    fn delivered_msg_display() {
        let m = DeliveredMsg { sender: ProcessId::new(1), sent_round: Round::new(2), msg: "hello" };
        assert_eq!(m.to_string(), "[p1 @ round 2] hello");
    }
}
