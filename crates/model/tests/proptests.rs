//! Property-based tests of the model's core data structures.

use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessId, ProcessSet, Round, RunOutcome, Value,
};
use proptest::prelude::*;

fn pid() -> impl Strategy<Value = ProcessId> {
    (0usize..64).prop_map(ProcessId::new)
}

fn pset() -> impl Strategy<Value = ProcessSet> {
    proptest::collection::vec(pid(), 0..20).prop_map(ProcessSet::from_ids)
}

proptest! {
    // ---- ProcessSet: boolean-algebra laws ----

    #[test]
    fn union_is_commutative_and_associative(a in pset(), b in pset(), c in pset()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
    }

    #[test]
    fn intersection_distributes_over_union(a in pset(), b in pset(), c in pset()) {
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
    }

    #[test]
    fn difference_and_intersection_partition(a in pset(), b in pset()) {
        let inter = a.intersection(b);
        let diff = a.difference(b);
        prop_assert_eq!(inter.union(diff), a);
        prop_assert_eq!(inter.intersection(diff), ProcessSet::empty());
        prop_assert_eq!(inter.len() + diff.len(), a.len());
    }

    #[test]
    fn de_morgan(a in pset(), b in pset()) {
        let n = 64;
        prop_assert_eq!(
            a.union(b).complement(n),
            a.complement(n).intersection(b.complement(n))
        );
        prop_assert_eq!(
            a.intersection(b).complement(n),
            a.complement(n).union(b.complement(n))
        );
    }

    #[test]
    fn complement_is_involutive(a in pset()) {
        prop_assert_eq!(a.complement(64).complement(64), a);
    }

    #[test]
    fn subset_iff_difference_empty(a in pset(), b in pset()) {
        prop_assert_eq!(a.is_subset(b), a.difference(b).is_empty());
    }

    #[test]
    fn insert_remove_roundtrip(a in pset(), p in pid()) {
        let mut s = a;
        let was_in = s.contains(p);
        s.insert(p);
        prop_assert!(s.contains(p));
        s.remove(p);
        prop_assert!(!s.contains(p));
        if !was_in {
            prop_assert_eq!(s, a);
        }
    }

    #[test]
    fn iteration_matches_membership(a in pset()) {
        let collected: Vec<ProcessId> = a.iter().collect();
        prop_assert_eq!(collected.len(), a.len());
        for p in &collected {
            prop_assert!(a.contains(*p));
        }
        // Ascending, strictly.
        for w in collected.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Round-trip through FromIterator.
        prop_assert_eq!(ProcessSet::from_ids(collected), a);
    }

    #[test]
    fn min_is_smallest_member(a in pset()) {
        match a.min() {
            None => prop_assert!(a.is_empty()),
            Some(m) => {
                prop_assert!(a.contains(m));
                for p in a.iter() {
                    prop_assert!(m <= p);
                }
            }
        }
    }

    // ---- Round arithmetic ----

    #[test]
    fn round_add_sub_roundtrip(base in 1u32..1000, delta in 0u32..1000) {
        let r = Round::new(base);
        prop_assert_eq!((r + delta) - r, delta);
        prop_assert_eq!(r.next().prev(), Some(r));
    }

    // ---- Delivery invariants ----

    #[test]
    fn delivery_partitions_current_and_delayed(
        round in 2u32..10,
        senders in proptest::collection::vec((0usize..8, 1u32..10), 0..16),
    ) {
        let round_r = Round::new(round);
        let msgs: Vec<DeliveredMsg<u32>> = senders
            .iter()
            .enumerate()
            .map(|(i, &(s, sent))| DeliveredMsg {
                sender: ProcessId::new(s),
                sent_round: Round::new(sent.min(round)),
                msg: i as u32,
            })
            .collect();
        let d = Delivery::new(round_r, msgs.clone());
        prop_assert_eq!(d.current().count() + d.delayed().count(), msgs.len());
        for m in d.current() {
            prop_assert_eq!(m.sent_round, round_r);
            prop_assert!(d.current_senders().contains(m.sender));
        }
        for m in d.delayed() {
            prop_assert!(m.sent_round < round_r);
        }
        // suspected(n) is exactly the complement of current senders.
        let n = 8;
        prop_assert_eq!(d.suspected(n), d.current_senders().complement(n));
    }

    // ---- RunOutcome properties ----

    #[test]
    fn unanimous_decisions_always_pass_safety(
        decided in proptest::collection::vec(proptest::bool::ANY, 4),
        value in 0u64..4,
        rounds in proptest::collection::vec(1u32..9, 4),
    ) {
        let proposals: Vec<Value> = (0..4).map(|i| Value::new(i as u64)).collect();
        let outcome = RunOutcome {
            proposals,
            decisions: decided
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    d.then(|| Decision {
                        process: ProcessId::new(i),
                        round: Round::new(rounds[i]),
                        value: Value::new(value),
                    })
                })
                .collect(),
            crashed: ProcessSet::empty(),
            rounds_executed: 10,
        };
        prop_assert!(outcome.check_safety().is_ok());
        // Termination holds iff everyone decided.
        prop_assert_eq!(outcome.check_consensus().is_ok(), decided.iter().all(|&d| d));
        // Global decision round is the max of decision rounds.
        let expected = decided
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| rounds[i])
            .max();
        prop_assert_eq!(outcome.global_decision_round().map(|r| r.get()), expected);
    }
}
