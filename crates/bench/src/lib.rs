//! Experiment harness regenerating every claim of the paper.
//!
//! The paper is theoretical: its "evaluation" is a set of proven bounds and
//! five figures. Each function in [`experiments`] regenerates one of them
//! as a table of measured rows (see `EXPERIMENTS.md` at the workspace root
//! for the mapping). The `exp_*` binaries print the tables; the criterion
//! benches in `benches/` time the same computations so `cargo bench`
//! exercises every experiment end to end.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod stats;

use indulgent_sim::SweepBackend;

/// Parses the common `--threads N` CLI flag of the `exp_*` binaries into a
/// sweep backend: `--threads 1` is serial, `--threads N` a pooled parallel
/// sweep, and no flag defers to `INDULGENT_SWEEP_BACKEND` (default serial).
///
/// # Panics
///
/// Panics with a usage message if `--threads` is present without a valid
/// positive integer.
pub fn sweep_backend_from_args<I: Iterator<Item = String>>(mut args: I) -> SweepBackend {
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let threads: usize = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v >= 1)
                .expect("usage: --threads N (N >= 1)");
            return if threads == 1 {
                SweepBackend::Serial
            } else {
                SweepBackend::parallel(threads)
            };
        }
    }
    SweepBackend::from_env()
}

/// Renders a table: a header line, a separator, and one line per row.
///
/// Purely cosmetic (fixed-width columns sized to content); used by all the
/// `exp_*` binaries.
#[must_use]
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("T\n"));
        assert!(s.lines().count() >= 4);
    }
}
