//! Small statistics toolkit for experiment tables.
//!
//! Decision rounds are small integers, so a dense histogram is the natural
//! summary; [`RoundHistogram`] accumulates them and answers means,
//! percentiles and modes. Used by the experiment binaries to report
//! distributions rather than just worst cases.

use std::fmt;

use indulgent_model::Round;

/// A histogram of decision rounds.
///
/// # Examples
///
/// ```
/// use indulgent_bench::stats::RoundHistogram;
/// use indulgent_model::Round;
///
/// let mut h = RoundHistogram::new();
/// for r in [4, 4, 4, 7, 10] {
///     h.record(Round::new(r));
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(Round::new(4)));
/// assert_eq!(h.max(), Some(Round::new(10)));
/// assert_eq!(h.percentile(50.0), Some(Round::new(4)));
/// assert!((h.mean().unwrap() - 5.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl RoundHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision round.
    pub fn record(&mut self, round: Round) {
        let idx = round.get() as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Occurrences of a specific round.
    #[must_use]
    pub fn count_at(&self, round: Round) -> u64 {
        self.counts.get(round.get() as usize).copied().unwrap_or(0)
    }

    /// The smallest recorded round.
    #[must_use]
    pub fn min(&self) -> Option<Round> {
        self.counts.iter().enumerate().find(|&(_, &c)| c > 0).map(|(i, _)| Round::new(i as u32))
    }

    /// The largest recorded round.
    #[must_use]
    pub fn max(&self) -> Option<Round> {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|&(_, &c)| c > 0)
            .map(|(i, _)| Round::new(i as u32))
    }

    /// The mean recorded round.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: u64 = self.counts.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        Some(sum as f64 / self.total as f64)
    }

    /// The `p`-th percentile (nearest-rank), `0 < p <= 100`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<Round> {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Round::new(i as u32));
            }
        }
        self.max()
    }

    /// The most frequent round (smallest wins ties).
    #[must_use]
    pub fn mode(&self) -> Option<Round> {
        let best = self.counts.iter().enumerate().max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)));
        match best {
            Some((i, &c)) if c > 0 => Some(Round::new(i as u32)),
            _ => None,
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &RoundHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
    }

    /// Iterates over `(round, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (Round, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Round::new(i as u32), c))
    }
}

impl fmt::Display for RoundHistogram {
    /// Renders as `round: count` lines with a proportional bar.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (round, count) in self.iter() {
            let bar = "#".repeat(((count * 40) / max) as usize);
            writeln!(f, "{:>8}: {count:>7} {bar}", round.to_string())?;
        }
        Ok(())
    }
}

impl FromIterator<Round> for RoundHistogram {
    fn from_iter<I: IntoIterator<Item = Round>>(iter: I) -> Self {
        let mut h = RoundHistogram::new();
        for r in iter {
            h.record(r);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoundHistogram {
        [4u32, 4, 4, 5, 7, 7, 10].into_iter().map(Round::new).collect()
    }

    #[test]
    fn basic_accounting() {
        let h = sample();
        assert_eq!(h.count(), 7);
        assert!(!h.is_empty());
        assert_eq!(h.count_at(Round::new(4)), 3);
        assert_eq!(h.count_at(Round::new(6)), 0);
        assert_eq!(h.min(), Some(Round::new(4)));
        assert_eq!(h.max(), Some(Round::new(10)));
        assert_eq!(h.mode(), Some(Round::new(4)));
    }

    #[test]
    fn mean_and_percentiles() {
        let h = sample();
        let mean = h.mean().unwrap();
        assert!((mean - 41.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.percentile(1.0), Some(Round::new(4)));
        assert_eq!(h.percentile(50.0), Some(Round::new(5)));
        assert_eq!(h.percentile(100.0), Some(Round::new(10)));
    }

    #[test]
    fn empty_histogram() {
        let h = RoundHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mode(), None);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_zero_rejected() {
        let _ = sample().percentile(0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = sample();
        let b: RoundHistogram = [2u32, 10, 12].into_iter().map(Round::new).collect();
        a.merge(&b);
        assert_eq!(a.count(), 10);
        assert_eq!(a.min(), Some(Round::new(2)));
        assert_eq!(a.max(), Some(Round::new(12)));
        assert_eq!(a.count_at(Round::new(10)), 2);
    }

    #[test]
    fn display_renders_bars() {
        let s = sample().to_string();
        assert!(s.contains("round 4"));
        assert!(s.contains('#'));
    }

    #[test]
    fn iter_skips_zeros() {
        let h = sample();
        let rounds: Vec<u32> = h.iter().map(|(r, _)| r.get()).collect();
        assert_eq!(rounds, vec![4, 5, 7, 10]);
    }
}
