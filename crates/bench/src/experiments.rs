//! Experiment implementations (E1–E9 of `EXPERIMENTS.md`).
//!
//! Every function returns plain data rows so that binaries can print them,
//! benches can time them, and integration tests can assert the paper's
//! *shape*: who wins, by what factor, where the crossovers fall.

use indulgent_checker::{
    find_bivalent_initial, find_bivalent_prefix, worst_case_decision_round_with, SweepBackend,
    ValencyParams,
};
use indulgent_consensus::{
    AfPlus2, AtPlus2, CoordinatorEcho, EarlyFloodSet, FloodSet, FloodSetWs, LeaderEcho,
    RotatingCoordinator,
};
use indulgent_fd::{CrashInfo, EventuallyStrongDetector, Suspicion, SuspicionScript};
use indulgent_model::{
    Delivery, ProcessFactory, ProcessId, Round, RoundProcess, Step, SystemConfig, Value,
};
use indulgent_sim::{
    pooled_map_indexed, random_run, run_schedule, ModelKind, RandomRunParams, Schedule,
    ScheduleBuilder,
};

/// Standard proposal vector: pairwise distinct odd values, with the
/// minimum held by a middle process (never `p0`, which several adversarial
/// schedules use as the deciding witness).
fn proposals(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new((((i + n / 2) % n) as u64) * 2 + 1)).collect()
}

fn at_plus2_factory(
    config: SystemConfig,
) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> {
    move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    }
}

// ---------------------------------------------------------------------------
// E1: the t + 2 lower bound, exhaustively (Proposition 1)
// ---------------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct LowerBoundRow {
    /// System size.
    pub n: usize,
    /// Resilience.
    pub t: usize,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Serial synchronous runs explored.
    pub runs: u64,
    /// Worst global-decision round observed.
    pub worst_round: u32,
    /// The paper's bound `t + 2`.
    pub bound: u32,
    /// Whether a bivalent initial configuration exists (Lemma 3 witness).
    pub bivalent_initial: bool,
    /// Whether bivalence survives through round `t - 1` (Lemma 4 witness).
    pub bivalent_at_t_minus_1: bool,
}

/// E1: exhaustive worst-case decision rounds of the ES algorithms over all
/// serial synchronous runs, plus the bivalency witnesses of the proof.
///
/// The sweeps (worst case and valency) run on `backend`; the rows are
/// identical for every backend and thread count.
///
/// Every ES consensus algorithm must have `worst_round >= t + 2`
/// (Proposition 1); `A_{t+2}` attains exactly `t + 2`.
///
/// # Panics
///
/// Panics if a run violates consensus (would indicate an implementation
/// bug).
#[must_use]
pub fn lower_bound_table(configs: &[(usize, usize)], backend: SweepBackend) -> Vec<LowerBoundRow> {
    let mut rows = Vec::new();
    for &(n, t) in configs {
        let config = SystemConfig::majority(n, t).expect("valid majority config");
        let crash_horizon = t as u32 + 2;
        let run_horizon = 12 * (t as u32 + 2);
        let props = proposals(n);
        let vparams = ValencyParams::new(crash_horizon, run_horizon).with_backend(backend);

        // A_{t+2}.
        let f = at_plus2_factory(config);
        let report = worst_case_decision_round_with(
            &f,
            config,
            ModelKind::Es,
            &props,
            crash_horizon,
            run_horizon,
            backend,
        )
        .expect("A_t+2 satisfies consensus in all serial runs");
        let bivalent_initial = find_bivalent_initial(&f, config, ModelKind::Es, vparams).is_some();
        let bivalent_prefix = if t >= 2 {
            find_bivalent_prefix(&f, &binary_mixed(n), config, ModelKind::Es, t as u32 - 1, vparams)
                .is_some()
        } else {
            bivalent_initial // t - 1 = 0 rounds: the initial configuration
        };
        rows.push(LowerBoundRow {
            n,
            t,
            algorithm: "A_t+2",
            runs: report.runs,
            worst_round: report.worst_round.get(),
            bound: t as u32 + 2,
            bivalent_initial,
            bivalent_at_t_minus_1: bivalent_prefix,
        });

        // Hurfin–Raynal-style baseline.
        let f = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let report = worst_case_decision_round_with(
            &f,
            config,
            ModelKind::Es,
            &props,
            2 * t as u32 + 2,
            run_horizon,
            backend,
        )
        .expect("CoordinatorEcho satisfies consensus in all serial runs");
        rows.push(LowerBoundRow {
            n,
            t,
            algorithm: "HR-style",
            runs: report.runs,
            worst_round: report.worst_round.get(),
            bound: t as u32 + 2,
            bivalent_initial: true,
            bivalent_at_t_minus_1: true,
        });
    }
    rows
}

fn binary_mixed(n: usize) -> Vec<Value> {
    // One zero among ones: the canonical bivalent configuration for
    // min-flooding algorithms.
    (0..n).map(|i| if i == n - 1 { Value::ZERO } else { Value::ONE }).collect()
}

// ---------------------------------------------------------------------------
// E2: fast decision of A_{t+2} (Lemma 13)
// ---------------------------------------------------------------------------

/// One row of the E2 table.
#[derive(Debug, Clone)]
pub struct FastDecisionRow {
    /// System size.
    pub n: usize,
    /// Resilience.
    pub t: usize,
    /// Crashes injected.
    pub f: usize,
    /// Random synchronous runs executed.
    pub runs: u32,
    /// Worst global-decision round observed.
    pub max_round: u32,
    /// The fast-decision bound `t + 2`.
    pub bound: u32,
}

/// E2: `A_{t+2}` global-decision rounds over seeded random synchronous
/// runs, sweeping `(n, t, f)`. The paper's Lemma 13 says `max_round` is
/// always exactly `t + 2`.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn fast_decision_table(ns: &[usize], runs_per_cell: u32) -> Vec<FastDecisionRow> {
    let mut rows = Vec::new();
    for &n in ns {
        let t_max = n.div_ceil(2) - 1;
        for t in 1..=t_max {
            let config = SystemConfig::majority(n, t).expect("valid config");
            let props = proposals(n);
            for f in 0..=t {
                let mut max_round = 0;
                for seed in 0..runs_per_cell {
                    let schedule = random_run(
                        config,
                        ModelKind::Es,
                        RandomRunParams::synchronous(f, t as u32 + 2),
                        40,
                        u64::from(seed) * 31 + n as u64,
                    );
                    let outcome = run_schedule(&at_plus2_factory(config), &props, &schedule, 40)
                        .expect("one proposal per process");
                    outcome.check_consensus().expect("consensus holds");
                    max_round =
                        max_round.max(outcome.global_decision_round().expect("decided").get());
                }
                rows.push(FastDecisionRow {
                    n,
                    t,
                    f,
                    runs: runs_per_cell,
                    max_round,
                    bound: t as u32 + 2,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E3: A_{t+2} vs the 2t+2 baseline (Sect. 1.4 comparison) + ablation
// ---------------------------------------------------------------------------

/// One row of the E3 table.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Resilience (with `n = 2t + 1`).
    pub t: usize,
    /// Worst-case synchronous rounds of `A_{t+2}`.
    pub at_plus2: u32,
    /// Worst-case synchronous rounds of the HR-style baseline.
    pub hr_style: u32,
    /// Worst-case synchronous rounds of the rotating-coordinator fallback.
    pub rotating: u32,
    /// Whether the no-Halt strawman (FloodSetWS on derived suspicions)
    /// stays safe in ES (it must not — the ablation).
    pub strawman_safe_in_es: bool,
}

/// E3: worst-case synchronous decision rounds, `A_{t+2}` (t + 2) against
/// the Hurfin–Raynal-style baseline (2t + 2) and the rotating-coordinator
/// fallback (3t + 3), with the Halt-exchange ablation.
///
/// The baselines' worst cases come from their adversarial coordinator-crash
/// schedules (crash each phase's coordinator before it proposes).
///
/// # Panics
///
/// Panics if a baseline violates consensus in its adversarial run.
#[must_use]
pub fn baseline_comparison_table(ts: &[usize]) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    for &t in ts {
        let n = 2 * t + 1;
        let config = SystemConfig::majority(n, t).expect("valid config");
        let props = proposals(n);
        let horizon = 6 * (t as u32 + 2);

        // A_{t+2} decides at t + 2 in every synchronous run; measure the
        // coordinator-crash schedule for apples-to-apples.
        let mut at_worst = 0;
        {
            let mut b = ScheduleBuilder::new(config, ModelKind::Es);
            for p in 0..t {
                b = b.crash_before_send(ProcessId::new(p), Round::new(p as u32 + 1));
            }
            let schedule = b.build(horizon).expect("legal schedule");
            let outcome = run_schedule(&at_plus2_factory(config), &props, &schedule, horizon)
                .expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            at_worst = at_worst.max(outcome.global_decision_round().expect("decided").get());
        }

        // HR-style: crash coordinator p of phase p+1 before its propose
        // round 2p+1.
        let hr_worst = {
            let mut b = ScheduleBuilder::new(config, ModelKind::Es);
            for p in 0..t {
                b = b.crash_before_send(ProcessId::new(p), Round::new(2 * p as u32 + 1));
            }
            let schedule = b.build(horizon).expect("legal schedule");
            let f = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
            let outcome =
                run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            outcome.global_decision_round().expect("decided").get()
        };

        // Rotating coordinator: crash coordinator p before its propose
        // round 3p+2.
        let rc_worst = {
            let mut b = ScheduleBuilder::new(config, ModelKind::Es);
            for p in 0..t {
                b = b.crash_before_send(ProcessId::new(p), Round::new(3 * p as u32 + 2));
            }
            let schedule = b.build(horizon).expect("legal schedule");
            let f = move |i: usize, v: Value| {
                indulgent_consensus::Standalone::new(
                    RotatingCoordinator::new(config, ProcessId::new(i)),
                    v,
                )
            };
            let outcome =
                run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            outcome.global_decision_round().expect("decided").get()
        };

        // Ablation: FloodSetWS without the Halt exchange, on derived
        // suspicions, in an ES run where the minimum-holder is falsely
        // suspected by everyone.
        let strawman_safe_in_es = {
            let mut b =
                ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(t as u32 + 3));
            for r in 0..n {
                if r != 1 {
                    b = b.delay(
                        Round::FIRST,
                        ProcessId::new(1),
                        ProcessId::new(r),
                        Round::new(t as u32 + 3),
                    );
                }
            }
            let schedule = b.build(horizon).expect("legal schedule");
            let f = move |i: usize, v: Value| {
                FloodSetWs::<indulgent_fd::NoDetector>::new(
                    config,
                    ProcessId::new(i),
                    v,
                    Suspicion::Derived,
                )
            };
            // Give p1 the global minimum so isolation splits the estimates.
            let mut split_props = props.clone();
            split_props[1] = Value::new(0);
            let outcome = run_schedule(&f, &split_props, &schedule, horizon)
                .expect("one proposal per process");
            outcome.check_safety().is_ok()
        };

        rows.push(BaselineRow {
            t,
            at_plus2: at_worst,
            hr_style: hr_worst,
            rotating: rc_worst,
            strawman_safe_in_es,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E4: the ◇S variant (Fig. 3)
// ---------------------------------------------------------------------------

/// One row of the E4 table.
#[derive(Debug, Clone)]
pub struct DiamondSRow {
    /// System size.
    pub n: usize,
    /// Resilience.
    pub t: usize,
    /// Worst decision round over random synchronous runs.
    pub sync_max_round: u32,
    /// The bound `t + 2`.
    pub bound: u32,
    /// Decision round under persistent false suspicions (◇S weak accuracy
    /// only): decided via the underlying C, later than `t + 2` but safe.
    pub noisy_round: u32,
}

/// E4: `A_◇S` keeps the `t + 2` fast decision in synchronous runs and
/// stays correct when the detector falsely suspects all but one process
/// forever.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn diamond_s_table(configs: &[(usize, usize)], runs_per_cell: u32) -> Vec<DiamondSRow> {
    let mut rows = Vec::new();
    for &(n, t) in configs {
        let config = SystemConfig::majority(n, t).expect("valid config");
        let props = proposals(n);
        let horizon = 14 * (t as u32 + 2);

        let mut sync_max_round = 0;
        for seed in 0..runs_per_cell {
            let schedule = random_run(
                config,
                ModelKind::Es,
                RandomRunParams::synchronous((seed as usize) % (t + 1), t as u32 + 2),
                horizon,
                u64::from(seed) * 17 + 5,
            );
            let info =
                CrashInfo::new(config.processes().map(|p| schedule.crash_round(p)).collect());
            let trusted = config
                .processes()
                .find(|p| schedule.crash_round(*p).is_none())
                .expect("some correct process");
            let f = move |i: usize, v: Value| {
                let id = ProcessId::new(i);
                let detector = EventuallyStrongDetector::new(
                    info.clone(),
                    Round::FIRST,
                    trusted,
                    SuspicionScript::new(),
                );
                AtPlus2::with_detector(
                    config,
                    id,
                    v,
                    RotatingCoordinator::new(config, id),
                    detector,
                )
            };
            let outcome =
                run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            sync_max_round =
                sync_max_round.max(outcome.global_decision_round().expect("decided").get());
        }

        // Persistent false suspicions of one correct process.
        let noisy_round = {
            let mut script = SuspicionScript::new();
            for k in 1..=horizon {
                for obs in 0..n {
                    if obs != 1 {
                        script.insert((k, obs), [ProcessId::new(1)].into_iter().collect());
                    }
                }
            }
            let info = CrashInfo::none(n);
            let f = move |i: usize, v: Value| {
                let id = ProcessId::new(i);
                let detector = EventuallyStrongDetector::new(
                    info.clone(),
                    Round::FIRST,
                    ProcessId::new(0),
                    script.clone(),
                );
                AtPlus2::with_detector(
                    config,
                    id,
                    v,
                    RotatingCoordinator::new(config, id),
                    detector,
                )
            };
            let schedule = Schedule::failure_free(config, ModelKind::Es);
            let outcome =
                run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            outcome.global_decision_round().expect("decided").get()
        };

        rows.push(DiamondSRow { n, t, sync_max_round, bound: t as u32 + 2, noisy_round });
    }
    rows
}

// ---------------------------------------------------------------------------
// E5: the failure-free optimization (Fig. 4) and the 2-round bound
// ---------------------------------------------------------------------------

/// One row of the E5 table.
#[derive(Debug, Clone)]
pub struct FailureFreeRow {
    /// System size.
    pub n: usize,
    /// Resilience.
    pub t: usize,
    /// Variant name.
    pub variant: &'static str,
    /// Decision round in the failure-free synchronous run.
    pub failure_free_round: u32,
    /// Whether the variant stays safe in adversarial ES runs.
    pub safe: bool,
}

/// A deliberately unsound "decide in round 1" variant used to demonstrate
/// that 2 rounds is a *lower bound* for well-behaved runs: it decides at
/// round 1 on a complete view and violates agreement in an ES run where
/// only one process got the complete view.
#[derive(Debug, Clone)]
struct EagerMin {
    config: SystemConfig,
    est: Value,
    decided: bool,
}

impl RoundProcess for EagerMin {
    type Msg = Value;

    fn send(&mut self, _round: Round) -> Value {
        self.est
    }

    fn deliver(&mut self, round: Round, delivery: &Delivery<Value>) -> Step {
        let min = delivery.current().map(|m| m.msg).min().unwrap_or(self.est);
        self.est = self.est.min(min);
        if self.decided {
            return Step::Continue;
        }
        if round == Round::FIRST && delivery.current().count() == self.config.n() {
            self.decided = true;
            return Step::Decide(self.est);
        }
        if round.get() == self.config.t() as u32 + 2 {
            self.decided = true;
            return Step::Decide(self.est);
        }
        Step::Continue
    }
}

/// E5: the Fig. 4 optimization decides at round 2 in failure-free
/// synchronous runs and remains safe; a hypothetical round-1 variant is
/// shown to violate agreement (the 2-round bound of [11] in action).
///
/// # Panics
///
/// Panics if the Fig. 4 variant misbehaves.
#[must_use]
pub fn failure_free_table(ns: &[usize]) -> Vec<FailureFreeRow> {
    let mut rows = Vec::new();
    for &n in ns {
        let t = (n - 1) / 2;
        let config = SystemConfig::majority(n, t).expect("valid config");
        let props = proposals(n);
        let horizon = 10 * (t as u32 + 2);

        // Fig. 4 optimized A_{t+2}.
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let schedule = Schedule::failure_free(config, ModelKind::Es);
        let outcome =
            run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
        outcome.check_consensus().expect("consensus holds");
        let ff_round = outcome.global_decision_round().expect("decided").get();
        // Safety under adversarial ES runs.
        let mut safe = true;
        for seed in 0..60u64 {
            let schedule = random_run(
                config,
                ModelKind::Es,
                RandomRunParams::eventually_synchronous(t.min(1), 3, 5),
                horizon,
                seed,
            );
            let outcome =
                run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
            safe &= outcome.check_consensus().is_ok();
        }
        rows.push(FailureFreeRow {
            n,
            t,
            variant: "A_t+2 + Fig.4",
            failure_free_round: ff_round,
            safe,
        });

        // The unsound round-1 variant: fast but wrong.
        let f = move |_i: usize, v: Value| EagerMin { config, est: v, decided: false };
        let outcome =
            run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
        let eager_round = outcome.global_decision_round().expect("decided").get();
        // Adversarial ES run: p0 sees a complete round 1 and decides the
        // minimum; the minimum-holder's message to everyone else is delayed,
        // and then *both* the holder and the decider crash (t = 2), so the
        // minimum never reaches the survivors.
        let min_holder = props
            .iter()
            .enumerate()
            .min_by_key(|&(_, v)| *v)
            .map(|(i, _)| ProcessId::new(i))
            .expect("nonempty");
        assert_ne!(min_holder, ProcessId::new(0), "decider and holder must differ");
        let mut b = ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(2));
        for r in 0..n {
            let receiver = ProcessId::new(r);
            if receiver != min_holder && receiver != ProcessId::new(0) {
                b = b.delay(Round::FIRST, min_holder, receiver, Round::new(horizon));
            }
        }
        b = b
            .crash_before_send(min_holder, Round::new(2))
            .crash_before_send(ProcessId::new(0), Round::new(2));
        let schedule = b.build(horizon).expect("legal schedule");
        let outcome =
            run_schedule(&f, &props, &schedule, horizon).expect("one proposal per process");
        rows.push(FailureFreeRow {
            n,
            t,
            variant: "round-1 gambler",
            failure_free_round: eager_round,
            safe: outcome.check_safety().is_ok(),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E6: fast eventual decision, A_{f+2} vs AMR (Fig. 5, Lemma 15)
// ---------------------------------------------------------------------------

/// One row of the E6 table.
#[derive(Debug, Clone)]
pub struct EventualDecisionRow {
    /// Last asynchronous round (the run is synchronous after `k`).
    pub k: u32,
    /// Crashes injected after round `k`.
    pub f: usize,
    /// Worst global-decision round of `A_{f+2}` over the seeds.
    pub af_plus2: u32,
    /// Its bound `k + f + 2`.
    pub af_bound: u32,
    /// Worst global-decision round of the leader-based AMR baseline.
    pub amr: u32,
    /// Its bound `k + 2f + 2`.
    pub amr_bound: u32,
}

/// E6: decision latency after the network stabilizes: `A_{f+2}` meets
/// `k + f + 2`; the AMR-style baseline pays two rounds per crashed leader
/// (up to `k + 2f + 2`). Seeds run serially (or read
/// `INDULGENT_SWEEP_BACKEND`); use [`eventual_decision_table_with`] to
/// fan them over a worker pool.
///
/// Runs use `n = 7, t = 2`: an asynchronous prefix of `k` rounds (seeded
/// random delays), then `f` staggered crashes of the lowest-id processes
/// (the worst victims: they are the next leaders).
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn eventual_decision_table(ks: &[u32], fs: &[usize], seeds: u32) -> Vec<EventualDecisionRow> {
    eventual_decision_table_with(ks, fs, seeds, SweepBackend::from_env())
}

/// [`eventual_decision_table`] with an explicit backend: the independent
/// seeded runs of each `(k, f)` cell are mapped over the pool
/// ([`pooled_map_indexed`]), and the per-seed maxima are reduced in seed
/// order — rows are identical for every backend and thread count.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn eventual_decision_table_with(
    ks: &[u32],
    fs: &[usize],
    seeds: u32,
    backend: SweepBackend,
) -> Vec<EventualDecisionRow> {
    let config = SystemConfig::third(7, 2).expect("valid config");
    let props = proposals(7);
    let mut rows = Vec::new();
    for &k in ks {
        for &f in fs {
            assert!(f <= config.t(), "f must be at most t");
            let horizon = k + 30;
            let per_seed = pooled_map_indexed(u64::from(seeds), backend, |seed| {
                // Asynchronous prefix: random delays in rounds 1..=k; then
                // staggered crashes at rounds k+1, k+2, ... (before send).
                let base = random_run(
                    config,
                    ModelKind::Es,
                    RandomRunParams::eventually_synchronous(0, 1, k + 1),
                    horizon,
                    seed * 13 + u64::from(k),
                );
                let mut b =
                    ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(k + 1));
                for (r, s, d, fate) in base.overrides() {
                    if let indulgent_sim::MessageFate::Delay(a) = fate {
                        b = b.delay(r, s, d, a);
                    }
                }
                for c in 0..f {
                    b = b.crash_before_send(ProcessId::new(c), Round::new(k + 1 + c as u32));
                }
                let schedule = b.build(horizon).expect("legal schedule");

                let af = move |i: usize, v: Value| AfPlus2::new(config, ProcessId::new(i), v);
                let outcome = run_schedule(&af, &props, &schedule, horizon)
                    .expect("one proposal per process");
                outcome.check_consensus().expect("consensus holds");
                let af_round = outcome.global_decision_round().expect("decided").get();

                let amr = move |i: usize, v: Value| LeaderEcho::new(config, ProcessId::new(i), v);
                let outcome = run_schedule(&amr, &props, &schedule, horizon)
                    .expect("one proposal per process");
                outcome.check_consensus().expect("consensus holds");
                let amr_round = outcome.global_decision_round().expect("decided").get();
                (af_round, amr_round)
            });
            let af_worst = per_seed.iter().map(|&(af, _)| af).max().unwrap_or(0);
            let amr_worst = per_seed.iter().map(|&(_, amr)| amr).max().unwrap_or(0);
            rows.push(EventualDecisionRow {
                k,
                f,
                af_plus2: af_worst,
                af_bound: k + f as u32 + 2,
                amr: amr_worst,
                amr_bound: k + 2 * f as u32 + 2,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E7: early decision (Sect. 6 first paragraph)
// ---------------------------------------------------------------------------

/// One row of the E7 table.
#[derive(Debug, Clone)]
pub struct EarlyDecisionRow {
    /// Actual number of crashes in the runs.
    pub f: usize,
    /// Worst decision round of `A_{t+2}` (t = 2, n = 5) with `f` crashes.
    pub at_plus2: u32,
    /// Worst decision round of `A_{f+2}` (t = 2, n = 7) with `f` crashes.
    pub af_plus2: u32,
    /// Worst decision round of the SCS early-deciding uniform consensus
    /// (`EarlyFloodSet`, t = 2, n = 5) with `f` crashes — bound
    /// `min(f + 2, t + 1)`.
    pub early_scs: u32,
    /// The early-decision lower bound `f + 2`.
    pub bound: u32,
}

/// E7: the `f + 2` early-decision bound in synchronous runs. `A_{t+2}`
/// always pays `t + 2` regardless of the actual `f` (the paper notes
/// early-decision tightness was open, resolved in [5]); `A_{f+2}` (when
/// `t < n/3`) already meets `f + 2`. Seeds run serially (or read
/// `INDULGENT_SWEEP_BACKEND`); use [`early_decision_table_with`] for a
/// worker pool.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn early_decision_table(seeds: u32) -> Vec<EarlyDecisionRow> {
    early_decision_table_with(seeds, SweepBackend::from_env())
}

/// [`early_decision_table`] with an explicit backend: seeds are mapped
/// over the pool and their maxima reduced in seed order, so rows are
/// identical for every backend and thread count.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn early_decision_table_with(seeds: u32, backend: SweepBackend) -> Vec<EarlyDecisionRow> {
    let at_config = SystemConfig::majority(5, 2).expect("valid config");
    let af_config = SystemConfig::third(7, 2).expect("valid config");
    let mut rows = Vec::new();
    let scs_config = SystemConfig::synchronous(5, 2).expect("valid config");
    for f in 0..=2usize {
        let per_seed = pooled_map_indexed(u64::from(seeds), backend, |seed| {
            let schedule = random_run(
                at_config,
                ModelKind::Es,
                RandomRunParams::synchronous(f, 3),
                40,
                seed * 7 + f as u64,
            );
            let outcome = run_schedule(&at_plus2_factory(at_config), &proposals(5), &schedule, 40)
                .expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            let at_round = outcome.global_decision_round().expect("decided").get();

            let schedule = random_run(
                af_config,
                ModelKind::Es,
                RandomRunParams::synchronous(f, f.max(1) as u32),
                40,
                seed * 11 + f as u64,
            );
            let af = move |i: usize, v: Value| AfPlus2::new(af_config, ProcessId::new(i), v);
            let outcome =
                run_schedule(&af, &proposals(7), &schedule, 40).expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            let af_round = outcome.global_decision_round().expect("decided").get();

            let schedule = random_run(
                scs_config,
                ModelKind::Scs,
                RandomRunParams::synchronous(f, f.max(1) as u32),
                40,
                seed * 19 + f as u64,
            );
            let early = move |_i: usize, v: Value| EarlyFloodSet::new(scs_config, v);
            let outcome = run_schedule(&early, &proposals(5), &schedule, 40)
                .expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            let scs_round = outcome.global_decision_round().expect("decided").get();
            (at_round, af_round, scs_round)
        });
        rows.push(EarlyDecisionRow {
            f,
            at_plus2: per_seed.iter().map(|&(at, _, _)| at).max().unwrap_or(0),
            af_plus2: per_seed.iter().map(|&(_, af, _)| af).max().unwrap_or(0),
            early_scs: per_seed.iter().map(|&(_, _, scs)| scs).max().unwrap_or(0),
            bound: f as u32 + 2,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E8: the SCS contrast (t + 1 vs t + 2)
// ---------------------------------------------------------------------------

/// One row of the E8 table.
#[derive(Debug, Clone)]
pub struct ScsContrastRow {
    /// System size.
    pub n: usize,
    /// Resilience.
    pub t: usize,
    /// FloodSet's exhaustive worst case in SCS (`t + 1`).
    pub floodset_scs: u32,
    /// `A_{t+2}`'s exhaustive worst case in ES (`t + 2`), when `t < n/2`
    /// admits an indulgent algorithm at all (`None` otherwise — itself a
    /// price of indulgence: SCS tolerates `t <= n - 2`).
    pub at_plus2_es: Option<u32>,
    /// Whether the t-round truncated FloodSet was caught violating
    /// agreement (the `t + 1` bound is tight from below).
    pub truncated_violates: bool,
}

/// E8: the price of indulgence, head to head: FloodSet's exhaustive `t+1`
/// in SCS against `A_{t+2}`'s exhaustive `t+2` in ES, plus the witness
/// that deciding at round `t` in SCS is impossible. The exhaustive sweeps
/// run on `backend`.
///
/// # Panics
///
/// Panics if FloodSet or `A_{t+2}` misbehave in any serial run.
#[must_use]
pub fn scs_contrast_table(
    configs: &[(usize, usize)],
    backend: SweepBackend,
) -> Vec<ScsContrastRow> {
    let mut rows = Vec::new();
    for &(n, t) in configs {
        let scs_config = SystemConfig::synchronous(n, t).expect("valid SCS config");
        let props = proposals(n);
        let fs = move |_i: usize, v: Value| FloodSet::new(scs_config, v);
        let fs_report = worst_case_decision_round_with(
            &fs,
            scs_config,
            ModelKind::Scs,
            &props,
            t as u32 + 1,
            t as u32 + 3,
            backend,
        )
        .expect("FloodSet satisfies consensus in SCS");

        let es_worst = SystemConfig::majority(n, t).ok().map(|es_config| {
            worst_case_decision_round_with(
                &at_plus2_factory(es_config),
                es_config,
                ModelKind::Es,
                &props,
                t as u32 + 2,
                12 * (t as u32 + 2),
                backend,
            )
            .expect("A_t+2 satisfies consensus in ES")
            .worst_round
            .get()
        });

        // Truncated FloodSet deciding at round t must be caught.
        let early = t as u32;
        let trunc = move |_i: usize, v: Value| FloodSet::deciding_at(Round::new(early), v);
        let caught = worst_case_decision_round_with(
            &trunc,
            scs_config,
            ModelKind::Scs,
            &props,
            t as u32 + 1,
            t as u32 + 3,
            backend,
        )
        .is_err();

        rows.push(ScsContrastRow {
            n,
            t,
            floodset_scs: fs_report.worst_round.get(),
            at_plus2_es: es_worst,
            truncated_violates: caught,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E9: decision latency vs the synchrony round K
// ---------------------------------------------------------------------------

/// One row of the E9 table.
#[derive(Debug, Clone)]
pub struct AsynchronyRow {
    /// The eventual-synchrony round `K` of the runs.
    pub k: u32,
    /// Mean global-decision round over the seeds.
    pub mean_round: f64,
    /// Median global-decision round.
    pub p50: u32,
    /// 99th-percentile global-decision round.
    pub p99: u32,
    /// Worst global-decision round over the seeds.
    pub max_round: u32,
}

/// E9: how `A_{t+2}`'s decision latency degrades with the length of the
/// asynchronous prefix (`n = 5, t = 2`, seeded random delays, one crash).
/// `K = 1` gives the synchronous `t + 2 = 4`; longer prefixes push
/// decisions into the fallback consensus. Seeds run serially (or read
/// `INDULGENT_SWEEP_BACKEND`); use [`asynchrony_table_with`] for a worker
/// pool.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn asynchrony_table(ks: &[u32], seeds: u32) -> Vec<AsynchronyRow> {
    asynchrony_table_with(ks, seeds, SweepBackend::from_env())
}

/// [`asynchrony_table`] with an explicit backend: seeds are mapped over
/// the pool and tallied in seed order, so rows are identical for every
/// backend and thread count.
///
/// # Panics
///
/// Panics if a run violates consensus.
#[must_use]
pub fn asynchrony_table_with(ks: &[u32], seeds: u32, backend: SweepBackend) -> Vec<AsynchronyRow> {
    let config = SystemConfig::majority(5, 2).expect("valid config");
    let props = proposals(5);
    let mut rows = Vec::new();
    for &k in ks {
        let horizon = k + 40;
        let rounds = pooled_map_indexed(u64::from(seeds), backend, |seed| {
            let schedule = random_run(
                config,
                ModelKind::Es,
                RandomRunParams::eventually_synchronous(1, k.max(1), k),
                horizon,
                seed * 3 + u64::from(k),
            );
            let outcome = run_schedule(&at_plus2_factory(config), &props, &schedule, horizon)
                .expect("one proposal per process");
            outcome.check_consensus().expect("consensus holds");
            outcome.global_decision_round().expect("decided")
        });
        let mut hist = crate::stats::RoundHistogram::new();
        for round in rounds {
            hist.record(round);
        }
        rows.push(AsynchronyRow {
            k,
            mean_round: hist.mean().expect("samples recorded"),
            p50: hist.percentile(50.0).expect("samples recorded").get(),
            p99: hist.percentile(99.0).expect("samples recorded").get(),
            max_round: hist.max().expect("samples recorded").get(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_holds_for_smallest_config() {
        let rows = lower_bound_table(&[(3, 1)], SweepBackend::parallel(2));
        let at = rows.iter().find(|r| r.algorithm == "A_t+2").unwrap();
        assert_eq!(at.worst_round, at.bound); // exactly t + 2
        assert!(at.bivalent_initial);
        let hr = rows.iter().find(|r| r.algorithm == "HR-style").unwrap();
        assert!(hr.worst_round >= hr.bound); // >= t + 2 (it is 2t + 2)
    }

    #[test]
    fn e2_shape_holds_for_one_cell() {
        let rows = fast_decision_table(&[5], 20);
        for row in rows {
            assert_eq!(row.max_round, row.bound, "A_t+2 decides exactly at t+2: {row:?}");
        }
    }

    #[test]
    fn e3_shape_t1_and_t2() {
        let rows = baseline_comparison_table(&[1, 2]);
        for row in &rows {
            assert_eq!(row.at_plus2, row.t as u32 + 2);
            assert_eq!(row.hr_style, 2 * row.t as u32 + 2);
            assert_eq!(row.rotating, 3 * row.t as u32 + 3);
            assert!(!row.strawman_safe_in_es, "the ablation must break: {row:?}");
        }
    }

    #[test]
    fn e5_shape() {
        let rows = failure_free_table(&[5]);
        let opt = rows.iter().find(|r| r.variant == "A_t+2 + Fig.4").unwrap();
        assert_eq!(opt.failure_free_round, 2);
        assert!(opt.safe);
        let gambler = rows.iter().find(|r| r.variant == "round-1 gambler").unwrap();
        assert_eq!(gambler.failure_free_round, 1);
        assert!(!gambler.safe, "round-1 decision must violate agreement: {gambler:?}");
    }

    #[test]
    fn e6_shape_small() {
        let rows = eventual_decision_table(&[0, 2], &[0, 2], 10);
        for row in &rows {
            assert!(row.af_plus2 <= row.af_bound, "A_f+2 exceeded k+f+2: {row:?}");
            assert!(row.amr <= row.amr_bound, "AMR exceeded k+2f+2: {row:?}");
        }
        // The separation at f = 2, k = 0: AMR needs more rounds than A_f+2.
        let sep = rows.iter().find(|r| r.k == 0 && r.f == 2).unwrap();
        assert!(sep.amr > sep.af_plus2, "expected separation: {sep:?}");
    }

    #[test]
    fn e9_synchronous_baseline() {
        let rows = asynchrony_table(&[1], 10);
        assert_eq!(rows[0].max_round, 4); // t + 2
    }

    #[test]
    fn seeded_tables_identical_across_backends() {
        // The pooled seed map returns results in seed order, so every
        // seeded table is bit-identical for any thread count.
        let serial = format!(
            "{:?} {:?} {:?}",
            early_decision_table_with(8, SweepBackend::Serial),
            eventual_decision_table_with(&[0, 2], &[0, 1], 6, SweepBackend::Serial),
            asynchrony_table_with(&[1, 3], 8, SweepBackend::Serial),
        );
        let pooled = format!(
            "{:?} {:?} {:?}",
            early_decision_table_with(8, SweepBackend::parallel(3)),
            eventual_decision_table_with(&[0, 2], &[0, 1], 6, SweepBackend::parallel(3)),
            asynchrony_table_with(&[1, 3], 8, SweepBackend::parallel(3)),
        );
        assert_eq!(serial, pooled);
    }
}
