//! E5 — the failure-free optimization (paper Fig. 4): decide at round 2 in
//! every failure-free synchronous run, matching the 2-round lower bound of
//! well-behaved runs; a hypothetical round-1 decider is exhibited violating
//! agreement.

use indulgent_bench::experiments::failure_free_table;
use indulgent_bench::render_table;

fn main() {
    let rows = failure_free_table(&[5, 7, 9]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.t.to_string(),
                r.variant.to_string(),
                r.failure_free_round.to_string(),
                if r.safe { "safe" } else { "UNSAFE" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E5 — failure-free synchronous runs: Fig. 4 optimization vs a round-1 gambler",
            &["n", "t", "variant", "failure-free round", "safety in ES"],
            &table,
        )
    );
    println!("Two rounds is optimal: deciding at round 1 costs agreement (the [11] bound).");
}
