//! E2 — `A_{t+2}`'s fast decision (Lemma 13): global decision at exactly
//! `t + 2` in every synchronous run, across `(n, t, f)`.

use indulgent_bench::experiments::fast_decision_table;
use indulgent_bench::render_table;

fn main() {
    let rows = fast_decision_table(&[4, 5, 6, 7, 8, 9], 200);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.t.to_string(),
                r.f.to_string(),
                r.runs.to_string(),
                r.max_round.to_string(),
                r.bound.to_string(),
                if r.max_round == r.bound { "ok" } else { "MISMATCH" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E2 — A_t+2 global decision round over random synchronous runs (Lemma 13)",
            &["n", "t", "f", "runs", "max round", "t+2", "check"],
            &table,
        )
    );
}
