//! E3 — the headline comparison (paper Sect. 1.4): `A_{t+2}` decides in
//! `t + 2` rounds where the best previously known indulgent algorithm
//! (Hurfin–Raynal style) needs `2t + 2`, and a Chandra–Toueg-style
//! rotating coordinator needs `3t + 3`. Includes the Halt-exchange
//! ablation: FloodSetWS without suspicion exchange violates agreement in
//! ES.

use indulgent_bench::experiments::baseline_comparison_table;
use indulgent_bench::render_table;

fn main() {
    let rows = baseline_comparison_table(&[1, 2, 3, 4, 5]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.t.to_string(),
                (2 * r.t + 1).to_string(),
                r.at_plus2.to_string(),
                r.hr_style.to_string(),
                r.rotating.to_string(),
                if r.strawman_safe_in_es { "safe (?)" } else { "UNSAFE" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E3 — worst-case synchronous decision rounds: A_t+2 vs baselines",
            &["t", "n", "A_t+2", "HR-style (2t+2)", "RC (3t+3)", "no-Halt strawman in ES"],
            &table,
        )
    );
    println!("A_t+2 wins by a factor approaching 2x (resp. 3x) as t grows;");
    println!("dropping the Halt exchange (strawman) loses agreement in ES.");
}
