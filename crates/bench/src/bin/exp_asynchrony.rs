//! E9 — decision latency versus the eventual-synchrony round `K`:
//! synchronous runs decide at `t + 2`; the longer the asynchronous prefix,
//! the later the (fallback) decision — but safety never budges.

use indulgent_bench::experiments::asynchrony_table_with;
use indulgent_bench::{render_table, sweep_backend_from_args};

fn main() {
    // `--threads N` fans the independent seeded runs over the sweep
    // engine's worker pool; rows are identical for every thread count.
    let backend = sweep_backend_from_args(std::env::args().skip(1));
    let rows = asynchrony_table_with(&[1, 2, 3, 5, 7, 9], 200, backend);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                format!("{:.2}", r.mean_round),
                r.p50.to_string(),
                r.p99.to_string(),
                r.max_round.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E9 — A_t+2 (n=5, t=2) decision round vs synchrony round K",
            &["K", "mean round", "p50", "p99", "max round"],
            &table,
        )
    );
    println!("K = 1 is the synchronous case (t + 2 = 4); latency grows with the prefix.");
}
