//! S1 — networked-service load: open-loop client fleets against the
//! `indulgent-server` replicated-KV service over real TCP sockets.
//!
//! The generator is *open loop*: every connection sends its requests on
//! a fixed arrival schedule (global rate `--rate`) regardless of when
//! acknowledgements come back, so measured latency reflects the service
//! under sustained load rather than a closed feedback loop that slows
//! down whenever the service does.
//!
//! Nothing is timed until the correctness gate passes (mirroring
//! `exp_log_throughput`'s refuse-to-publish discipline):
//!
//! * a scripted workload run over the in-process [`LocalKv`] layer and
//!   over the framed-TCP [`RemoteKv`] layer must produce *identical*
//!   responses — the transport adds no semantics;
//! * duplicate request ids (same-connection retries and kill-the-client
//!   reconnects) must be applied exactly once and replay byte-identical
//!   acknowledgements;
//! * a concurrent warm-up fleet must pass the full server-side
//!   [`ServiceAudit::check`] — per-slot replica agreement, exactly-once
//!   applies, and linearizability-by-replay of every acknowledgement —
//!   plus the client-side checks (every request acked once, ack slots
//!   monotone per connection).
//!
//! The timed fleet re-asserts all of that, then reports commands/s and
//! p50/p99 ack latency. Emits `BENCH_server.json` (`BENCH_SERVER_JSON`
//! overrides the path, `0` skips); CI uploads it and the warn-only perf
//! guard diffs `commands_per_second` against the committed baseline.
//!
//! ```text
//! cargo run --release --bin exp_server_load -- --conns 256 --commands 8000 --rate 4000
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use indulgent_model::{ClientId, RequestId};
use indulgent_server::{
    EngineConfig, KvOp, KvServer, KvService, LocalKv, Outcome, PipeClient, RemoteKv, Response,
    ServiceAudit,
};

/// Deterministic op mix: connection `c`'s `i`-th request alternates puts
/// and gets over a shared 512-key space, so fleets contend on keys and
/// gets observe other connections' writes.
fn op_for(c: u64, i: u64) -> KvOp {
    let key = ((c * 31 + i * 7) % 512) as u16;
    if (c + i).is_multiple_of(2) {
        KvOp::Put { key, value: (c * 100_000 + i) as u32 }
    } else {
        KvOp::Get { key }
    }
}

/// What one connection's worker observed during a fleet run.
struct ConnReport {
    /// Ack latency per request (actual send -> matching ack).
    latencies: Vec<Duration>,
}

/// Drives `conns` open-loop connections of `per_conn` requests each at a
/// global arrival rate of `rate` requests/second. Panics on any
/// client-side invariant violation: a request acked zero or multiple
/// times, an ack for an unknown request, or per-connection ack slots
/// going backwards (the engine applies slots in order and TCP preserves
/// it, so non-monotone slots mean the service reordered acks).
fn run_fleet(addr: SocketAddr, conns: u64, per_conn: u64, rate: f64) -> (Vec<Duration>, Duration) {
    let barrier = Arc::new(Barrier::new(usize::try_from(conns).expect("conns fits usize") + 1));
    let mut workers = Vec::new();
    for c in 0..conns {
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || -> ConnReport {
            let mut client =
                PipeClient::connect(addr, ClientId(c), Duration::from_millis(1)).expect("connect");
            barrier.wait();
            let start = Instant::now();
            // Global request k is due at start + k/rate; connection c
            // owns requests c, c + conns, c + 2·conns, ...
            let due = |i: u64| start + Duration::from_secs_f64((c + i * conns) as f64 / rate);
            let mut sent = 0u64;
            let mut acked = 0u64;
            let mut in_flight: HashMap<RequestId, Instant> = HashMap::new();
            let mut latencies = Vec::with_capacity(per_conn as usize);
            let mut last_slot = 0u64;
            let deadline = Instant::now() + Duration::from_secs(120);
            while acked < per_conn {
                assert!(
                    Instant::now() < deadline,
                    "conn {c}: fleet run wedged ({acked}/{per_conn} acked)"
                );
                while sent < per_conn && Instant::now() >= due(sent) {
                    let id = RequestId(sent);
                    client.send(id, op_for(c, sent)).expect("open-loop send");
                    in_flight.insert(id, Instant::now());
                    sent += 1;
                }
                for ack in client.drain_acks().expect("drain acks") {
                    let sent_at = in_flight
                        .remove(&ack.request)
                        .unwrap_or_else(|| panic!("conn {c}: unknown or duplicate ack {:?}", ack));
                    latencies.push(sent_at.elapsed());
                    let slot = ack.outcome.slot();
                    assert!(
                        slot >= last_slot,
                        "conn {c}: ack slots went backwards ({slot} after {last_slot})"
                    );
                    last_slot = slot;
                    acked += 1;
                }
            }
            assert!(in_flight.is_empty(), "conn {c}: {} requests never acked", in_flight.len());
            ConnReport { latencies }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut all = Vec::with_capacity((conns * per_conn) as usize);
    for w in workers {
        all.extend(w.join().expect("connection worker panicked").latencies);
    }
    (all, start.elapsed())
}

/// Audits a finished server run against the fleet that drove it.
fn check_audit(audit: &ServiceAudit, expected_commands: u64, label: &str) {
    audit.check().unwrap_or_else(|e| panic!("{label}: service audit failed: {e}"));
    assert_eq!(
        audit.committed_commands, expected_commands,
        "{label}: every submitted command commits exactly once"
    );
}

/// Gate 1 — layered differential: the same scripted workload through the
/// in-process layer and through framed TCP yields identical responses.
fn gate_differential() {
    // Batch size 1 makes sequencing deterministic for sequential calls:
    // both layers must produce byte-identical responses, slots included.
    let script: Vec<KvOp> = (0..40).map(|i| op_for(3, i)).collect();

    let run = |responses: &mut Vec<Response>, mut call: Box<dyn FnMut(KvOp) -> Response>| {
        for op in &script {
            responses.push(call(*op));
        }
    };

    let local_server = KvServer::bind("127.0.0.1:0", gate_config()).expect("bind");
    let mut local = LocalKv::connect(&local_server.engine(), ClientId(3));
    let mut local_responses = Vec::new();
    run(&mut local_responses, Box::new(move |op| dispatch(&mut local, op)));
    check_audit(&local_server.shutdown(), script.len() as u64, "differential/local");

    let remote_server = KvServer::bind("127.0.0.1:0", gate_config()).expect("bind");
    let mut remote = RemoteKv::connect(remote_server.addr(), ClientId(3)).expect("connect");
    let mut remote_responses = Vec::new();
    run(&mut remote_responses, Box::new(move |op| dispatch(&mut remote, op)));
    check_audit(&remote_server.shutdown(), script.len() as u64, "differential/remote");

    assert_eq!(
        local_responses, remote_responses,
        "the TCP layer must answer identically to the in-process layer"
    );
}

fn dispatch<S: KvService>(s: &mut S, op: KvOp) -> Response {
    match op {
        KvOp::Put { key, value } => s.put(key, value).expect("put acked"),
        KvOp::Get { key } => s.get(key).expect("get acked"),
    }
}

fn gate_config() -> EngineConfig {
    EngineConfig::default_5().with_batch_size(1).with_pipeline_depth(2)
}

/// Gate 2 — exactly-once: same-connection duplicate ids and a client
/// killed mid-request that reconnects and replays.
fn gate_exactly_once() {
    let server = KvServer::bind("127.0.0.1:0", gate_config()).expect("bind");
    let addr = server.addr();

    // Same connection, same request id sent twice: one slot, identical acks.
    let mut kv = RemoteKv::connect(addr, ClientId(900)).expect("connect");
    let first = kv.call_with(RequestId(0), KvOp::Put { key: 9, value: 1 }).expect("acked");
    let retry = kv.call_with(RequestId(0), KvOp::Put { key: 9, value: 1 }).expect("acked");
    assert_eq!(first, retry, "a same-connection retry replays the original ack");

    // Kill a client mid-request: send, drop the socket without reading
    // the ack, reconnect with the same session, replay the same id.
    let mut doomed =
        PipeClient::connect(addr, ClientId(901), Duration::from_millis(1)).expect("connect");
    doomed.send(RequestId(0), KvOp::Put { key: 10, value: 77 }).expect("send");
    drop(doomed); // socket closes; the command may or may not be batched yet

    let mut revived = RemoteKv::connect_from(addr, ClientId(901), RequestId(0)).expect("reconnect");
    let ack = revived.call_with(RequestId(0), KvOp::Put { key: 10, value: 77 }).expect("acked");
    match ack.outcome {
        Outcome::Put { .. } => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    // And the session keeps working past the replayed request.
    let read = revived.get(10).expect("get acked");
    match read.outcome {
        Outcome::Get { value, .. } => assert_eq!(value, Some(77)),
        other => panic!("unexpected outcome {other:?}"),
    }

    let audit = server.shutdown();
    audit.check().expect("exactly-once gate audit");
    // 2 distinct commands from client 900's pair of sends is 1, plus the
    // killed client's put (applied once no matter when it died) and the
    // follow-up get.
    assert_eq!(audit.committed_commands, 3, "duplicates and replays apply exactly once");
    assert!(audit.dedup_hits >= 1, "the dedup layer absorbed at least the same-conn retry");
}

/// Gate 3 — a concurrent warm-up fleet passes the full audit.
fn gate_concurrent(batch: usize, depth: u64) {
    let config = EngineConfig::default_5().with_batch_size(batch).with_pipeline_depth(depth);
    let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
    let (latencies, _) = run_fleet(server.addr(), 16, 8, 2_000.0);
    assert_eq!(latencies.len(), 16 * 8);
    check_audit(&server.shutdown(), 16 * 8, "concurrent gate");
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str, default: u64| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args[i + 1].parse::<u64>().unwrap_or_else(|_| panic!("usage: {name} N")))
            .unwrap_or(default)
    };
    let conns = arg("--conns", 256).max(1);
    let commands = arg("--commands", 8_000).max(conns);
    let rate = arg("--rate", 4_000).max(1) as f64;
    let batch = usize::try_from(arg("--batch", 8).max(1)).expect("batch fits usize");
    let depth = arg("--depth", 4).max(1);
    let per_conn = commands / conns;
    let total = per_conn * conns; // divisibility remainder dropped

    // ── Correctness gate: nothing is timed until all of this passes ──
    gate_differential();
    gate_exactly_once();
    gate_concurrent(batch, depth);
    println!(
        "validation gate passed: local/remote differential, exactly-once retries + reconnect, concurrent audit\n"
    );

    // ── Timed open-loop fleet ──
    let config = EngineConfig::default_5().with_batch_size(batch).with_pipeline_depth(depth);
    let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
    let (mut latencies, elapsed) = run_fleet(server.addr(), conns, per_conn, rate);
    let audit = server.shutdown();
    check_audit(&audit, total, "timed fleet");

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let max = *latencies.last().expect("non-empty fleet");
    let rate_measured = total as f64 / elapsed.as_secs_f64();

    println!(
        "S1 — networked-service load (n=5, t=2, batch {batch}, depth {depth})\n\
         conns {conns}, commands {total}, offered rate {rate:.0}/s\n\
         elapsed {:.2}s, acked rate {rate_measured:.0} commands/s\n\
         ack latency p50 {:.2}ms, p99 {:.2}ms, max {:.2}ms\n\
         dedup hits {}, duplicate applies {}",
        elapsed.as_secs_f64(),
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        audit.dedup_hits,
        audit.duplicate_applies,
    );

    emit_json(conns, total, rate, batch, depth, rate_measured, p50, p99, max);
}

/// Writes `BENCH_server.json` at the workspace root; `BENCH_SERVER_JSON`
/// overrides the path, `0` skips the file.
#[allow(clippy::too_many_arguments)]
fn emit_json(
    conns: u64,
    commands: u64,
    offered_rate: f64,
    batch: usize,
    depth: u64,
    commands_per_second: f64,
    p50: Duration,
    p99: Duration,
    max: Duration,
) {
    let path = std::env::var("BENCH_SERVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json").into());
    if path == "0" {
        return;
    }
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"server_load\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": 5, \"t\": 2, \"conns\": {conns}, \"commands\": {commands}, \"offered_rate\": {offered_rate:.0}, \"batch_size\": {batch}, \"pipeline_depth\": {depth}}},"
    );
    let _ = writeln!(json, "  \"commands_per_second\": {commands_per_second:.1},");
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3
    );
    json.push_str("}\n");

    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}
