//! S1 — networked-service load: open-loop client fleets against the
//! `indulgent-server` replicated-KV service over real TCP sockets.
//!
//! The generator is *open loop*: every connection sends its requests on
//! a fixed arrival schedule (global rate `--rate`) regardless of when
//! acknowledgements come back, so measured latency reflects the service
//! under sustained load rather than a closed feedback loop that slows
//! down whenever the service does.
//!
//! Nothing is timed until the correctness gate passes (mirroring
//! `exp_log_throughput`'s refuse-to-publish discipline):
//!
//! * a scripted workload run over the in-process [`LocalKv`] layer and
//!   over the framed-TCP [`RemoteKv`] layer must produce *identical*
//!   responses — with leases **on and off** — so neither the transport
//!   nor the read fast path adds semantics;
//! * duplicate request ids (same-connection retries and kill-the-client
//!   reconnects) must be applied exactly once and replay byte-identical
//!   acknowledgements, fast reads included;
//! * a concurrent warm-up fleet (lease reads enabled) must pass the full
//!   server-side [`ServiceAudit::check`] — per-slot replica agreement,
//!   exactly-once applies, and linearizability-by-replay of every
//!   acknowledgement *and every fast read* — plus the client-side checks
//!   (every request acked once, ack linearization points monotone per
//!   connection);
//! * a cross-shard differential: the same seeded multi-key workload runs
//!   through `--shards 1`, `2`, and `4` and every acknowledged value and
//!   the merged final store must match the single-group run key-for-key
//!   (slots are shard-local, so equivalence is on values, never slots);
//! * a crash-recovery pass: a durable leased *two-shard* server is
//!   `kill`ed mid-history and its successor must burn a strictly newer
//!   lease epoch on **every shard** before serving, answer correctly,
//!   and pass the combined audit (per-shard lease-state dumps land in
//!   the durability directory for CI artifacts when anything trips).
//!
//! The timed section then measures three fleets at the same offered
//! rate: the classic mixed fleet (sequenced reads, the historical
//! baseline scenario), a read-heavy fleet (`--read-ratio`, default
//! 0.9) over the lease fast path, and the same read-heavy fleet over
//! the sequenced escape hatch. Fleet runs yield the throughput and
//! write-latency numbers; the per-op *read* latencies feeding
//! `read_speedup_p50` come from a closed-loop probe (one session,
//! sequential gets, identical in both modes) against each read-heavy
//! server right after its fleet drains. The probe exists because the
//! open-loop fleet's many client threads floor every observed ack at
//! the scheduler quantum on small CI machines (~8 ms on one CPU,
//! independent of read path), burying a fast path that serves in
//! microseconds; the closed-loop probe measures the service time
//! itself, and runs identically against both paths so the ratio is
//! apples-to-apples.
//!
//! A final *sharded sweep* re-runs the lease-read fleet at shard counts
//! 1, 2, …, `--shards` (powers of two), every run offered the same
//! elevated rate (`--rate × --shards`) so each measures saturated
//! capacity and the last/first throughput ratio reads as scaling rather
//! than admission control. Emits `BENCH_server.json`
//! (`BENCH_SERVER_JSON` overrides the path, `0` skips) with a
//! `sharded` block (`commands_per_second` per shard count); CI uploads
//! it and the warn-only perf guard diffs `commands_per_second`,
//! `read_heavy.commands_per_second`, `read_heavy.read_speedup_p50`,
//! the `--shards 1` sweep point, and the shards=4/shards=1 scaling
//! ratio against the committed baseline.
//!
//! ```text
//! cargo run --release --bin exp_server_load -- --conns 256 --commands 8000 --rate 4000 --read-ratio 0.9 --shards 4
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use indulgent_model::{ClientId, RequestId};
use indulgent_obs::Histogram;
use indulgent_server::{
    lease, remote_stats, shard_dir, DurabilityConfig, EngineConfig, KvOp, KvServer, KvService,
    LocalKv, Outcome, PipeClient, ReadPath, RemoteKv, Response, ShardedAudit, StatsReport,
};

/// Deterministic op mix: connection `c`'s `i`-th request is a read with
/// probability `read_pct`/100 (decided by a hash so the mix is uniform,
/// not periodic) over a shared 512-key space, so fleets contend on keys
/// and reads observe other connections' writes.
fn op_for(c: u64, i: u64, read_pct: u64) -> KvOp {
    let key = ((c * 31 + i * 7) % 512) as u16;
    let mix = (c * 31 + i * 7).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
    if mix % 100 < read_pct {
        KvOp::Get { key }
    } else {
        KvOp::Put { key, value: (c * 100_000 + i) as u32 }
    }
}

/// What one connection's worker observed during a fleet run: ack
/// latencies split by operation kind (reads classified by the outcome
/// that served them — `Get` for sequenced, `Read` for the fast path).
struct ConnReport {
    reads: Vec<Duration>,
    writes: Vec<Duration>,
}

/// A fleet's pooled latency observations.
struct FleetResult {
    reads: Vec<Duration>,
    writes: Vec<Duration>,
    elapsed: Duration,
}

impl FleetResult {
    fn total(&self) -> u64 {
        (self.reads.len() + self.writes.len()) as u64
    }
}

/// Drives `conns` open-loop connections of `per_conn` requests each at a
/// global arrival rate of `rate` requests/second with the given read
/// mix. Panics on any client-side invariant violation: a request acked
/// zero or multiple times, an ack for an unknown request, or
/// per-connection linearization points (slots and read indices share
/// one monotone order) going backwards.
fn run_fleet(addr: SocketAddr, conns: u64, per_conn: u64, rate: f64, read_pct: u64) -> FleetResult {
    let barrier = Arc::new(Barrier::new(usize::try_from(conns).expect("conns fits usize") + 1));
    let mut workers = Vec::new();
    for c in 0..conns {
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || -> ConnReport {
            let mut client =
                PipeClient::connect(addr, ClientId(c), Duration::from_millis(1)).expect("connect");
            barrier.wait();
            let start = Instant::now();
            // Global request k is due at start + k/rate; connection c
            // owns requests c, c + conns, c + 2·conns, ...
            let due = |i: u64| start + Duration::from_secs_f64((c + i * conns) as f64 / rate);
            let mut sent = 0u64;
            let mut acked = 0u64;
            let mut in_flight: HashMap<RequestId, Instant> = HashMap::new();
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            // Linearization points are per shard group: `(shard, slot)`.
            // Within one shard a connection's points must be monotone;
            // across shards the slot spaces are independent.
            let mut last_point: HashMap<u32, u64> = HashMap::new();
            let deadline = Instant::now() + Duration::from_secs(120);
            while acked < per_conn {
                assert!(
                    Instant::now() < deadline,
                    "conn {c}: fleet run wedged ({acked}/{per_conn} acked)"
                );
                while sent < per_conn && Instant::now() >= due(sent) {
                    let id = RequestId(sent);
                    client.send(id, op_for(c, sent, read_pct)).expect("open-loop send");
                    in_flight.insert(id, Instant::now());
                    sent += 1;
                }
                for ack in client.drain_acks().expect("drain acks") {
                    let sent_at = in_flight
                        .remove(&ack.request)
                        .unwrap_or_else(|| panic!("conn {c}: unknown or duplicate ack {:?}", ack));
                    let latency = sent_at.elapsed();
                    let point = ack.outcome.slot();
                    match ack.outcome {
                        Outcome::Put { .. } => writes.push(latency),
                        Outcome::Get { .. } | Outcome::Read { .. } => reads.push(latency),
                    }
                    let last = last_point.entry(ack.shard).or_insert(0);
                    assert!(
                        point >= *last,
                        "conn {c}: shard {} linearization points went backwards ({point} after {last})",
                        ack.shard
                    );
                    *last = point;
                    acked += 1;
                }
            }
            assert!(in_flight.is_empty(), "conn {c}: {} requests never acked", in_flight.len());
            ConnReport { reads, writes }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for w in workers {
        let r = w.join().expect("connection worker panicked");
        reads.extend(r.reads);
        writes.extend(r.writes);
    }
    FleetResult { reads, writes, elapsed: start.elapsed() }
}

/// Audits a finished server run against the fleet that drove it. With a
/// fast-read path enabled, reads served off the log must account for
/// exactly the gap between submitted and committed commands.
fn check_audit(audit: &ShardedAudit, expected_commands: u64, label: &str) {
    audit.check().unwrap_or_else(|e| panic!("{label}: service audit failed: {e}"));
    let fast_reads = audit.folded_fast_reads() + audit.fast_reads().len() as u64;
    assert_eq!(
        audit.committed_commands() + fast_reads,
        expected_commands,
        "{label}: every submitted command commits or fast-reads exactly once"
    );
}

/// Gate 1 — layered differential, leases on and off: the same scripted
/// workload through the in-process layer and through framed TCP yields
/// identical responses in both read modes.
fn gate_differential() {
    // Batch size 1 makes sequencing deterministic for sequential calls:
    // both layers must produce byte-identical responses — slots and
    // read indices included.
    let script: Vec<KvOp> = (0..40).map(|i| op_for(3, i, 50)).collect();

    for reads in [ReadPath::Sequenced, ReadPath::Lease] {
        let run = |responses: &mut Vec<Response>, mut call: Box<dyn FnMut(KvOp) -> Response>| {
            for op in &script {
                responses.push(call(*op));
            }
        };

        let local_server =
            KvServer::bind("127.0.0.1:0", gate_config().with_reads(reads)).expect("bind");
        let mut local = LocalKv::connect(&local_server.engine(), ClientId(3));
        let mut local_responses = Vec::new();
        run(&mut local_responses, Box::new(move |op| dispatch(&mut local, op)));
        check_audit(&local_server.shutdown(), script.len() as u64, "differential/local");

        let remote_server =
            KvServer::bind("127.0.0.1:0", gate_config().with_reads(reads)).expect("bind");
        let mut remote = RemoteKv::connect(remote_server.addr(), ClientId(3)).expect("connect");
        let mut remote_responses = Vec::new();
        run(&mut remote_responses, Box::new(move |op| dispatch(&mut remote, op)));
        check_audit(&remote_server.shutdown(), script.len() as u64, "differential/remote");

        assert_eq!(
            local_responses, remote_responses,
            "the TCP layer must answer identically to the in-process layer (reads {reads:?})"
        );
    }
}

fn dispatch<S: KvService>(s: &mut S, op: KvOp) -> Response {
    match op {
        KvOp::Put { key, value } => s.put(key, value).expect("put acked"),
        KvOp::Get { key } => s.get(key).expect("get acked"),
    }
}

fn gate_config() -> EngineConfig {
    EngineConfig::default_5().with_batch_size(1).with_pipeline_depth(2)
}

/// Gate 2 — exactly-once with the fast path live: same-connection
/// duplicate ids (a write and a fast read) and a client killed
/// mid-request that reconnects and replays.
fn gate_exactly_once() {
    let server =
        KvServer::bind("127.0.0.1:0", gate_config().with_reads(ReadPath::Lease)).expect("bind");
    let addr = server.addr();

    // Same connection, same request id sent twice: one slot, identical acks.
    let mut kv = RemoteKv::connect(addr, ClientId(900)).expect("connect");
    let first = kv.call_with(RequestId(0), KvOp::Put { key: 9, value: 1 }).expect("acked");
    let retry = kv.call_with(RequestId(0), KvOp::Put { key: 9, value: 1 }).expect("acked");
    assert_eq!(first, retry, "a same-connection retry replays the original ack");
    // A retried fast read replays the original read index and value.
    let read = kv.call_with(RequestId(1), KvOp::Get { key: 9 }).expect("acked");
    let reread = kv.call_with(RequestId(1), KvOp::Get { key: 9 }).expect("acked");
    assert_eq!(read, reread, "a fast-read retry replays the original acknowledgement");
    assert!(matches!(read.outcome, Outcome::Read { value: Some(1), .. }));

    // Kill a client mid-request: send, drop the socket without reading
    // the ack, reconnect with the same session, replay the same id.
    let mut doomed =
        PipeClient::connect(addr, ClientId(901), Duration::from_millis(1)).expect("connect");
    doomed.send(RequestId(0), KvOp::Put { key: 10, value: 77 }).expect("send");
    drop(doomed); // socket closes; the command may or may not be batched yet

    let mut revived = RemoteKv::connect_from(addr, ClientId(901), RequestId(0)).expect("reconnect");
    let ack = revived.call_with(RequestId(0), KvOp::Put { key: 10, value: 77 }).expect("acked");
    match ack.outcome {
        Outcome::Put { .. } => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    // And the session keeps working past the replayed request.
    let read = revived.get(10).expect("get acked");
    match read.outcome {
        Outcome::Read { value, .. } => assert_eq!(value, Some(77)),
        other => panic!("unexpected outcome {other:?}"),
    }

    let audit = server.shutdown();
    audit.check().expect("exactly-once gate audit");
    // Client 900's duplicate puts collapse to 1 slot, the killed
    // client's put applies once; both gets were fast reads (no slots).
    assert_eq!(audit.committed_commands(), 2, "duplicates and replays apply exactly once");
    assert_eq!(audit.fast_reads().len(), 2, "both distinct reads took the fast path");
    assert!(audit.dedup_hits() >= 2, "the dedup layer absorbed the retries");
}

/// Gate 2b — the cross-shard differential: the same seeded multi-key
/// workload through 1, 2, and 4 shard groups must materialize identical
/// stores and answer every read with the same value (slots are
/// shard-local and so differ; the linearized *answers* may not).
fn gate_sharded_equivalence(max_shards: usize) {
    type Observed = (Vec<Option<u32>>, std::collections::BTreeMap<u16, u32>);
    let script: Vec<KvOp> = (0..80).map(|i| op_for(11, i, 40)).collect();
    let mut baseline: Option<Observed> = None;
    let mut shards = 1usize;
    while shards <= max_shards {
        let server =
            KvServer::bind("127.0.0.1:0", gate_config().with_shards(shards)).expect("bind");
        let mut kv = RemoteKv::connect(server.addr(), ClientId(11)).expect("connect");
        let values: Vec<Option<u32>> = script
            .iter()
            .map(|&op| match dispatch(&mut kv, op).outcome {
                Outcome::Get { value, .. } | Outcome::Read { value, .. } => value,
                Outcome::Put { .. } => None,
            })
            .collect();
        drop(kv);
        let audit = server.shutdown();
        check_audit(&audit, script.len() as u64, "sharded differential");
        let store = audit.final_store();
        match &baseline {
            None => baseline = Some((values, store)),
            Some((base_values, base_store)) => {
                assert_eq!(
                    &values, base_values,
                    "{shards}-shard run answered reads differently than the single group"
                );
                assert_eq!(
                    &store, base_store,
                    "{shards}-shard run materialized a different store than the single group"
                );
            }
        }
        shards *= 2;
    }
}

/// Gate 3 — a concurrent warm-up fleet over the lease fast path passes
/// the full audit (the stale-read detector runs inside it).
fn gate_concurrent(batch: usize, depth: u64) {
    let config = EngineConfig::default_5()
        .with_batch_size(batch)
        .with_pipeline_depth(depth)
        .with_reads(ReadPath::Lease);
    let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
    let result = run_fleet(server.addr(), 16, 8, 2_000.0, 50);
    assert_eq!(result.total(), 16 * 8);
    check_audit(&server.shutdown(), 16 * 8, "concurrent gate");
}

/// Gate 4 — crash recovery, sharded: a durable leased 2-shard server
/// killed mid-history must come back with *every* shard under a strictly
/// newer lease epoch (each burned to its own `shard-<i>/lease.epoch`
/// before that shard serves anything), answer correctly, and pass the
/// combined audit. Per-shard lease-state dumps are written into the
/// durability root so CI uploads them with the failure artifacts when a
/// gate trips.
fn gate_crash_recovery() {
    const SHARDS: u32 = 2;
    let dir: PathBuf = std::env::var("SERVER_LOAD_CRASH_DIR")
        .unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/server-load-crash").into()
        })
        .into();
    std::fs::remove_dir_all(&dir).ok();
    let config = || {
        gate_config()
            .with_reads(ReadPath::Lease)
            .with_shards(SHARDS as usize)
            .with_durability(DurabilityConfig::new(&dir).with_snapshot_every(4))
    };
    let dump = |phase: &str, addr: SocketAddr| -> String {
        let mut all = String::new();
        for shard in 0..SHARDS {
            let state = indulgent_server::remote_lease_state(addr, shard, Duration::from_secs(5))
                .map_or_else(|e| format!("shard {shard} unavailable: {e:?}"), |s| s.to_string());
            let _ = writeln!(all, "{state}");
        }
        let _ = std::fs::write(dir.join(format!("lease-state-{phase}.txt")), &all);
        all
    };
    let epochs = || -> Vec<u64> {
        (0..SHARDS)
            .map(|i| lease::load_epoch(&shard_dir(&dir, i)).expect("shard epoch readable"))
            .collect()
    };

    let server = KvServer::bind("127.0.0.1:0", config()).expect("bind");
    let mut kv = RemoteKv::connect(server.addr(), ClientId(700)).expect("connect");
    for i in 0..8u32 {
        kv.put(u16::try_from(i % 3).unwrap(), i).expect("put");
        kv.get(u16::try_from(i % 3).unwrap()).expect("fast read");
    }
    let pre_dump = dump("pre-kill", server.addr());
    let epochs_before = epochs();
    assert!(
        epochs_before.iter().all(|&e| e >= 1),
        "crash gate: a shard served without burning an epoch ({pre_dump})"
    );
    drop(kv);
    server.kill(); // no drain, no checkpoint — the in-process kill -9

    let server = KvServer::bind("127.0.0.1:0", config()).expect("rebind on the same dir");
    // The lease-state round trip synchronizes with the driver thread, so
    // the recovery (and its epoch burns) has completed once it answers.
    let post_dump = dump("post-recovery", server.addr());
    let epochs_after = epochs();
    for (shard, (before, after)) in epochs_before.iter().zip(&epochs_after).enumerate() {
        assert!(
            after > before,
            "crash gate: rebooted shard {shard} kept its stale epoch ({before} -> {after}; {post_dump})"
        );
    }
    let mut kv = RemoteKv::connect(server.addr(), ClientId(701)).expect("reconnect");
    let read = kv.get(1).expect("fast read after recovery");
    match read.outcome {
        Outcome::Read { value, .. } => assert!(value.is_some(), "recovered store lost key 1"),
        other => panic!("crash gate: unexpected outcome {other:?} ({post_dump})"),
    }
    drop(kv);
    let audit = server.shutdown();
    audit
        .check()
        .unwrap_or_else(|e| panic!("crash gate: combined audit failed: {e} ({post_dump})"));
    assert_eq!(audit.lease_epoch(), epochs_after[0]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Closed-loop per-op read-latency probe: one session issues `ops`
/// sequential gets of a key it just wrote and times each acknowledgement
/// round trip. Run against the still-live read-heavy server after its
/// fleet drains; identical in both read modes, so the p50 ratio isolates
/// the path cost (log slot vs lease read) from client-side scheduling.
fn probe_read_latency(addr: SocketAddr, ops: u64) -> Vec<Duration> {
    let mut kv = RemoteKv::connect(addr, ClientId(999_999)).expect("probe connect");
    kv.put(600, 606_606).expect("probe seed put");
    let mut lat = Vec::with_capacity(usize::try_from(ops).expect("ops fits usize"));
    for _ in 0..ops {
        let started = Instant::now();
        let ack = kv.get(600).expect("probe get");
        lat.push(started.elapsed());
        match ack.outcome {
            Outcome::Get { value, .. } | Outcome::Read { value, .. } => {
                assert_eq!(value, Some(606_606), "probe read observed its own write");
            }
            other => panic!("probe: unexpected outcome {other:?}"),
        }
    }
    lat
}

/// The cost of the metrics layer itself: hammer one histogram with
/// `samples` records and report nanoseconds per record. A record is a
/// handful of relaxed atomic adds, so this should sit in the
/// single-digit nanoseconds — the number lands in `BENCH_server.json`
/// so a regression in the zero-alloc record path shows up as a bench
/// diff, not a mystery throughput loss.
fn metrics_overhead_ns(samples: u64) -> f64 {
    let h = Histogram::new();
    let start = Instant::now();
    for i in 0..samples {
        h.record(i);
    }
    let elapsed = start.elapsed();
    assert_eq!(h.snapshot().count, samples, "every record landed");
    elapsed.as_secs_f64() * 1e9 / samples as f64
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Sorts in place and returns (p50, p99); an empty population (a pure
/// read or pure write mix) reports zeros.
fn p50_p99(lat: &mut [Duration]) -> (Duration, Duration) {
    if lat.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    lat.sort_unstable();
    (percentile(lat, 0.50), percentile(lat, 0.99))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str, default: u64| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args[i + 1].parse::<u64>().unwrap_or_else(|_| panic!("usage: {name} N")))
            .unwrap_or(default)
    };
    let conns = arg("--conns", 256).max(1);
    let commands = arg("--commands", 8_000).max(conns);
    let rate = arg("--rate", 4_000).max(1) as f64;
    let batch = usize::try_from(arg("--batch", 8).max(1)).expect("batch fits usize");
    let depth = arg("--depth", 4).max(1);
    let read_ratio = args
        .iter()
        .position(|a| a == "--read-ratio")
        .map(|i| args[i + 1].parse::<f64>().expect("usage: --read-ratio F"))
        .unwrap_or(0.9);
    assert!((0.0..=1.0).contains(&read_ratio), "--read-ratio must be within [0, 1]");
    let read_pct = (read_ratio * 100.0).round() as u64;
    let max_shards = usize::try_from(arg("--shards", 4).max(1)).expect("shards fits usize");
    let per_conn = commands / conns;
    let total = per_conn * conns; // divisibility remainder dropped

    // ── Correctness gate: nothing is timed until all of this passes ──
    gate_differential();
    gate_exactly_once();
    gate_sharded_equivalence(max_shards.max(4));
    gate_concurrent(batch, depth);
    gate_crash_recovery();
    println!(
        "validation gate passed: local/remote differential (leases on+off), exactly-once retries + reconnect, cross-shard differential, concurrent audit, sharded crash recovery\n"
    );

    let fleet_config = |reads: ReadPath| {
        EngineConfig::default_5()
            .with_batch_size(batch)
            .with_pipeline_depth(depth)
            .with_reads(reads)
    };

    // ── Timed fleet 1: the historical mixed scenario (sequenced reads) ──
    let server = KvServer::bind("127.0.0.1:0", fleet_config(ReadPath::Sequenced)).expect("bind");
    let mixed = run_fleet(server.addr(), conns, per_conn, rate, 50);
    let audit = server.shutdown();
    check_audit(&audit, total, "timed mixed fleet");
    let mut mixed_all: Vec<Duration> = Vec::with_capacity(total as usize);
    mixed_all.extend(&mixed.reads);
    mixed_all.extend(&mixed.writes);
    let (p50, p99) = p50_p99(&mut mixed_all);
    let max = *mixed_all.last().expect("non-empty fleet");
    let rate_measured = total as f64 / mixed.elapsed.as_secs_f64();

    // ── Timed fleet 2: read-heavy over the lease fast path ──
    // The closed-loop probe runs against the same server right after the
    // fleet drains (store warm, lease live); its put + gets join the
    // fleet's commands in the audit arithmetic.
    const PROBE_OPS: u64 = 200;
    let server = KvServer::bind("127.0.0.1:0", fleet_config(ReadPath::Lease)).expect("bind");
    let mut leased = run_fleet(server.addr(), conns, per_conn, rate, read_pct);
    let mut lease_probe = probe_read_latency(server.addr(), PROBE_OPS);
    // Scrape the still-live server's pipeline-stage histograms over the
    // wire — the server-side view of the latencies the fleet saw from
    // the outside.
    let lease_scrape =
        remote_stats(server.addr(), 0, Duration::from_secs(5)).expect("stats scrape");
    let lease_audit = server.shutdown();
    check_audit(&lease_audit, total + 1 + PROBE_OPS, "timed read-heavy lease fleet");
    let fast_reads = lease_audit.folded_fast_reads() + lease_audit.fast_reads().len() as u64;
    let lease_rate = total as f64 / leased.elapsed.as_secs_f64();
    let (lease_fleet_read_p50, _) = p50_p99(&mut leased.reads);
    let (lease_write_p50, lease_write_p99) = p50_p99(&mut leased.writes);
    let (lease_read_p50, lease_read_p99) = p50_p99(&mut lease_probe);

    // ── Timed fleet 3: the same read-heavy mix, every read sequenced ──
    let server = KvServer::bind("127.0.0.1:0", fleet_config(ReadPath::Sequenced)).expect("bind");
    let mut seq = run_fleet(server.addr(), conns, per_conn, rate, read_pct);
    let mut seq_probe = probe_read_latency(server.addr(), PROBE_OPS);
    check_audit(&server.shutdown(), total + 1 + PROBE_OPS, "timed read-heavy sequenced fleet");
    let (seq_fleet_read_p50, _) = p50_p99(&mut seq.reads);
    let (seq_read_p50, _) = p50_p99(&mut seq_probe);
    let read_speedup = seq_read_p50.as_secs_f64() / lease_read_p50.as_secs_f64();

    println!(
        "S1 — networked-service load (n=5, t=2, batch {batch}, depth {depth})\n\
         conns {conns}, commands {total}, offered rate {rate:.0}/s\n\
         mixed 50/50 sequenced: {rate_measured:.0} commands/s, ack p50 {:.2}ms p99 {:.2}ms max {:.2}ms\n\
         read-heavy {read_pct}/{:2} leased: {lease_rate:.0} commands/s, {fast_reads} fast reads\n\
           under load: read p50 {:.2}ms | write p50 {:.2}ms p99 {:.2}ms (sequenced read p50 {:.2}ms)\n\
         per-op read probe ({PROBE_OPS} closed-loop gets): lease p50 {:.3}ms p99 {:.3}ms, sequenced p50 {:.3}ms\n\
           -> lease fast-read speedup {read_speedup:.1}x\n\
         dedup hits {}, duplicate applies {}",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        100 - read_pct,
        lease_fleet_read_p50.as_secs_f64() * 1e3,
        lease_write_p50.as_secs_f64() * 1e3,
        lease_write_p99.as_secs_f64() * 1e3,
        seq_fleet_read_p50.as_secs_f64() * 1e3,
        lease_read_p50.as_secs_f64() * 1e3,
        lease_read_p99.as_secs_f64() * 1e3,
        seq_read_p50.as_secs_f64() * 1e3,
        audit.dedup_hits(),
        audit.duplicate_applies(),
    );

    // ── Timed sharded sweep: the mixed scenario at 1..=S shard groups ──
    // Every run is offered the same elevated rate (the base rate scaled
    // by the largest shard count) so each measures its *saturated*
    // capacity and the ratio reads as scaling, not admission control.
    // The closed-loop probe then reports every shard's lease mode — a
    // shard stuck in sequenced fallback is visible right here.
    let sweep_rate = rate * max_shards as f64;
    let mut sharded: Vec<(usize, f64)> = Vec::new();
    let mut sweep_scrapes: Vec<StatsReport> = Vec::new();
    let mut shard_count = 1usize;
    while shard_count <= max_shards {
        let config = fleet_config(ReadPath::Lease).with_shards(shard_count);
        let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
        let result = run_fleet(server.addr(), conns, per_conn, sweep_rate, 50);
        // Per-shard stage scrapes; the last (widest) run's reports feed
        // the JSON's per-shard + merged-aggregate stage_latency block.
        sweep_scrapes = (0..u32::try_from(shard_count).expect("shards fit u32"))
            .filter_map(|shard| remote_stats(server.addr(), shard, Duration::from_secs(5)).ok())
            .collect();
        let mut modes = String::new();
        for shard in 0..u32::try_from(shard_count).expect("shards fit u32") {
            let status =
                indulgent_server::remote_lease_state(server.addr(), shard, Duration::from_secs(5));
            let _ = match status {
                Ok(s) => write!(
                    modes,
                    " shard {shard}: {} (epoch {})",
                    match s.mode {
                        0 => "sequenced",
                        1 => "quorum",
                        _ => "lease",
                    },
                    s.epoch
                ),
                Err(e) => write!(modes, " shard {shard}: lease state unavailable ({e})"),
            };
        }
        check_audit(&server.shutdown(), total, &format!("sharded sweep ({shard_count} shards)"));
        let cps = result.total() as f64 / result.elapsed.as_secs_f64();
        println!("sharded sweep: {shard_count} shard(s) -> {cps:.0} commands/s;{modes}");
        sharded.push((shard_count, cps));
        shard_count *= 2;
    }
    if let (Some((_, one)), Some((s, many))) = (sharded.first(), sharded.last()) {
        if sharded.len() > 1 {
            println!("sharded sweep: {s} shards / 1 shard = {:.2}x\n", many / one);
        }
    }

    // ── Observability: server-side stage latencies + metrics overhead ──
    let overhead_ns = metrics_overhead_ns(10_000_000);
    println!("server stage latency (read-heavy lease): {lease_scrape}");
    let sweep_aggregate = sweep_scrapes.split_first().map(|(first, rest)| {
        let mut agg = *first;
        for r in rest {
            agg.merge(r);
        }
        agg
    });
    if let Some(agg) = &sweep_aggregate {
        println!("server stage latency (sweep aggregate, {} shards): {agg}", sweep_scrapes.len());
    }
    println!("metrics overhead: {overhead_ns:.1} ns/record\n");

    let read_heavy = ReadHeavy {
        read_ratio,
        commands_per_second: lease_rate,
        fast_reads,
        probe_ops: PROBE_OPS,
        read_p50: lease_read_p50,
        read_p99: lease_read_p99,
        write_p50: lease_write_p50,
        write_p99: lease_write_p99,
        sequenced_read_p50: seq_read_p50,
        read_speedup_p50: read_speedup,
    };
    emit_json(
        conns,
        total,
        rate,
        batch,
        depth,
        rate_measured,
        p50,
        p99,
        max,
        &read_heavy,
        &sharded,
        sweep_rate,
        &StageLatency {
            overhead_ns,
            read_heavy: lease_scrape,
            sweep: &sweep_scrapes,
            sweep_aggregate,
        },
    );
}

/// The `stage_latency` block of `BENCH_server.json`: server-side
/// pipeline-stage histograms scraped over the wire, plus the measured
/// cost of the metrics layer itself.
struct StageLatency<'a> {
    overhead_ns: f64,
    read_heavy: StatsReport,
    sweep: &'a [StatsReport],
    sweep_aggregate: Option<StatsReport>,
}

/// Appends one scrape's stage histograms as JSON fields at `indent`.
/// Latency stages report microseconds; `seal_depth` counts batches and
/// keeps raw units.
fn write_stages(json: &mut String, indent: &str, report: &StatsReport) {
    let us = |ns: u64| ns as f64 / 1e3;
    for (name, h) in report.stages() {
        if name == "seal_depth" {
            let _ = writeln!(
                json,
                "{indent}\"{name}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                h.count,
                h.percentile(0.50),
                h.percentile(0.99),
                h.max
            );
        } else {
            let _ = writeln!(
                json,
                "{indent}\"{name}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}},",
                h.count,
                us(h.percentile(0.50)),
                us(h.percentile(0.99)),
                us(h.max)
            );
        }
    }
}

/// The read-heavy scenario block of `BENCH_server.json`.
struct ReadHeavy {
    read_ratio: f64,
    commands_per_second: f64,
    fast_reads: u64,
    probe_ops: u64,
    read_p50: Duration,
    read_p99: Duration,
    write_p50: Duration,
    write_p99: Duration,
    sequenced_read_p50: Duration,
    read_speedup_p50: f64,
}

/// Writes `BENCH_server.json` at the workspace root; `BENCH_SERVER_JSON`
/// overrides the path, `0` skips the file.
#[allow(clippy::too_many_arguments)]
fn emit_json(
    conns: u64,
    commands: u64,
    offered_rate: f64,
    batch: usize,
    depth: u64,
    commands_per_second: f64,
    p50: Duration,
    p99: Duration,
    max: Duration,
    read_heavy: &ReadHeavy,
    sharded: &[(usize, f64)],
    sweep_rate: f64,
    stages: &StageLatency<'_>,
) {
    let path = std::env::var("BENCH_SERVER_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json").into());
    if path == "0" {
        return;
    }
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"server_load\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": 5, \"t\": 2, \"conns\": {conns}, \"commands\": {commands}, \"offered_rate\": {offered_rate:.0}, \"batch_size\": {batch}, \"pipeline_depth\": {depth}}},"
    );
    let _ = writeln!(json, "  \"commands_per_second\": {commands_per_second:.1},");
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},",
        ms(p50),
        ms(p99),
        ms(max)
    );
    let _ = writeln!(json, "  \"read_heavy\": {{");
    let _ = writeln!(json, "    \"read_ratio\": {:.2},", read_heavy.read_ratio);
    let _ = writeln!(json, "    \"commands_per_second\": {:.1},", read_heavy.commands_per_second);
    let _ = writeln!(json, "    \"fast_reads\": {},", read_heavy.fast_reads);
    let _ = writeln!(json, "    \"read_latency_method\": \"closed_loop_probe\",");
    let _ = writeln!(json, "    \"probe_ops\": {},", read_heavy.probe_ops);
    let _ = writeln!(
        json,
        "    \"read_latency_ms\": {{\"p50\": {:.4}, \"p99\": {:.4}}},",
        ms(read_heavy.read_p50),
        ms(read_heavy.read_p99)
    );
    let _ = writeln!(
        json,
        "    \"write_latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},",
        ms(read_heavy.write_p50),
        ms(read_heavy.write_p99)
    );
    let _ = writeln!(
        json,
        "    \"sequenced_read_latency_ms\": {{\"p50\": {:.4}}},",
        ms(read_heavy.sequenced_read_p50)
    );
    let _ = writeln!(json, "    \"read_speedup_p50\": {:.2}", read_heavy.read_speedup_p50);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"stage_latency\": {{");
    let _ = writeln!(json, "    \"overhead_ns_per_record\": {:.1},", stages.overhead_ns);
    let _ = writeln!(json, "    \"read_heavy\": {{");
    write_stages(&mut json, "      ", &stages.read_heavy);
    json.push_str("    },\n");
    let _ = writeln!(json, "    \"sharded\": {{");
    let _ = writeln!(json, "      \"shards\": {},", stages.sweep.len());
    if let Some(agg) = &stages.sweep_aggregate {
        let _ = writeln!(json, "      \"aggregate\": {{");
        write_stages(&mut json, "        ", agg);
        json.push_str("      },\n");
    }
    let _ = writeln!(json, "      \"per_shard\": [");
    for (i, report) in stages.sweep.iter().enumerate() {
        let comma = if i + 1 == stages.sweep.len() { "" } else { "," };
        let _ = writeln!(json, "        {{\"shard\": {},", report.shard);
        write_stages(&mut json, "         ", report);
        let _ = writeln!(json, "        }}{comma}");
    }
    json.push_str("      ]\n    }\n  },\n");
    let _ = writeln!(json, "  \"sharded\": {{");
    let _ = writeln!(json, "    \"offered_rate\": {sweep_rate:.0},");
    let _ = writeln!(json, "    \"scenarios\": [");
    for (i, (shards, cps)) in sharded.iter().enumerate() {
        let comma = if i + 1 == sharded.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"shards\": {shards}, \"commands_per_second\": {cps:.1}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let scaling = match (sharded.first(), sharded.last()) {
        (Some((_, one)), Some((_, many))) if *one > 0.0 => many / one,
        _ => 1.0,
    };
    let _ = writeln!(json, "    \"scaling_x\": {scaling:.2}");
    json.push_str("  }\n}\n");

    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}
