//! E4 — the `A_◇S` variant (paper Fig. 3): same `t + 2` fast decision in
//! synchronous runs, graceful fallback under the weak accuracy of ◇S
//! (persistent false suspicions of all but one process).

use indulgent_bench::experiments::diamond_s_table;
use indulgent_bench::render_table;

fn main() {
    let rows = diamond_s_table(&[(3, 1), (5, 2), (7, 3), (9, 4)], 100);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.t.to_string(),
                r.sync_max_round.to_string(),
                r.bound.to_string(),
                r.noisy_round.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E4 — A_diamond-S: fast decision retained under a ◇S detector",
            &["n", "t", "sync max round", "t+2", "round under persistent false suspicion"],
            &table,
        )
    );
    println!("Synchronous runs decide at t + 2; noisy detectors defer to the fallback C, safely.");
}
