//! E6 — fast eventual decision (paper Fig. 5, Lemma 15): once a run
//! becomes synchronous after round `k` with `f` later crashes, `A_{f+2}`
//! decides by `k + f + 2` while the leader-based AMR baseline may need
//! `k + 2f + 2`.

use indulgent_bench::experiments::eventual_decision_table_with;
use indulgent_bench::{render_table, sweep_backend_from_args};

fn main() {
    // `--threads N` fans the independent seeded runs over the sweep
    // engine's worker pool; rows are identical for every thread count.
    let backend = sweep_backend_from_args(std::env::args().skip(1));
    let rows = eventual_decision_table_with(&[0, 2, 4, 6], &[0, 1, 2], 50, backend);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                r.f.to_string(),
                r.af_plus2.to_string(),
                r.af_bound.to_string(),
                r.amr.to_string(),
                r.amr_bound.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E6 — decision round after stabilization (n=7, t=2): A_f+2 vs leader-based AMR",
            &["k", "f", "A_f+2", "k+f+2", "AMR", "k+2f+2"],
            &table,
        )
    );
    println!("A_f+2 meets k+f+2; AMR pays ~2 rounds per crashed leader (k+2f+2).");
}
