//! L1 — replicated-log throughput: commands/second of the
//! `indulgent-log` service over the threaded session substrate, across
//! batch size × pipeline depth × crash/asynchrony scenarios.
//!
//! Each slot runs `A_{t+2}` with the Fig. 4 failure-free optimization, so
//! a healthy instance decides globally at round 2; the network applies a
//! uniform per-message latency, making rounds latency-bound — the regime
//! where batching (more commands per instance) and pipelining
//! (overlapping instance rounds) pay off as real wall-clock throughput.
//!
//! Before anything is timed, the harness refuses to publish numbers for a
//! broken log (mirroring `sweep_throughput`'s identical-report gate):
//!
//! * every scenario — including the crash and asynchronous-prefix chaos
//!   runs — must satisfy the full log invariant suite (per-slot
//!   agreement/validity, identical decided logs on all correct replicas,
//!   exactly-once commands);
//! * a crash scenario executed on both substrates must yield the *same*
//!   decided log on the threaded runtime as on the deterministic
//!   simulator;
//! * a sweep of seeded chaos scenarios (fanned over the worker pool with
//!   `--threads N`) must pass the invariants on the simulator substrate.
//!
//! Emits machine-readable `BENCH_log.json` (override the path with
//! `BENCH_LOG_JSON`, `0` skips the file) with per-scenario
//! commands/second plus the batching and pipelining speedups over the
//! `batch=1, depth=1` baseline; CI uploads it and the warn-only perf
//! guard diffs it against the committed baseline.
//!
//! ```text
//! cargo run --release --bin exp_log_throughput -- --instances 200 --threads 4
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use indulgent_bench::{render_table, sweep_backend_from_args};
use indulgent_log::{
    run_log_session, run_log_sim, AsyncPrefix, ClientFrontend, IntakePolicy, LogConfig, LogReport,
    LogScenario, NetProfile,
};
use indulgent_model::{Round, SystemConfig};
use indulgent_sim::pooled_map_indexed;

/// One measured batching/pipelining/chaos combination.
struct Scenario {
    name: &'static str,
    batch_size: usize,
    depth: u64,
    kind: Kind,
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    FailureFree,
    Crash,
    AsyncPrefix,
}

const SCENARIOS: &[Scenario] = &[
    Scenario { name: "batch1-depth1", batch_size: 1, depth: 1, kind: Kind::FailureFree },
    Scenario { name: "batch8-depth1", batch_size: 8, depth: 1, kind: Kind::FailureFree },
    Scenario { name: "batch1-depth4", batch_size: 1, depth: 4, kind: Kind::FailureFree },
    Scenario { name: "batch8-depth4", batch_size: 8, depth: 4, kind: Kind::FailureFree },
    Scenario { name: "batch8-depth4-crash", batch_size: 8, depth: 4, kind: Kind::Crash },
    Scenario { name: "batch8-depth4-async", batch_size: 8, depth: 4, kind: Kind::AsyncPrefix },
];

fn scenario_of(kind: Kind, n: usize, instances: u64) -> LogScenario {
    match kind {
        Kind::FailureFree => LogScenario::failure_free(n),
        // Two permanent crashes (t = 2): one mid-protocol, one mid-run.
        Kind::Crash => LogScenario::failure_free(n).crash(1, 2, Round::new(2)).crash(
            3,
            (instances / 2).max(1),
            Round::FIRST,
        ),
        Kind::AsyncPrefix => LogScenario::failure_free(n).with_asynchrony(AsyncPrefix {
            until_instance: (instances / 4).max(2),
            sync_from: 4,
            probability: 0.3,
            seed: 42,
        }),
    }
}

fn workload(n: usize, batch_size: usize, instances: u64) -> ClientFrontend {
    let mut frontend = ClientFrontend::new(n, batch_size).with_intake(IntakePolicy::Shared);
    frontend.submit_all(0..instances * batch_size as u64);
    frontend
}

fn run_scenario(config: SystemConfig, s: &Scenario, instances: u64, net: NetProfile) -> LogReport {
    let log_config =
        LogConfig::sequential(instances).with_batch_size(s.batch_size).with_pipeline_depth(s.depth);
    run_log_session(
        config,
        log_config,
        scenario_of(s.kind, config.n(), instances),
        workload(config.n(), s.batch_size, instances),
        net,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backend = sweep_backend_from_args(args.iter().cloned());
    let instances = args
        .iter()
        .position(|a| a == "--instances")
        .map(|i| args[i + 1].parse::<u64>().expect("usage: --instances N (N >= 1)"))
        .unwrap_or(60)
        .max(1);

    let config = SystemConfig::majority(5, 2).expect("valid config");
    let net = NetProfile {
        grace: Duration::from_millis(2),
        base_delays: indulgent_runtime::DelayModel::Instant,
        chaos_delay: Duration::from_millis(8),
    }
    .with_uniform_latency(Duration::from_micros(500));

    // ── Validation gate (nothing is timed until all of this passes) ──
    // 1. Every scenario satisfies the log invariants end to end.
    for s in SCENARIOS {
        let report = run_scenario(config, s, instances, net);
        report.check().unwrap_or_else(|e| panic!("{}: log invariants violated: {e}", s.name));
        if s.kind == Kind::FailureFree {
            assert_eq!(
                report.committed_commands,
                instances * s.batch_size as u64,
                "{}: a failure-free shared-intake run commits everything",
                s.name
            );
        }
    }
    // 2. Crash chaos is value-identical across the two substrates.
    {
        let diff_instances = instances.min(24);
        let s = &SCENARIOS[4];
        let log_config = LogConfig::sequential(diff_instances)
            .with_batch_size(s.batch_size)
            .with_pipeline_depth(s.depth);
        let scenario = scenario_of(Kind::Crash, config.n(), diff_instances);
        let sim = run_log_sim(
            config,
            log_config,
            scenario.clone(),
            workload(config.n(), s.batch_size, diff_instances),
        );
        let session = run_log_session(
            config,
            log_config,
            scenario,
            workload(config.n(), s.batch_size, diff_instances),
            net,
        );
        assert_eq!(
            sim.decided_values, session.decided_values,
            "runtime log decisions diverged from the simulator on the crash scenario"
        );
        assert_eq!(sim.canonical, session.canonical, "applied logs diverged across substrates");
    }
    // 3. Seeded chaos sweep on the simulator substrate (pooled workers).
    let chaos_seeds = 8u64;
    let violations: u64 = pooled_map_indexed(chaos_seeds, backend, |seed| {
        let scenario = LogScenario::failure_free(config.n())
            .crash((seed % 5) as usize, seed % 3 + 1, Round::new((seed % 2 + 1) as u32))
            .with_asynchrony(AsyncPrefix {
                until_instance: 4,
                sync_from: 4,
                probability: 0.35,
                seed,
            });
        let report = run_log_sim(
            config,
            LogConfig::sequential(10).with_batch_size(2).with_pipeline_depth(2),
            scenario,
            workload(config.n(), 2, 10),
        );
        u64::from(report.check().is_err())
    })
    .into_iter()
    .sum();
    assert_eq!(violations, 0, "seeded chaos sweep violated the log invariants");
    println!(
        "validation gate passed: {} scenarios, cross-substrate crash differential, {chaos_seeds} chaos seeds\n",
        SCENARIOS.len()
    );

    // ── Timed runs ──
    let mut rows = Vec::new();
    for s in SCENARIOS {
        let mut best: Option<(Duration, u64)> = None;
        for _ in 0..3 {
            let start = Instant::now();
            let report = run_scenario(config, s, instances, net);
            let elapsed = start.elapsed();
            report.check().expect("timed run stays invariant-clean");
            if best.is_none_or(|(b, _)| elapsed < b) {
                best = Some((elapsed, report.committed_commands));
            }
        }
        let (elapsed, committed) = best.expect("three timed runs");
        let rate = committed as f64 / elapsed.as_secs_f64();
        rows.push((s, elapsed, committed, rate));
    }

    let rate_of = |name: &str| {
        rows.iter().find(|(s, ..)| s.name == name).map(|&(_, _, _, r)| r).expect("scenario timed")
    };
    let baseline = rate_of("batch1-depth1");
    let batching_speedup = rate_of("batch8-depth1") / baseline;
    let pipelining_speedup = rate_of("batch1-depth4") / baseline;

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(s, elapsed, committed, rate)| {
            vec![
                s.name.to_owned(),
                s.batch_size.to_string(),
                s.depth.to_string(),
                committed.to_string(),
                format!("{:.1}", elapsed.as_secs_f64() * 1e3),
                format!("{rate:.0}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("L1 — replicated-log throughput (n=5, t=2, {instances} instances)"),
            &["scenario", "batch", "depth", "committed", "ms", "commands/s"],
            &table,
        )
    );
    println!("batching speedup (batch 8 vs 1): {batching_speedup:.2}x");
    println!("pipelining speedup (depth 4 vs 1): {pipelining_speedup:.2}x");
    assert!(batching_speedup > 1.0, "batching must improve commands/s over the baseline");
    assert!(pipelining_speedup > 1.0, "pipelining must improve commands/s over the baseline");

    emit_json(instances, &rows, batching_speedup, pipelining_speedup);
}

/// Writes `BENCH_log.json` at the workspace root (like
/// `sweep_throughput`'s `BENCH_sweep.json`); `BENCH_LOG_JSON` overrides
/// the path, `0` skips the file.
#[allow(clippy::type_complexity)]
fn emit_json(
    instances: u64,
    rows: &[(&Scenario, Duration, u64, f64)],
    batching_speedup: f64,
    pipelining_speedup: f64,
) {
    let path = std::env::var("BENCH_LOG_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_log.json").into());
    if path == "0" {
        return;
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"log_throughput\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": 5, \"t\": 2, \"instances\": {instances}, \"max_rounds\": 60}},"
    );
    let _ = writeln!(json, "  \"batching_speedup\": {batching_speedup:.3},");
    let _ = writeln!(json, "  \"pipelining_speedup\": {pipelining_speedup:.3},");
    json.push_str("  \"scenarios\": [\n");
    for (i, (s, elapsed, committed, rate)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"batch_size\": {}, \"pipeline_depth\": {}, \"committed_commands\": {}, \"seconds\": {:.6}, \"commands_per_second\": {:.1}}}",
            s.name,
            s.batch_size,
            s.depth,
            committed,
            elapsed.as_secs_f64(),
            rate
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}
