//! S2 — crash-recovery smoke against the real service *process*: spawn
//! `indulgent_server` with a durability directory, drive open-loop load
//! over framed TCP, `kill -9` it mid-load, restart it on the same
//! directory, and hold the recovered process to the service guarantees:
//!
//! * **exactly-once across the crash** — every request left in doubt at
//!   the kill (submitted, ack never seen) is replayed into the new
//!   incarnation and acknowledged exactly once; a *write* acked before
//!   the kill is re-sent as a dedup probe and must replay a
//!   byte-identical acknowledgement from the recovered session table
//!   (probes target writes because fast-read acks are deliberately not
//!   WAL-durable — a cross-crash read retry re-executes at a read index
//!   at least as new, which is linearizable but not byte-identical);
//! * **audit gate on the recovered process** — the in-engine
//!   [`ServiceAudit`](indulgent_server::ServiceAudit) replay check,
//!   fetched over the wire with [`remote_audit`], must report a clean,
//!   complete history spanning every incarnation, with exactly the
//!   storm's writes committed (reads ride the lease fast path and
//!   occupy no slots);
//! * **lease-epoch gate** — every incarnation burns a strictly newer
//!   lease epoch before serving, so after the storm the epoch equals
//!   the number of incarnations; a lease-state dump is written per
//!   phase (CI uploads them with the failure artifacts);
//! * **rejoin gate** — [`sync_from_peer`] pulls a snapshot + log catch-up
//!   from the survivor, and a fresh server booted on the transferred
//!   state must answer every key identically.
//!
//! The server binary is found next to this executable (same target
//! profile) or via `INDULGENT_SERVER_BIN`; durable state lives under
//! `target/restart-storm/` (`RESTART_STORM_DIR` overrides) so CI can
//! upload it when a gate trips.
//!
//! ```text
//! cargo run --release --bin exp_restart_storm -- [--phases N] [--ops N]
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use indulgent_model::{ClientId, RequestId};
use indulgent_server::{
    remote_audit, remote_lease_state, sync_all_from_peer, KvOp, KvService, Outcome, PipeClient,
    RemoteKv, Response,
};

const CLIENTS: u64 = 4;

/// Deterministic op mix over a small shared key space so incarnations
/// contend on the same keys and gets observe recovered writes.
fn op_for(c: u64, i: u64) -> KvOp {
    let key = ((c * 13 + i * 5) % 32) as u16;
    if (c + i).is_multiple_of(2) {
        KvOp::Put { key, value: (c * 1_000_000 + i) as u32 }
    } else {
        KvOp::Get { key }
    }
}

fn server_bin() -> PathBuf {
    if let Ok(path) = std::env::var("INDULGENT_SERVER_BIN") {
        return path.into();
    }
    let mut path = std::env::current_exe().expect("current exe");
    path.pop();
    path.push("indulgent_server");
    path
}

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    fn spawn(dir: &Path, snapshot_every: u64, shards: u64) -> Server {
        let mut child = Command::new(server_bin())
            .arg("127.0.0.1:0")
            .arg("4")
            .arg("2")
            .arg("--dir")
            .arg(dir)
            .arg("--snapshot-every")
            .arg(snapshot_every.to_string())
            .arg("--shards")
            .arg(shards.to_string())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn indulgent_server (set INDULGENT_SERVER_BIN if it is not a sibling)");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read listen line");
        // "indulgent_server listening on 127.0.0.1:PORT (...)"
        let addr = line
            .split_whitespace()
            .nth(3)
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .parse()
            .expect("parse listen address");
        Server { child, addr }
    }

    /// SIGKILL — the process gets no chance to flush or checkpoint.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

/// One client's history across incarnations.
#[derive(Default)]
struct SessionState {
    next: u64,
    ops: HashMap<u64, KvOp>,
    acked: HashMap<u64, Response>,
    /// Submitted before the last kill, ack never seen.
    in_doubt: Vec<u64>,
}

/// Drives one incarnation: replays dedup probes + in-doubt requests,
/// pours `new_ops` fresh requests per client, and either drains
/// everything (`finish`) or leaves roughly half the fresh load in flight
/// for the caller to kill. Returns the number of dedup probes verified.
fn run_phase(addr: SocketAddr, states: &mut [SessionState], new_ops: u64, finish: bool) -> u64 {
    let mut pipes: Vec<PipeClient> = (0..states.len())
        .map(|c| {
            PipeClient::connect(addr, ClientId(c as u64), Duration::from_millis(1))
                .expect("connect")
        })
        .collect();
    // In-flight per client: id -> the prior response if this is a replay
    // of an already-acked request (a dedup probe).
    let mut in_flight: Vec<HashMap<u64, Option<Response>>> =
        (0..states.len()).map(|_| HashMap::new()).collect();
    let mut probes = 0u64;

    for (c, st) in states.iter_mut().enumerate() {
        // Dedup probe: the most recent acked *write* must replay
        // byte-identically. Reads are excluded on purpose: fast-read
        // acks are not WAL-durable, so a cross-crash read retry is
        // re-served at a newer read index rather than replayed.
        if let Some((&id, resp)) = st
            .acked
            .iter()
            .filter(|(id, _)| matches!(st.ops[id], KvOp::Put { .. }))
            .max_by_key(|(id, _)| **id)
        {
            pipes[c].send(RequestId(id), st.ops[&id]).expect("send probe");
            in_flight[c].insert(id, Some(*resp));
        }
        for id in st.in_doubt.drain(..) {
            pipes[c].send(RequestId(id), st.ops[&id]).expect("replay in-doubt");
            in_flight[c].insert(id, None);
        }
    }

    let mut launched = vec![0u64; states.len()];
    let kill_target = states.len() as u64 * new_ops / 2;
    let mut acked_fresh = 0u64;
    loop {
        let mut all_launched = true;
        for (c, st) in states.iter_mut().enumerate() {
            if launched[c] < new_ops {
                let id = st.next;
                let op = op_for(c as u64, id);
                pipes[c].send(RequestId(id), op).expect("send");
                st.ops.insert(id, op);
                in_flight[c].insert(id, None);
                st.next += 1;
                launched[c] += 1;
            }
            all_launched &= launched[c] == new_ops;
            for ack in pipes[c].drain_acks().expect("drain acks") {
                let prior = in_flight[c]
                    .remove(&ack.request.0)
                    .unwrap_or_else(|| panic!("client {c}: unknown or duplicate ack {ack:?}"));
                if let Some(prev) = prior {
                    assert_eq!(ack, prev, "client {c}: replayed ack must be byte-identical");
                    probes += 1;
                } else {
                    acked_fresh += 1;
                }
                st.acked.insert(ack.request.0, ack);
            }
        }
        if finish {
            if all_launched && in_flight.iter().all(HashMap::is_empty) {
                break;
            }
        } else if acked_fresh >= kill_target {
            // Burst the rest of the load without draining, so the kill
            // lands with real requests in flight, then hand back.
            for (c, st) in states.iter_mut().enumerate() {
                while launched[c] < new_ops {
                    let id = st.next;
                    let op = op_for(c as u64, id);
                    pipes[c].send(RequestId(id), op).expect("burst send");
                    st.ops.insert(id, op);
                    in_flight[c].insert(id, None);
                    st.next += 1;
                    launched[c] += 1;
                }
                st.in_doubt = in_flight[c].keys().copied().collect();
                st.in_doubt.sort_unstable();
            }
            break;
        }
    }
    probes
}

fn value_of(resp: &Response) -> Option<u32> {
    match resp.outcome {
        Outcome::Get { value, .. } | Outcome::Read { value, .. } => value,
        Outcome::Put { .. } => panic!("expected a get outcome"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str, default: u64| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args[i + 1].parse::<u64>().unwrap_or_else(|_| panic!("usage: {name} N")))
            .unwrap_or(default)
    };
    let phases = arg("--phases", 3).max(2);
    let new_ops = arg("--ops", 40).max(4);
    let snapshot_every = arg("--snapshot-every", 16).max(1);
    let shards = arg("--shards", 2).max(1);

    let root: PathBuf = std::env::var("RESTART_STORM_DIR")
        .unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/restart-storm").into()
        })
        .into();
    let dir = root.join("primary");
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&dir).expect("create durability dir");

    let mut states: Vec<SessionState> = (0..CLIENTS).map(|_| SessionState::default()).collect();
    let mut probes = 0u64;
    let mut final_probes = 0u64;

    // Per-phase lease-state dump, one line per shard: written into the
    // storm directory so a tripped gate ships every incarnation's lease
    // view with the CI failure artifacts. The round trip also
    // synchronizes with the driver, so recovery (and every shard's epoch
    // burn) has finished once each shard answers. All shards boot
    // together, so their epochs must agree — the common value is
    // returned.
    let dump_lease = |phase: u64, addr: SocketAddr| -> u64 {
        let mut all = String::new();
        let mut epoch = None;
        for shard in 0..u32::try_from(shards).expect("shards fit u32") {
            let state =
                remote_lease_state(addr, shard, Duration::from_secs(30)).expect("lease state");
            all.push_str(&state.to_string());
            all.push('\n');
            if let Some(prev) = epoch.replace(state.epoch) {
                assert_eq!(prev, state.epoch, "shards booted together must burn matching epochs");
            }
        }
        let _ = std::fs::write(root.join(format!("lease-state-phase{phase}.txt")), &all);
        epoch.expect("at least one shard")
    };

    // ── The storm: kill -9 between every phase, recover on the same dir ──
    let mut server = Server::spawn(&dir, snapshot_every, shards);
    let mut epoch = dump_lease(0, server.addr);
    assert!(epoch >= 1, "the first incarnation burned an epoch before serving");
    for phase in 0..phases {
        let finish = phase + 1 == phases;
        let phase_probes = run_phase(server.addr, &mut states, new_ops, finish);
        probes += phase_probes;
        if finish {
            final_probes = phase_probes;
        } else {
            let in_doubt: usize = states.iter().map(|s| s.in_doubt.len()).sum();
            println!(
                "phase {}: killed -9 at {} with {in_doubt} requests in doubt (lease epoch {epoch})",
                phase + 1,
                server.addr
            );
            server.kill();
            server = Server::spawn(&dir, snapshot_every, shards);
            let reborn = dump_lease(phase + 1, server.addr);
            assert!(
                reborn > epoch,
                "phase {}: rebooted incarnation kept a stale lease epoch ({epoch} -> {reborn})",
                phase + 1
            );
            epoch = reborn;
        }
    }

    assert_eq!(
        epoch, phases,
        "each incarnation burns exactly one epoch: {phases} boots -> epoch {epoch}"
    );

    // ── Gate 1: exactly-once bookkeeping ──
    let total: u64 = states.iter().map(|s| s.next).sum();
    let acked: u64 = states.iter().map(|s| s.acked.len() as u64).sum();
    assert_eq!(acked, total, "every distinct request acked exactly once across the storm");
    assert!(probes >= phases - 1, "every restart verified at least one dedup probe");

    // ── Gate 2: the recovered process audits its combined history ──
    // Writes are the only slot consumers now: every read rode the lease
    // fast path, so committed-across-incarnations must equal the storm's
    // distinct puts exactly.
    let puts: u64 = states
        .iter()
        .flat_map(|s| s.ops.values())
        .filter(|op| matches!(op, KvOp::Put { .. }))
        .count() as u64;
    let summary = remote_audit(server.addr, Duration::from_secs(30)).expect("audit over the wire");
    assert!(summary.complete, "audit quiesced");
    assert!(summary.ok, "recovered process fails its replay audit");
    assert_eq!(summary.committed, puts, "distinct writes committed exactly once, reads off-log");
    assert!(summary.fast_reads > 0, "the final incarnation served reads off the log");
    assert_eq!(summary.lease_epoch, epoch, "the audit reports the serving epoch");
    // The dedup counter is per-incarnation state, so only the final
    // incarnation's probes (and replayed in-doubt requests that had
    // committed pre-kill) are visible in it.
    assert!(
        summary.dedup_hits >= final_probes,
        "dedup probes were absorbed by the recovered session table"
    );

    // ── Gate 3: rejoin — per-shard snapshot transfer + catch-up into a
    // fresh root (manifest included), then key-for-key agreement ──
    let sync_dir = root.join("synced");
    std::fs::create_dir_all(&sync_dir).expect("create sync dir");
    let through =
        sync_all_from_peer(server.addr, u32::try_from(shards).expect("shards fit"), &sync_dir)
            .expect("snapshot transfer");
    let replica = Server::spawn(&sync_dir, snapshot_every, shards);
    let mut a = RemoteKv::connect(server.addr, ClientId(900)).expect("connect survivor");
    let mut b = RemoteKv::connect(replica.addr, ClientId(901)).expect("connect rejoined");
    for key in 0..32u16 {
        let va = value_of(&a.get(key).expect("survivor get"));
        let vb = value_of(&b.get(key).expect("rejoined get"));
        assert_eq!(va, vb, "rejoined replica diverges at key {key}");
    }
    drop((a, b));
    replica.kill();
    server.kill();

    println!(
        "S2 — restart storm passed (phases {phases}, {shards} shards, {total} distinct commands, \
         {puts} writes, {} slots, {} fast reads, lease epoch {epoch}, {} dedup hits, \
         {probes} probes, synced through {through} total slots)",
        summary.slots, summary.fast_reads, summary.dedup_hits
    );
    std::fs::remove_dir_all(&root).ok();
}
