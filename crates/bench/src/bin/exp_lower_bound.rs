//! E1 — the `t + 2` lower bound (Proposition 1), exhaustively.
//!
//! Sweeps every serial synchronous run of `A_{t+2}` and the HR-style
//! baseline for small `(n, t)`, reporting the exact worst-case global
//! decision round, together with the bivalency witnesses of the proof
//! (Lemmas 3–4): a bivalent initial configuration and bivalence surviving
//! to round `t - 1`.
//!
//! Usage: `exp_lower_bound [--threads N]`; without the flag the backend
//! comes from `INDULGENT_SWEEP_BACKEND` (default serial). Whenever the
//! resolved backend is parallel — via either route — the sweeps fan out
//! over the batch-sweep engine and the `(7, 2)` space (~518k serial runs
//! per algorithm) joins the table; the serial default stops at `(5, 2)`
//! and stays snappy.

use indulgent_bench::experiments::lower_bound_table;
use indulgent_bench::{render_table, sweep_backend_from_args};
use indulgent_checker::{decision_round_census_with, SweepBackend};
use indulgent_consensus::{AtPlus2, CoordinatorEcho, RotatingCoordinator};
use indulgent_model::{ProcessId, SystemConfig, Value};
use indulgent_sim::ModelKind;

fn main() {
    let backend = sweep_backend_from_args(std::env::args().skip(1));
    let mut configs = vec![(3, 1), (4, 1), (5, 2)];
    if backend != SweepBackend::Serial {
        // The (7, 2) space (~518k serial runs per algorithm) is what the
        // parallel engine is for; keep the serial default snappy.
        configs.push((7, 2));
    }
    let rows = lower_bound_table(&configs, backend);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.t.to_string(),
                r.algorithm.to_string(),
                r.runs.to_string(),
                r.worst_round.to_string(),
                format!("t+2={}", r.bound),
                if r.bivalent_initial { "yes" } else { "no" }.into(),
                if r.bivalent_at_t_minus_1 { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E1 — worst-case global decision round over ALL serial synchronous runs (Prop. 1)",
            &["n", "t", "algorithm", "runs", "worst", "bound", "bivalent C0", "bivalent t-1"],
            &table,
        )
    );
    println!(
        "Every ES algorithm's worst case is >= t + 2; A_t+2 attains it exactly. \
         (sweep backend: {backend:?})"
    );

    // Decision-round census over the (5, 2) serial-run space: A_t+2 is a
    // single bar at t + 2 while the baseline spreads up to 2t + 2.
    let config = SystemConfig::majority(5, 2).expect("valid config");
    let props: Vec<Value> = (0..5).map(|i| Value::new(i as u64 + 1)).collect();
    let at = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    };
    let census = decision_round_census_with(&at, config, ModelKind::Es, &props, 4, 40, backend)
        .expect("A_t+2 satisfies consensus");
    println!("\nA_t+2 decision-round census over {} serial runs (n=5, t=2):", census.runs);
    for (round, count) in &census.counts {
        println!("  round {round}: {count} runs");
    }
    let hr = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
    let census = decision_round_census_with(&hr, config, ModelKind::Es, &props, 6, 40, backend)
        .expect("CoordinatorEcho satisfies consensus");
    println!("HR-style decision-round census over {} serial runs:", census.runs);
    for (round, count) in &census.counts {
        println!("  round {round}: {count} runs");
    }
}
