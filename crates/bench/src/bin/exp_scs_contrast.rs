//! E8 — the price of indulgence, head to head (paper Sect. 1.3):
//! FloodSet's exhaustive `t + 1` worst case in the synchronous model
//! against `A_{t+2}`'s exhaustive `t + 2` in ES, plus the executable
//! witness that deciding at round `t` in SCS violates agreement.

use indulgent_bench::experiments::scs_contrast_table;
use indulgent_bench::{render_table, sweep_backend_from_args};

fn main() {
    let backend = sweep_backend_from_args(std::env::args().skip(1));
    let rows = scs_contrast_table(&[(3, 1), (4, 1), (4, 2), (5, 2)], backend);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.t.to_string(),
                r.floodset_scs.to_string(),
                r.at_plus2_es.map_or("n/a".into(), |v| v.to_string()),
                r.at_plus2_es.map_or("n/a".into(), |v| (v - r.floodset_scs).to_string()),
                if r.truncated_violates { "caught" } else { "MISSED" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E8 — SCS (FloodSet, t+1) vs ES (A_t+2, t+2): the price is one round",
            &["n", "t", "SCS worst", "ES worst", "price", "t-round variant"],
            &table,
        )
    );
    println!("ES column is n/a where t >= n/2: indulgent consensus does not exist there,");
    println!("while SCS tolerates up to t = n - 2 — the resilience price of indulgence.");
}
