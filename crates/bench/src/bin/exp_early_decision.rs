//! E7 — early decision in synchronous runs (paper Sect. 6): the `f + 2`
//! lower bound for runs with at most `f` crashes. `A_{t+2}` pays `t + 2`
//! regardless of the actual `f` (early-decision tightness for
//! `n/3 <= t < n/2` was open at publication; [5] later closed it);
//! `A_{f+2}` already achieves `f + 2` when `t < n/3`.

use indulgent_bench::experiments::early_decision_table_with;
use indulgent_bench::{render_table, sweep_backend_from_args};

fn main() {
    // `--threads N` fans the independent seeded runs over the sweep
    // engine's worker pool; rows are identical for every thread count.
    let backend = sweep_backend_from_args(std::env::args().skip(1));
    let rows = early_decision_table_with(300, backend);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.f.to_string(),
                r.at_plus2.to_string(),
                r.af_plus2.to_string(),
                r.early_scs.to_string(),
                r.bound.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "E7 — early decision with f actual crashes (synchronous runs)",
            &[
                "f",
                "A_t+2 (n=5,t=2)",
                "A_f+2 (n=7,t=2)",
                "EarlyFloodSet SCS (n=5,t=2)",
                "bound f+2"
            ],
            &table,
        )
    );
    println!("A_t+2 always pays t + 2 = 4; A_f+2 tracks the f + 2 early-decision bound,");
    println!("and the SCS algorithm meets min(f + 2, t + 1) — one round cheaper at f = t.");
}
