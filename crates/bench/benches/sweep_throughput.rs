//! B4 — sweep throughput: schedules/second of the exhaustive worst-case
//! sweep (the checker's hot loop), serial versus the parallel batch-sweep
//! engine at 2 and 4 workers.
//!
//! The swept space is the full `n = 5, t = 2` serial-run space with
//! crashes in rounds `1..=4` (15 681 schedules per iteration); every
//! backend produces the identical `WorstCaseReport`, so the timings are
//! apples to apples. Criterion's throughput annotation is the schedule
//! count, so the report reads directly in schedules/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indulgent_checker::{worst_case_decision_round_with, SweepBackend};
use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, SystemConfig, Value};
use indulgent_sim::{count_serial_schedules, ModelKind};

fn bench_sweep_throughput(c: &mut Criterion) {
    let config = SystemConfig::majority(5, 2).expect("valid config");
    let crash_horizon = 4;
    let schedules = count_serial_schedules(config, crash_horizon);
    let props: Vec<Value> = (0..5).map(|i| Value::new(i as u64 * 2 + 1)).collect();
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    };

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(schedules));
    for (label, backend) in [
        ("serial", SweepBackend::Serial),
        ("parallel-2", SweepBackend::parallel(2)),
        ("parallel-4", SweepBackend::parallel(4)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("worst_case_n5_t2", label),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    worst_case_decision_round_with(
                        &factory,
                        config,
                        ModelKind::Es,
                        &props,
                        crash_horizon,
                        30,
                        backend,
                    )
                    .expect("A_t+2 satisfies consensus")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
