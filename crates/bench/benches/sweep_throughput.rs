//! B4 — sweep throughput: schedules/second of the exhaustive worst-case
//! sweep (the checker's hot loop), across execution engines and backends:
//!
//! * `replay-serial` — the retired run-from-scratch baseline: every serial
//!   schedule enumerated, then re-executed from round 1;
//! * `incremental-serial` — the fork-on-branch engine: enumeration fused
//!   with execution, each shared prefix executed once (an algorithmic
//!   speedup independent of thread count);
//! * `incremental-parallel-2/4` — the same engine with work units fanned
//!   over the pooled workers.
//!
//! The swept space is the full `n = 5, t = 2` serial-run space with
//! crashes in rounds `1..=4` (15 681 schedules per iteration); every
//! engine produces the identical `WorstCaseReport`, so the timings are
//! apples to apples. Criterion's throughput annotation is the schedule
//! count, so the report reads directly in schedules/second.
//!
//! Besides the criterion output, the bench emits a machine-readable
//! `BENCH_sweep.json` (schedules/second per backend, the
//! incremental-over-replay speedup, and the engine counters of one
//! incremental-serial sweep — rounds stepped, shared-broadcast fast-path
//! hits, deliveries built, payload clones, snapshot forks) into the
//! working directory — CI uploads it as an artifact and diffs it against
//! the committed baseline so the perf trajectory is tracked PR over PR.
//! Set `BENCH_SWEEP_JSON` to redirect the file, or to `0` to skip it.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indulgent_checker::{
    worst_case_decision_round_replay, worst_case_decision_round_with, SweepBackend, WorstCaseReport,
};
use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, SystemConfig, Value};
use indulgent_sim::{count_serial_schedules, engine_counters, ModelKind};

const CRASH_HORIZON: u32 = 4;
const RUN_HORIZON: u32 = 30;

/// One measured engine/backend combination.
struct Variant {
    name: &'static str,
    engine: &'static str,
    threads: usize,
    run: fn(&Bench) -> WorstCaseReport,
}

struct Bench {
    config: SystemConfig,
    props: Vec<Value>,
}

impl Bench {
    fn factory(&self) -> impl Fn(usize, Value) -> AtPlus2<RotatingCoordinator> + Sync + '_ {
        let config = self.config;
        move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        }
    }

    fn replay(&self, backend: SweepBackend) -> WorstCaseReport {
        worst_case_decision_round_replay(
            &self.factory(),
            self.config,
            ModelKind::Es,
            &self.props,
            CRASH_HORIZON,
            RUN_HORIZON,
            backend,
        )
        .expect("A_t+2 satisfies consensus")
    }

    fn incremental(&self, backend: SweepBackend) -> WorstCaseReport {
        worst_case_decision_round_with(
            &self.factory(),
            self.config,
            ModelKind::Es,
            &self.props,
            CRASH_HORIZON,
            RUN_HORIZON,
            backend,
        )
        .expect("A_t+2 satisfies consensus")
    }
}

const VARIANTS: &[Variant] = &[
    Variant {
        name: "replay-serial",
        engine: "replay",
        threads: 1,
        run: |b| b.replay(SweepBackend::Serial),
    },
    Variant {
        name: "incremental-serial",
        engine: "incremental",
        threads: 1,
        run: |b| b.incremental(SweepBackend::Serial),
    },
    Variant {
        name: "incremental-parallel-2",
        engine: "incremental",
        threads: 2,
        run: |b| b.incremental(SweepBackend::parallel(2)),
    },
    Variant {
        name: "incremental-parallel-4",
        engine: "incremental",
        threads: 4,
        run: |b| b.incremental(SweepBackend::parallel(4)),
    },
];

fn bench_sweep_throughput(c: &mut Criterion) {
    let bench = Bench {
        config: SystemConfig::majority(5, 2).expect("valid config"),
        props: (0..5).map(|i| Value::new(i as u64 * 2 + 1)).collect(),
    };
    let schedules = count_serial_schedules(bench.config, CRASH_HORIZON);

    // Sanity: every variant computes the identical report before we time
    // anything (the differential suite checks this exhaustively; the bench
    // refuses to publish apples-to-oranges numbers). The replay-serial
    // variant IS the reference, so only the others need comparing.
    let reference = bench.replay(SweepBackend::Serial);
    for variant in &VARIANTS[1..] {
        assert_eq!((variant.run)(&bench), reference, "{} diverged", variant.name);
    }

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(schedules));
    for variant in VARIANTS {
        group.bench_with_input(
            BenchmarkId::new("worst_case_n5_t2", variant.name),
            variant,
            |b, variant| b.iter(|| (variant.run)(&bench)),
        );
    }
    group.finish();

    emit_json(&bench, schedules);
}

/// Times `f` and returns its best wall-clock duration over `iters` runs
/// (after one warmup).
fn best_of(iters: u32, mut f: impl FnMut()) -> Duration {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

/// Writes `BENCH_sweep.json`: schedules/second per engine/backend and the
/// single-core incremental-over-replay speedup.
///
/// Cargo runs benches with the working directory set to the owning
/// package (`crates/bench`), so the default path anchors at the workspace
/// root via `CARGO_MANIFEST_DIR` — that is where CI picks the artifact up.
fn emit_json(bench: &Bench, schedules: u64) {
    let path = std::env::var("BENCH_SWEEP_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").into());
    if path == "0" {
        return;
    }
    let mut rows = Vec::new();
    for variant in VARIANTS {
        let elapsed = best_of(3, || {
            let _ = (variant.run)(bench);
        });
        let secs = elapsed.as_secs_f64();
        rows.push((variant, secs, schedules as f64 / secs));
    }
    let replay_rate = rows
        .iter()
        .find(|(v, _, _)| v.name == "replay-serial")
        .map(|&(_, _, rate)| rate)
        .expect("replay baseline measured");
    let incremental_rate = rows
        .iter()
        .find(|(v, _, _)| v.name == "incremental-serial")
        .map(|&(_, _, rate)| rate)
        .expect("incremental serial measured");

    // Engine counters over exactly one incremental-serial sweep: *what*
    // the engine did, alongside how fast it did it. The counters are
    // process-wide, so measure while nothing else runs.
    let before = engine_counters().snapshot();
    let _ = bench.incremental(SweepBackend::Serial);
    let counters = engine_counters().snapshot().since(&before);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sweep_throughput\",\n");
    json.push_str("  \"workload\": \"worst_case_n5_t2\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": 5, \"t\": 2, \"crash_horizon\": {CRASH_HORIZON}, \"run_horizon\": {RUN_HORIZON}}},"
    );
    let _ = writeln!(json, "  \"schedules_per_iter\": {schedules},");
    let _ = writeln!(
        json,
        "  \"incremental_over_replay_single_core\": {:.3},",
        incremental_rate / replay_rate
    );
    let _ = writeln!(
        json,
        "  \"incremental_serial_counters\": {{\"rounds_stepped\": {}, \"fast_path_rounds\": {}, \"deliveries_built\": {}, \"messages_cloned\": {}, \"forks\": {}}},",
        counters.rounds_stepped,
        counters.fast_path_rounds,
        counters.deliveries_built,
        counters.messages_cloned,
        counters.forks
    );
    json.push_str("  \"backends\": [\n");
    for (i, (variant, secs, rate)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \"seconds_per_iter\": {:.6}, \"schedules_per_second\": {:.1}}}",
            variant.name, variant.engine, variant.threads, secs, rate
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
