//! B1a — simulator throughput: wall-clock cost of full `A_{t+2}` runs as
//! the system size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, SystemConfig, Value};
use indulgent_sim::{run_schedule, ModelKind, Schedule};

fn proposals(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new((((i + n / 2) % n) as u64) * 2 + 1)).collect()
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput");
    for n in [4usize, 8, 16, 32, 64] {
        let t = n / 2 - 1;
        let config = SystemConfig::majority(n, t).expect("valid config");
        let props = proposals(n);
        let schedule = Schedule::failure_free(config, ModelKind::Es);
        let rounds = t as u64 + 2;
        group.throughput(Throughput::Elements(rounds * n as u64));
        group.bench_with_input(BenchmarkId::new("at_plus2_sync_run", n), &n, |b, _| {
            b.iter(|| {
                let factory = move |i: usize, v: Value| {
                    let id = ProcessId::new(i);
                    AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                };
                let outcome = run_schedule(&factory, &props, &schedule, 4 * rounds as u32)
                    .expect("one proposal per process");
                assert!(outcome.all_correct_decided());
                outcome
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_throughput);
criterion_main!(benches);
