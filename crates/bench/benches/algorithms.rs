//! B1b — per-algorithm cost of one failure-free synchronous run, plus the
//! threaded runtime for comparison with the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use indulgent_consensus::{
    AfPlus2, AtPlus2, CoordinatorEcho, FloodSet, LeaderEcho, RotatingCoordinator, Standalone,
};
use indulgent_model::{ProcessId, SystemConfig, Value};
use indulgent_runtime::{run_network, NetworkConfig};
use indulgent_sim::{run_schedule, ModelKind, Schedule};

fn proposals(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new((((i + n / 2) % n) as u64) * 2 + 1)).collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms_sync_run");
    let config = SystemConfig::majority(7, 3).expect("valid config");
    let props = proposals(7);
    let schedule = Schedule::failure_free(config, ModelKind::Es);

    group.bench_function("at_plus2", |b| {
        b.iter(|| {
            let f = move |i: usize, v: Value| {
                let id = ProcessId::new(i);
                AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
            };
            run_schedule(&f, &props, &schedule, 40).expect("one proposal per process")
        });
    });
    group.bench_function("coordinator_echo", |b| {
        b.iter(|| {
            let f = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
            run_schedule(&f, &props, &schedule, 40).expect("one proposal per process")
        });
    });
    group.bench_function("rotating_coordinator", |b| {
        b.iter(|| {
            let f = move |i: usize, v: Value| {
                Standalone::new(RotatingCoordinator::new(config, ProcessId::new(i)), v)
            };
            run_schedule(&f, &props, &schedule, 40).expect("one proposal per process")
        });
    });

    let third = SystemConfig::third(7, 2).expect("valid config");
    group.bench_function("af_plus2", |b| {
        b.iter(|| {
            let f = move |i: usize, v: Value| AfPlus2::new(third, ProcessId::new(i), v);
            run_schedule(&f, &props, &schedule, 40).expect("one proposal per process")
        });
    });
    group.bench_function("leader_echo", |b| {
        b.iter(|| {
            let f = move |i: usize, v: Value| LeaderEcho::new(third, ProcessId::new(i), v);
            run_schedule(&f, &props, &schedule, 40).expect("one proposal per process")
        });
    });

    let scs = SystemConfig::synchronous(7, 3).expect("valid config");
    let scs_schedule = Schedule::failure_free(scs, ModelKind::Scs);
    group.bench_function("floodset_scs", |b| {
        b.iter(|| {
            let f = move |_i: usize, v: Value| FloodSet::new(scs, v);
            run_schedule(&f, &props, &scs_schedule, 20).expect("one proposal per process")
        });
    });
    group.finish();

    // Threaded runtime: one sample per iteration is expensive; keep the
    // sample count small.
    let mut group = c.benchmark_group("threaded_runtime");
    group.sample_size(10);
    group.bench_function("at_plus2_network_n5", |b| {
        let config = SystemConfig::majority(5, 2).expect("valid config");
        let props = proposals(5);
        b.iter(|| {
            let f = move |i: usize, v: Value| {
                let id = ProcessId::new(i);
                AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
            };
            let net = NetworkConfig::synchronous(config);
            run_network(config, &f, &props, &net)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
