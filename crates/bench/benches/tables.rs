//! B1c — table regeneration benches: every experiment table of
//! `EXPERIMENTS.md` is regenerated (at reduced parameters) under criterion,
//! so `cargo bench` exercises each end to end and times it.

use criterion::{criterion_group, criterion_main, Criterion};
use indulgent_sim::SweepBackend;

use indulgent_bench::experiments::{
    asynchrony_table, baseline_comparison_table, diamond_s_table, early_decision_table,
    eventual_decision_table, failure_free_table, fast_decision_table, lower_bound_table,
    scs_contrast_table,
};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_tables");
    group.sample_size(10);

    group.bench_function("e1_lower_bound", |b| {
        b.iter(|| lower_bound_table(&[(3, 1), (4, 1)], SweepBackend::Serial));
    });
    group.bench_function("e2_fast_decision", |b| {
        b.iter(|| fast_decision_table(&[5, 7], 50));
    });
    group.bench_function("e3_baseline_comparison", |b| {
        b.iter(|| baseline_comparison_table(&[1, 2, 3]));
    });
    group.bench_function("e4_diamond_s", |b| {
        b.iter(|| diamond_s_table(&[(5, 2)], 30));
    });
    group.bench_function("e5_failure_free", |b| {
        b.iter(|| failure_free_table(&[5, 7]));
    });
    group.bench_function("e6_eventual_decision", |b| {
        b.iter(|| eventual_decision_table(&[0, 2], &[0, 1, 2], 10));
    });
    group.bench_function("e7_early_decision", |b| {
        b.iter(|| early_decision_table(50));
    });
    group.bench_function("e8_scs_contrast", |b| {
        b.iter(|| scs_contrast_table(&[(3, 1), (4, 1)], SweepBackend::Serial));
    });
    group.bench_function("e9_asynchrony", |b| {
        b.iter(|| asynchrony_table(&[1, 3, 5], 30));
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
