//! Thread-per-process message-passing runtime.
//!
//! The paper's model is abstract; this crate gives it a concrete,
//! wall-clock incarnation: every process is an OS thread, messages travel
//! over crossbeam channels with an injectable delay model, and round
//! synchronization works the way eventually synchronous systems do in
//! practice — wait for a quorum of `n - t` current-round messages
//! (mandatory, this is the model's t-resilience), then a grace period for
//! stragglers, then move on. A message that misses its round's grace window
//! is *suspected* exactly as in ES: it still arrives later (reliable
//! channels), tagged with the round it was sent in.
//!
//! The same [`RoundProcess`] automatons that run under the deterministic
//! simulator run here unchanged, which is the point: `quickstart` decisions
//! in the simulator carry over to a racing, multi-threaded execution. Use
//! [`DelayModel::AsyncUntil`] to inject an asynchronous prefix (false
//! suspicions) and [`NetworkConfig::crash`] to crash processes at chosen
//! rounds.
//!
//! This substrate replaces the tokio-style network harness a reproduction
//! might otherwise reach for: round-based algorithms need no async I/O, so
//! plain threads and channels keep the dependency set small (see
//! DESIGN.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessFactory, ProcessId, ProcessSet, Round, RoundProcess,
    RunOutcome, Step, SystemConfig, Value,
};

/// A message in flight: payload plus wire metadata.
#[derive(Debug, Clone)]
struct Envelope<M> {
    sender: ProcessId,
    sent_round: Round,
    deliver_at: Instant,
    msg: M,
}

/// When messages become visible to their receiver.
#[derive(Debug, Clone, Copy)]
pub enum DelayModel {
    /// Deliver instantly (a synchronous network).
    Instant,
    /// Before `until_round`, each message is independently delayed by
    /// `delay` with probability `probability` (deterministically derived
    /// from `seed` and the message coordinates); from `until_round` on the
    /// network is synchronous. This produces the ES asynchronous prefix:
    /// delayed messages miss their round's grace window and cause false
    /// suspicions, then arrive late.
    AsyncUntil {
        /// First synchronous round (the model's `K`).
        until_round: u32,
        /// Extra latency for delayed messages.
        delay: Duration,
        /// Per-message delay probability in `[0, 1]`.
        probability: f64,
        /// Determinism seed.
        seed: u64,
    },
}

impl DelayModel {
    fn delay_for(&self, round: Round, from: ProcessId, to: ProcessId) -> Duration {
        match *self {
            DelayModel::Instant => Duration::ZERO,
            DelayModel::AsyncUntil { until_round, delay, probability, seed } => {
                if round.get() >= until_round {
                    return Duration::ZERO;
                }
                // Deterministic per-edge coin flip (splitmix64).
                let mut x = seed
                    ^ (u64::from(round.get()) << 32)
                    ^ ((from.index() as u64) << 16)
                    ^ (to.index() as u64);
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
                if unit < probability {
                    delay
                } else {
                    Duration::ZERO
                }
            }
        }
    }
}

/// Configuration of a networked run.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Grace period waited for stragglers after the `n - t` quorum of
    /// current-round messages has arrived. Messages missing the window are
    /// suspected for that round.
    pub grace: Duration,
    /// Hard bound on rounds executed per process.
    pub max_rounds: u32,
    /// The delay model.
    pub delays: DelayModel,
    /// Injected crash rounds per process (crash happens at the start of the
    /// round, before sending).
    pub crashes: Vec<Option<Round>>,
}

impl NetworkConfig {
    /// A synchronous network for `config` with a sensible test-sized grace
    /// window and no crashes.
    #[must_use]
    pub fn synchronous(config: SystemConfig) -> Self {
        NetworkConfig {
            grace: Duration::from_millis(4),
            max_rounds: 200,
            delays: DelayModel::Instant,
            crashes: vec![None; config.n()],
        }
    }

    /// Schedules `process` to crash at the start of `round`.
    #[must_use]
    pub fn crash(mut self, process: ProcessId, round: Round) -> Self {
        self.crashes[process.index()] = Some(round);
        self
    }

    /// Sets the delay model.
    #[must_use]
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }
}

/// Outcome of a networked run.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// The consensus outcome (decisions are tagged with the *round* in
    /// which each process decided, comparable with simulator outcomes).
    pub outcome: RunOutcome,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

/// Tracks which processes have finished (decided or crashed); everyone
/// keeps relaying until the mask is full so no process is stranded.
#[derive(Debug)]
struct DoneMask {
    bits: AtomicU64,
    full: u64,
}

impl DoneMask {
    fn new(n: usize) -> Self {
        DoneMask { bits: AtomicU64::new(0), full: if n == 64 { u64::MAX } else { (1 << n) - 1 } }
    }

    fn mark(&self, p: ProcessId) {
        self.bits.fetch_or(1 << p.index(), Ordering::SeqCst);
    }

    fn all_done(&self) -> bool {
        self.bits.load(Ordering::SeqCst) == self.full
    }
}

/// Runs `factory`-built automatons over real threads and channels.
///
/// Every process broadcasts one message per round (including to itself,
/// instantly), waits for the `n - t` quorum of current-round messages plus
/// the grace window, and hands its automaton everything that arrived.
/// Processes keep participating after deciding (relaying their decision)
/// until every process has decided or crashed.
///
/// # Panics
///
/// Panics if `proposals.len() != config.n()`, or if a worker thread
/// panics.
pub fn run_network<F>(
    config: SystemConfig,
    factory: &F,
    proposals: &[Value],
    net: &NetworkConfig,
) -> NetReport
where
    F: ProcessFactory,
    <F::Process as RoundProcess>::Msg: Send + 'static,
    F::Process: Send + 'static,
{
    assert_eq!(proposals.len(), config.n(), "one proposal per process required");
    let n = config.n();
    let quorum = config.quorum();
    let start = Instant::now();

    let mut senders: Vec<Sender<Envelope<<F::Process as RoundProcess>::Msg>>> =
        Vec::with_capacity(n);
    #[allow(clippy::type_complexity)]
    let mut receivers: Vec<Option<Receiver<Envelope<<F::Process as RoundProcess>::Msg>>>> =
        Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);
    let done = Arc::new(DoneMask::new(n));
    let delays = net.delays;
    let grace = net.grace;
    let max_rounds = net.max_rounds;

    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let id = ProcessId::new(i);
        let mut process = factory.build(i, proposals[i]);
        let rx = receivers[i].take().expect("receiver taken once");
        let senders = Arc::clone(&senders);
        let done = Arc::clone(&done);
        let crash_round = net.crashes[i];
        handles.push(std::thread::spawn(move || {
            worker(
                id,
                &mut process,
                rx,
                &senders,
                &done,
                crash_round,
                delays,
                grace,
                quorum,
                n,
                max_rounds,
            )
        }));
    }

    let mut decisions: Vec<Option<Decision>> = vec![None; n];
    let mut rounds_executed = 0;
    for (i, h) in handles.into_iter().enumerate() {
        let (decision, last_round) = h.join().expect("worker thread panicked");
        decisions[i] = decision;
        rounds_executed = rounds_executed.max(last_round);
    }

    let crashed: ProcessSet =
        config.processes().filter(|p| net.crashes[p.index()].is_some()).collect();
    NetReport {
        outcome: RunOutcome { proposals: proposals.to_vec(), decisions, crashed, rounds_executed },
        elapsed: start.elapsed(),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<P: RoundProcess>(
    id: ProcessId,
    process: &mut P,
    rx: Receiver<Envelope<P::Msg>>,
    senders: &[Sender<Envelope<P::Msg>>],
    done: &DoneMask,
    crash_round: Option<Round>,
    delays: DelayModel,
    grace: Duration,
    quorum: usize,
    n: usize,
    max_rounds: u32,
) -> (Option<Decision>, u32) {
    // Messages that have "arrived" (deliver_at reached), keyed by the round
    // they were sent in; delivered to the automaton once the local round
    // reaches them.
    let mut arrived: BTreeMap<u32, Vec<DeliveredMsg<P::Msg>>> = BTreeMap::new();
    // Messages whose injected delay has not elapsed yet.
    let mut in_flight: Vec<Envelope<P::Msg>> = Vec::new();
    let mut decision: Option<Decision> = None;
    let mut last_round = 0;

    for k in 1..=max_rounds {
        let round = Round::new(k);
        if crash_round == Some(round) {
            done.mark(id);
            return (decision, last_round);
        }
        last_round = k;

        // Send phase: broadcast (self-delivery is instantaneous).
        let msg = process.send(round);
        let now = Instant::now();
        for (j, tx) in senders.iter().enumerate() {
            let to = ProcessId::new(j);
            let delay = if to == id { Duration::ZERO } else { delays.delay_for(round, id, to) };
            // Receivers may have exited; ignore closed channels.
            let _ = tx.send(Envelope {
                sender: id,
                sent_round: round,
                deliver_at: now + delay,
                msg: msg.clone(),
            });
        }

        // Receive phase: wait for the quorum of round-k messages, then the
        // grace window.
        let mut quorum_at: Option<Instant> = None;
        loop {
            let now = Instant::now();
            // Promote ripe in-flight messages.
            let mut i = 0;
            while i < in_flight.len() {
                if in_flight[i].deliver_at <= now {
                    let e = in_flight.swap_remove(i);
                    arrived.entry(e.sent_round.get()).or_default().push(DeliveredMsg {
                        sender: e.sender,
                        sent_round: e.sent_round,
                        msg: e.msg,
                    });
                } else {
                    i += 1;
                }
            }
            let current = arrived.get(&k).map_or(0, Vec::len);
            if current >= n {
                break;
            }
            if current >= quorum {
                let entered = *quorum_at.get_or_insert(now);
                if now.duration_since(entered) >= grace {
                    break;
                }
            }
            // Pull from the wire.
            match rx.recv_timeout(Duration::from_micros(300)) {
                Ok(e) => in_flight.push(e),
                Err(RecvTimeoutError::Timeout) => {
                    // If everyone is done we may be waiting for ghosts.
                    if done.all_done() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Deliver everything sent in rounds <= k that has arrived.
        let ready_rounds: Vec<u32> = arrived.range(..=k).map(|(&r, _)| r).collect();
        let mut batch: Vec<DeliveredMsg<P::Msg>> = Vec::new();
        for r in ready_rounds {
            batch.extend(arrived.remove(&r).unwrap_or_default());
        }
        batch.sort_by_key(|m| (m.sent_round, m.sender));
        let delivery = Delivery::new(round, batch);
        if let Step::Decide(value) = process.deliver(round, &delivery) {
            if decision.is_none() {
                decision = Some(Decision { process: id, round, value });
                done.mark(id);
            }
        }

        if done.all_done() {
            break;
        }
    }
    done.mark(id); // In case we hit max_rounds undecided.
    (decision, last_round)
}

#[cfg(test)]
mod tests {
    use indulgent_consensus::{AtPlus2, CoordinatorEcho, RotatingCoordinator};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    fn at_factory(
        config: SystemConfig,
    ) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> {
        move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        }
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn synchronous_network_decides_at_t_plus_2() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config);
        let report = run_network(config, &at_factory(config), &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
        assert_eq!(
            report.outcome.global_decision_round(),
            Some(Round::new(4)),
            "t + 2 fast decision should carry over to the threaded runtime"
        );
        for d in report.outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(2));
        }
    }

    #[test]
    fn crashed_process_is_tolerated() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config).crash(ProcessId::new(1), Round::new(2));
        let report = run_network(config, &at_factory(config), &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
        assert!(report.outcome.crashed.contains(ProcessId::new(1)));
        assert!(report.outcome.decision_of(ProcessId::new(1)).is_none());
    }

    #[test]
    fn asynchronous_prefix_still_terminates_consistently() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config).with_delays(DelayModel::AsyncUntil {
            until_round: 5,
            delay: Duration::from_millis(40),
            probability: 0.3,
            seed: 7,
        });
        let report = run_network(config, &at_factory(config), &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
    }

    #[test]
    fn coordinator_echo_runs_on_the_network() {
        let config = cfg();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let net = NetworkConfig::synchronous(config);
        let report = run_network(config, &factory, &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
        assert_eq!(report.outcome.global_decision_round(), Some(Round::new(2)));
    }

    #[test]
    fn delay_model_is_deterministic() {
        let m = DelayModel::AsyncUntil {
            until_round: 4,
            delay: Duration::from_millis(10),
            probability: 0.5,
            seed: 42,
        };
        let a = m.delay_for(Round::new(2), ProcessId::new(1), ProcessId::new(3));
        let b = m.delay_for(Round::new(2), ProcessId::new(1), ProcessId::new(3));
        assert_eq!(a, b);
        // After the synchrony round there are no delays.
        assert_eq!(
            m.delay_for(Round::new(4), ProcessId::new(1), ProcessId::new(3)),
            Duration::ZERO
        );
    }

    #[test]
    fn wall_clock_is_reported() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config);
        let report = run_network(config, &at_factory(config), &vals(&[1, 1, 1, 1, 1]), &net);
        assert!(report.elapsed > Duration::ZERO);
    }
}
