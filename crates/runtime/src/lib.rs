//! Thread-per-process message-passing runtime.
//!
//! The paper's model is abstract; this crate gives it a concrete,
//! wall-clock incarnation: every process is an OS thread, messages travel
//! over crossbeam channels with an injectable delay model, and round
//! synchronization works the way eventually synchronous systems do in
//! practice — wait for a quorum of `n - t` current-round messages
//! (mandatory, this is the model's t-resilience), then a grace period for
//! stragglers, then move on. A message that misses its round's grace window
//! is *suspected* exactly as in ES: it still arrives later (reliable
//! channels), tagged with the round it was sent in.
//!
//! The same [`RoundProcess`] automatons that run under the deterministic
//! simulator run here unchanged, which is the point: `quickstart` decisions
//! in the simulator carry over to a racing, multi-threaded execution. Use
//! [`DelayModel::AsyncUntil`] to inject an asynchronous prefix (false
//! suspicions) and [`InstanceSpec::crash`] to crash processes at chosen
//! rounds.
//!
//! # Sessions: reusable threads, pipelined instances
//!
//! The runtime's unit of reuse is a [`Session`]: `n` worker threads and
//! their channels, spawned **once** and kept alive across any number of
//! consensus instances. [`Session::start_instance`] hands each worker an
//! automaton and a per-instance [`InstanceSpec`] (crash rounds, delay
//! model, round budget); results stream back per replica as
//! [`ReplicaResult`]s. Multiple instances may be in flight at once — every
//! message is tagged with its instance, and each worker interleaves the
//! round protocols of all its active instances in one event loop. This is
//! the substrate of the `indulgent-log` replicated-log subsystem: a
//! pipelined log keeps a window of instances running concurrently and
//! pays thread/channel setup exactly once, instead of per decision the
//! way the old one-shot entry point did.
//!
//! [`run_network`] survives as the one-shot convenience wrapper: a fresh
//! session, one instance, a [`NetReport`].
//!
//! # Crash semantics
//!
//! Crashes are *logical*, defined against the per-instance round clock: a
//! spec entry `crash at round r` means the worker participates in rounds
//! `< r` of that instance and is silent from round `r` on — exactly the
//! simulator's `crash_before_send`. With pipelined instances a permanent
//! replica crash is expressed by crashing the replica at its chosen
//! `(instance, round)` and at round 1 of every later instance; because
//! the crash point of each instance is fixed logically rather than by
//! wall-clock coincidence, crash-only log executions remain
//! deterministically comparable to the simulator's multi-shot executor at
//! any pipeline depth (the `indulgent-log` differential tests rely on
//! this).
//!
//! This substrate replaces the tokio-style network harness a reproduction
//! might otherwise reach for: round-based algorithms need no async I/O, so
//! plain threads and channels keep the dependency set small (see
//! DESIGN.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use indulgent_model::{
    Decision, DeliveredMsg, Delivery, ProcessFactory, ProcessId, ProcessSet, Round, RoundProcess,
    RunOutcome, Step, SystemConfig, Value,
};

/// The `runtime_session` metric family: what this process's sessions
/// have done, summed across all of them. Instances and results are the
/// session's unit of work, so these four counters say how much consensus
/// traffic flowed through the runtime and how much of it reused pooled
/// automatons — the recycling hit rate the zero-alloc hot path depends on.
#[derive(Debug)]
struct SessionMetrics {
    instances_started: indulgent_obs::Counter,
    recycled_starts: indulgent_obs::Counter,
    results_delivered: indulgent_obs::Counter,
    decisions_delivered: indulgent_obs::Counter,
}

static SESSION_METRICS: SessionMetrics = SessionMetrics {
    instances_started: indulgent_obs::Counter::new(),
    recycled_starts: indulgent_obs::Counter::new(),
    results_delivered: indulgent_obs::Counter::new(),
    decisions_delivered: indulgent_obs::Counter::new(),
};

impl indulgent_obs::MetricFamily for SessionMetrics {
    fn name(&self) -> &'static str {
        "runtime_session"
    }

    fn emit(&self, sink: &mut dyn indulgent_obs::MetricSink) {
        sink.counter("instances_started", self.instances_started.get());
        sink.counter("recycled_starts", self.recycled_starts.get());
        sink.counter("results_delivered", self.results_delivered.get());
        sink.counter("decisions_delivered", self.decisions_delivered.get());
    }
}

static REGISTER_SESSION_METRICS: std::sync::Once = std::sync::Once::new();

fn session_metrics() -> &'static SessionMetrics {
    REGISTER_SESSION_METRICS.call_once(|| indulgent_obs::register_family(&SESSION_METRICS));
    &SESSION_METRICS
}

/// Tallies one result on its way out of the session's receive paths.
fn note_result(r: ReplicaResult) -> ReplicaResult {
    let metrics = session_metrics();
    metrics.results_delivered.incr();
    if r.decision.is_some() {
        metrics.decisions_delivered.incr();
    }
    r
}

/// A message in flight: payload plus wire metadata.
#[derive(Debug, Clone)]
struct Envelope<M> {
    sender: ProcessId,
    instance: u64,
    sent_round: Round,
    deliver_at: Instant,
    msg: M,
}

/// When messages become visible to their receiver.
#[derive(Debug, Clone, Copy)]
pub enum DelayModel {
    /// Deliver instantly (a synchronous network).
    Instant,
    /// Every message between distinct processes takes `delay` to arrive —
    /// a uniform network RTT. Rounds become latency-bound (nobody is
    /// suspected: all messages arrive together, within the quorum wait),
    /// which is the regime where pipelining consensus instances pays:
    /// the log throughput bench uses this as its realistic network.
    Uniform {
        /// One-way latency applied to every non-self message.
        delay: Duration,
    },
    /// Before `until_round`, each message is independently delayed by
    /// `delay` with probability `probability` (deterministically derived
    /// from `seed` and the message coordinates); from `until_round` on the
    /// network is synchronous. This produces the ES asynchronous prefix:
    /// delayed messages miss their round's grace window and cause false
    /// suspicions, then arrive late.
    AsyncUntil {
        /// First synchronous round (the model's `K`).
        until_round: u32,
        /// Extra latency for delayed messages.
        delay: Duration,
        /// Per-message delay probability in `[0, 1]`.
        probability: f64,
        /// Determinism seed.
        seed: u64,
    },
}

impl DelayModel {
    fn delay_for(&self, round: Round, from: ProcessId, to: ProcessId) -> Duration {
        match *self {
            DelayModel::Instant => Duration::ZERO,
            DelayModel::Uniform { delay } => delay,
            DelayModel::AsyncUntil { until_round, delay, probability, seed } => {
                if round.get() >= until_round {
                    return Duration::ZERO;
                }
                if edge_coin(seed, round.get(), from, to) < probability {
                    delay
                } else {
                    Duration::ZERO
                }
            }
        }
    }
}

/// Deterministic per-edge coin in `[0, 1)` (splitmix64) over a message's
/// `(seed, round, sender, receiver)` coordinates.
///
/// This is the randomness source of [`DelayModel::AsyncUntil`], exported
/// so other adversaries built on the same coordinates (e.g. the
/// `indulgent-log` simulator substrate's seeded delay schedules) share
/// one construction instead of drifting copies.
#[must_use]
pub fn edge_coin(seed: u64, round: u32, from: ProcessId, to: ProcessId) -> f64 {
    let mut x =
        seed ^ (u64::from(round) << 32) ^ ((from.index() as u64) << 16) ^ (to.index() as u64);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration of a one-shot networked run (see [`run_network`]).
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Grace period waited for stragglers after the `n - t` quorum of
    /// current-round messages has arrived. Messages missing the window are
    /// suspected for that round.
    pub grace: Duration,
    /// Hard bound on rounds executed per process.
    pub max_rounds: u32,
    /// The delay model.
    pub delays: DelayModel,
    /// Injected crash rounds per process (crash happens at the start of the
    /// round, before sending).
    pub crashes: Vec<Option<Round>>,
}

impl NetworkConfig {
    /// A synchronous network for `config` with a sensible test-sized grace
    /// window and no crashes.
    #[must_use]
    pub fn synchronous(config: SystemConfig) -> Self {
        NetworkConfig {
            grace: Duration::from_millis(4),
            max_rounds: 200,
            delays: DelayModel::Instant,
            crashes: vec![None; config.n()],
        }
    }

    /// Schedules `process` to crash at the start of `round`.
    #[must_use]
    pub fn crash(mut self, process: ProcessId, round: Round) -> Self {
        self.crashes[process.index()] = Some(round);
        self
    }

    /// Sets the delay model.
    #[must_use]
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }
}

/// Per-instance parameters handed to [`Session::start_instance`].
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Crash round per replica for *this* instance (`Round::FIRST` =
    /// crashed from the start; `None` = correct throughout). Logical
    /// semantics: the replica is silent in this instance from its crash
    /// round on, matching the simulator's `crash_before_send`.
    pub crashes: Vec<Option<Round>>,
    /// The delay model for this instance's messages.
    pub delays: DelayModel,
    /// Hard bound on rounds executed per replica; a replica reaching it
    /// undecided reports `None`.
    pub max_rounds: u32,
}

impl InstanceSpec {
    /// A synchronous, crash-free instance for `config`.
    #[must_use]
    pub fn synchronous(config: SystemConfig) -> Self {
        InstanceSpec {
            crashes: vec![None; config.n()],
            delays: DelayModel::Instant,
            max_rounds: 200,
        }
    }

    /// Crashes `process` at the start of `round` of this instance.
    #[must_use]
    pub fn crash(mut self, process: ProcessId, round: Round) -> Self {
        self.crashes[process.index()] = Some(round);
        self
    }

    /// Sets the delay model.
    #[must_use]
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }

    /// Sets the per-replica round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }
}

/// Outcome of a one-shot networked run.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// The consensus outcome (decisions are tagged with the *round* in
    /// which each process decided, comparable with simulator outcomes).
    pub outcome: RunOutcome,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

/// One replica's terminal report for one instance, streamed back to the
/// session owner: its first decision (or `None` if it crashed or ran out
/// of rounds undecided) and the last round it executed.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaResult {
    /// The instance this result belongs to.
    pub instance: u64,
    /// The reporting replica.
    pub replica: ProcessId,
    /// The replica's first decision, if it reached one.
    pub decision: Option<Decision>,
    /// The last round the replica executed when it reported.
    pub last_round: u32,
}

/// All `n` replica results of one instance, assembled by
/// [`Session::wait_instance`].
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// The instance id.
    pub instance: u64,
    /// First decision per replica (index = replica id).
    pub decisions: Vec<Option<Decision>>,
    /// Highest round any replica executed before reporting.
    pub rounds_executed: u32,
}

/// Tracks, per instance, which replicas have finished (decided, crashed,
/// or exhausted their round budget); workers retire an instance — and
/// stop relaying its decisions — once every replica is accounted for.
///
/// Entries are evicted once every worker has *observed* the full mask
/// (one retire acknowledgement per worker), so a long-lived session's
/// registry stays bounded by the in-flight window instead of growing
/// with every instance ever run.
#[derive(Debug)]
struct DoneRegistry {
    n: usize,
    full: u64,
    /// instance -> (finished-replica mask, retire acknowledgements).
    masks: Mutex<HashMap<u64, (u64, usize)>>,
}

impl DoneRegistry {
    fn new(n: usize) -> Self {
        DoneRegistry {
            n,
            full: if n == 64 { u64::MAX } else { (1 << n) - 1 },
            masks: Mutex::new(HashMap::new()),
        }
    }

    fn mark(&self, instance: u64, p: ProcessId) {
        let mut masks = self.masks.lock().expect("registry poisoned");
        masks.entry(instance).or_insert((0, 0)).0 |= 1 << p.index();
    }

    /// Whether every replica finished `instance`; a `true` answer counts
    /// as the calling worker's retire acknowledgement (each worker asks
    /// again only until it gets `true`), and the n-th acknowledgement
    /// evicts the entry. A worker's own `mark` precedes its
    /// acknowledgement, so eviction cannot race a late finisher.
    fn is_done_ack(&self, instance: u64) -> bool {
        let mut masks = self.masks.lock().expect("registry poisoned");
        let Some(entry) = masks.get_mut(&instance) else { return false };
        if entry.0 != self.full {
            return false;
        }
        entry.1 += 1;
        if entry.1 == self.n {
            masks.remove(&instance);
        }
        true
    }
}

/// A worker's set of locally retired instances, bounded by the
/// out-of-order retirement window: a watermark covers the dense prefix
/// (instance ids are handed out from 1), a small set holds the gaps.
#[derive(Debug, Default)]
struct RetiredSet {
    /// Every instance `<= below` is retired.
    below: u64,
    /// Retired instances above the watermark.
    above: HashSet<u64>,
}

impl RetiredSet {
    fn insert(&mut self, instance: u64) {
        self.above.insert(instance);
        while self.above.remove(&(self.below + 1)) {
            self.below += 1;
        }
    }

    fn contains(&self, instance: u64) -> bool {
        instance <= self.below || self.above.contains(&instance)
    }
}

/// What a worker streams back to the session owner: replica results in
/// the normal case, a poison marker if the worker thread panics (sent
/// from the sentinel's unwind path so waiters fail loudly instead of
/// blocking forever).
#[derive(Debug)]
enum WorkerEvent {
    Result(ReplicaResult),
    Panicked(ProcessId),
}

/// Reports a worker panic to the session owner on unwind.
struct PanicSentinel {
    id: ProcessId,
    events_tx: Sender<WorkerEvent>,
}

impl Drop for PanicSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.events_tx.send(WorkerEvent::Panicked(self.id));
        }
    }
}

/// How a worker obtains the automaton of a new instance.
enum JobPayload<P> {
    /// A pre-built automaton shipped by the session owner.
    Built(P),
    /// A bare proposal: the worker recycles a retired automaton through
    /// the session's reset hook (building fresh only when the pool is
    /// empty). Requires [`Session::with_recycler`].
    Proposal(Value),
}

/// The per-instance job handed to a worker thread.
struct Job<P> {
    instance: u64,
    payload: JobPayload<P>,
    crash_round: Option<Round>,
    delays: DelayModel,
    max_rounds: u32,
}

impl<P> std::fmt::Debug for Job<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("instance", &self.instance).finish_non_exhaustive()
    }
}

/// The reset hook of a [`Recycler`]: `(process index, retired automaton,
/// next proposal)`.
type ResetFn<P> = Box<dyn Fn(usize, &mut P, Value) + Send + Sync>;

/// The build + reset hooks of a recycling session, shared with every
/// worker so retired automatons can be reset in place for the next
/// instance instead of being dropped and rebuilt (the same
/// `reset_instance` contract the simulator's multi-shot executor uses).
struct Recycler<P> {
    build: Box<dyn Fn(usize, Value) -> P + Send + Sync>,
    reset: ResetFn<P>,
}

impl<P> std::fmt::Debug for Recycler<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recycler").finish_non_exhaustive()
    }
}

/// A pool of `n` replica threads and their channels, reusable across any
/// number of (possibly concurrent) consensus instances.
///
/// Spawning threads and channels is the expensive part of a networked
/// run; a `Session` pays it once. Instances are started with
/// [`start_instance`](Session::start_instance) and complete independently;
/// results stream back through [`next_result`](Session::next_result) /
/// [`wait_instance`](Session::wait_instance) /
/// [`wait_decision`](Session::wait_decision). Dropping the session shuts
/// the workers down and joins them.
///
/// # Examples
///
/// ```
/// use indulgent_consensus::{AtPlus2, RotatingCoordinator};
/// use indulgent_model::{ProcessId, Round, SystemConfig, Value};
/// use indulgent_runtime::{InstanceSpec, Session};
///
/// let cfg = SystemConfig::majority(5, 2)?;
/// let mut session = Session::new(cfg);
/// let spec = InstanceSpec::synchronous(cfg);
/// // Two back-to-back instances on the same threads.
/// for proposals in [[6u64, 2, 8, 4, 7], [9, 9, 1, 9, 9]] {
///     let processes = (0..5)
///         .map(|i| {
///             let id = ProcessId::new(i);
///             AtPlus2::new(cfg, id, Value::new(proposals[i]), RotatingCoordinator::new(cfg, id))
///         })
///         .collect();
///     let instance = session.start_instance(processes, &spec);
///     let report = session.wait_instance(instance);
///     assert!(report.decisions.iter().all(Option::is_some));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Session<P: RoundProcess> {
    config: SystemConfig,
    job_txs: Vec<Sender<Job<P>>>,
    results_rx: Receiver<WorkerEvent>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_instance: u64,
    /// Results received but not yet consumed, grouped by instance.
    collected: HashMap<u64, Vec<ReplicaResult>>,
    /// Whether the workers hold recycler hooks (proposal-only jobs).
    recycling: bool,
}

impl<P> Session<P>
where
    P: RoundProcess + Send + 'static,
    P::Msg: Send + 'static,
{
    /// Spawns the session's `n` worker threads with the default grace
    /// window of [`NetworkConfig::synchronous`].
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        Self::with_grace(config, Duration::from_millis(4))
    }

    /// Spawns the session's worker threads with an explicit straggler
    /// grace window (see [`NetworkConfig::grace`]).
    #[must_use]
    pub fn with_grace(config: SystemConfig, grace: Duration) -> Self {
        Self::spawn(config, grace, None)
    }

    /// Spawns a *recycling* session: workers keep retired automatons in
    /// a per-thread pool and reset them in place for the next instance
    /// (`reset` receives the replica index, the pooled automaton, and
    /// the new proposal) instead of dropping per-instance allocations on
    /// the floor; `build` covers the cold start. Instances are started
    /// with [`start_instance_recycled`](Session::start_instance_recycled)
    /// — the built-process [`start_instance`](Session::start_instance)
    /// path also keeps working, feeding its retired automatons into the
    /// same pool.
    #[must_use]
    pub fn with_recycler<B, R>(config: SystemConfig, grace: Duration, build: B, reset: R) -> Self
    where
        B: Fn(usize, Value) -> P + Send + Sync + 'static,
        R: Fn(usize, &mut P, Value) + Send + Sync + 'static,
    {
        Self::spawn(
            config,
            grace,
            Some(Arc::new(Recycler { build: Box::new(build), reset: Box::new(reset) })),
        )
    }

    fn spawn(config: SystemConfig, grace: Duration, recycler: Option<Arc<Recycler<P>>>) -> Self {
        let n = config.n();
        let quorum = config.quorum();
        let mut peer_txs = Vec::with_capacity(n);
        let mut peer_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            peer_txs.push(tx);
            peer_rxs.push(Some(rx));
        }
        let peer_txs = Arc::new(peer_txs);
        let registry = Arc::new(DoneRegistry::new(n));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (results_tx, results_rx) = unbounded();

        let mut job_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, peer_rx) in peer_rxs.iter_mut().enumerate() {
            let (job_tx, job_rx) = unbounded();
            job_txs.push(job_tx);
            let ctx = WorkerCtx {
                id: ProcessId::new(i),
                job_rx,
                peer_rx: peer_rx.take().expect("receiver taken once"),
                peer_txs: Arc::clone(&peer_txs),
                results_tx: results_tx.clone(),
                registry: Arc::clone(&registry),
                shutdown: Arc::clone(&shutdown),
                grace,
                quorum,
                n,
                recycler: recycler.clone(),
            };
            handles.push(std::thread::spawn(move || worker(ctx)));
        }

        Session {
            config,
            job_txs,
            results_rx,
            shutdown,
            handles,
            next_instance: 1,
            collected: HashMap::new(),
            recycling: recycler.is_some(),
        }
    }

    /// The session's system configuration.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Starts the next consensus instance: one automaton per replica plus
    /// the instance's crash/delay/budget spec. Returns the instance id
    /// (monotonic from 1). The call never blocks; any number of instances
    /// may be in flight concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != n` or a worker thread has exited.
    pub fn start_instance(&mut self, processes: Vec<P>, spec: &InstanceSpec) -> u64 {
        assert_eq!(processes.len(), self.config.n(), "one automaton per replica required");
        let payloads = processes.into_iter().map(JobPayload::Built).collect();
        self.dispatch(payloads, spec)
    }

    /// Starts the next consensus instance from bare proposals: each worker
    /// recycles a pooled automaton through the session's reset hook (or
    /// builds one on a cold pool). Requires a session constructed with
    /// [`with_recycler`](Session::with_recycler). Same contract as
    /// [`start_instance`](Session::start_instance) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the session has no recycler, `proposals.len() != n`, or a
    /// worker thread has exited.
    pub fn start_instance_recycled(&mut self, proposals: &[Value], spec: &InstanceSpec) -> u64 {
        assert!(self.recycling, "start_instance_recycled requires Session::with_recycler");
        assert_eq!(proposals.len(), self.config.n(), "one proposal per replica required");
        let payloads = proposals.iter().map(|&v| JobPayload::Proposal(v)).collect();
        self.dispatch(payloads, spec)
    }

    fn dispatch(&mut self, payloads: Vec<JobPayload<P>>, spec: &InstanceSpec) -> u64 {
        assert_eq!(spec.crashes.len(), self.config.n(), "one crash slot per replica required");
        let metrics = session_metrics();
        metrics.instances_started.incr();
        if payloads.iter().any(|p| matches!(p, JobPayload::Proposal(_))) {
            metrics.recycled_starts.incr();
        }
        let instance = self.next_instance;
        self.next_instance += 1;
        for (i, payload) in payloads.into_iter().enumerate() {
            let job = Job {
                instance,
                payload,
                crash_round: spec.crashes[i],
                delays: spec.delays,
                max_rounds: spec.max_rounds,
            };
            self.job_txs[i].send(job).expect("worker thread exited");
        }
        instance
    }

    /// Receives one worker event, propagating worker panics to the
    /// session owner (mirroring the old joined-thread behavior).
    fn recv_result(&mut self) -> ReplicaResult {
        match self.results_rx.recv() {
            Ok(WorkerEvent::Result(r)) => note_result(r),
            Ok(WorkerEvent::Panicked(id)) => panic!("worker thread {id} panicked"),
            Err(_) => panic!("workers exited with results outstanding"),
        }
    }

    /// Receives the next replica result from any in-flight instance,
    /// blocking until one arrives.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked, or if every worker exited with
    /// results still outstanding.
    pub fn next_result(&mut self) -> ReplicaResult {
        self.recv_result()
    }

    /// Receives the next replica result if one is already queued, without
    /// blocking — the pump an *event loop* layered over a session uses
    /// (the `indulgent-server` engine interleaves socket intake, batch
    /// sealing and decision application on one thread, so it must never
    /// park on the session).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn try_next_result(&mut self) -> Option<ReplicaResult> {
        match self.results_rx.try_recv() {
            Ok(WorkerEvent::Result(r)) => Some(note_result(r)),
            Ok(WorkerEvent::Panicked(id)) => panic!("worker thread {id} panicked"),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("workers exited with the session alive"),
        }
    }

    /// Receives the next replica result, waiting at most `timeout`;
    /// `None` on timeout. The bounded-blocking variant of
    /// [`try_next_result`](Session::try_next_result) for event loops that
    /// want to sleep when idle without missing a result.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn next_result_timeout(&mut self, timeout: Duration) -> Option<ReplicaResult> {
        match self.results_rx.recv_timeout(timeout) {
            Ok(WorkerEvent::Result(r)) => Some(note_result(r)),
            Ok(WorkerEvent::Panicked(id)) => panic!("worker thread {id} panicked"),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                panic!("workers exited with the session alive")
            }
        }
    }

    /// Blocks until the first *decision* of `instance` is known and
    /// returns it, buffering results of other instances. Returns `None`
    /// only if all `n` replicas reported without any deciding (crashes +
    /// exhausted budgets).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn wait_decision(&mut self, instance: u64) -> Option<Decision> {
        loop {
            let results = self.collected.entry(instance).or_default();
            if let Some(d) = results.iter().find_map(|r| r.decision) {
                return Some(d);
            }
            if results.len() == self.config.n() {
                return None;
            }
            let r = self.recv_result();
            self.collected.entry(r.instance).or_default().push(r);
        }
    }

    /// Blocks until all `n` replicas of `instance` have reported and
    /// assembles the instance report, buffering results of other
    /// instances.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn wait_instance(&mut self, instance: u64) -> InstanceReport {
        loop {
            if self.collected.get(&instance).is_some_and(|rs| rs.len() == self.config.n()) {
                let results = self.collected.remove(&instance).expect("present");
                let mut decisions = vec![None; self.config.n()];
                let mut rounds_executed = 0;
                for r in &results {
                    decisions[r.replica.index()] = r.decision;
                    rounds_executed = rounds_executed.max(r.last_round);
                }
                return InstanceReport { instance, decisions, rounds_executed };
            }
            let r = self.recv_result();
            self.collected.entry(r.instance).or_default().push(r);
        }
    }
}

impl<P: RoundProcess> Drop for Session<P> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.job_txs.clear(); // disconnect the job channels
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Everything a worker thread owns.
struct WorkerCtx<P: RoundProcess> {
    id: ProcessId,
    job_rx: Receiver<Job<P>>,
    peer_rx: Receiver<Envelope<P::Msg>>,
    peer_txs: Arc<Vec<Sender<Envelope<P::Msg>>>>,
    results_tx: Sender<WorkerEvent>,
    registry: Arc<DoneRegistry>,
    shutdown: Arc<AtomicBool>,
    grace: Duration,
    quorum: usize,
    n: usize,
    recycler: Option<Arc<Recycler<P>>>,
}

impl<P: RoundProcess> std::fmt::Debug for WorkerCtx<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx").field("id", &self.id).finish_non_exhaustive()
    }
}

/// One instance's protocol state inside a worker: a small state machine
/// advanced opportunistically by the event loop.
struct ActiveInstance<P: RoundProcess> {
    instance: u64,
    process: P,
    crash_round: Option<Round>,
    delays: DelayModel,
    max_rounds: u32,
    /// Round currently executing.
    round: u32,
    /// Whether this round's send phase has run.
    sent: bool,
    /// When the `n - t` quorum for the current round was first observed.
    quorum_at: Option<Instant>,
    decision: Option<Decision>,
    /// Result sent to the session owner.
    reported: bool,
    /// Stopped participating (crashed or budget exhausted); waiting for
    /// the instance to retire globally.
    halted: bool,
    last_round: u32,
}

type Mailbox<M> = BTreeMap<u32, Vec<DeliveredMsg<M>>>;

fn activate<P: RoundProcess>(
    job: Job<P>,
    replica: usize,
    recycler: Option<&Recycler<P>>,
    pool: &mut Vec<P>,
) -> ActiveInstance<P> {
    let process = match job.payload {
        JobPayload::Built(p) => p,
        JobPayload::Proposal(v) => {
            let hooks = recycler.expect("proposal job on a session without a recycler");
            match pool.pop() {
                Some(mut p) => {
                    (hooks.reset)(replica, &mut p, v);
                    p
                }
                None => (hooks.build)(replica, v),
            }
        }
    };
    ActiveInstance {
        instance: job.instance,
        process,
        crash_round: job.crash_round,
        delays: job.delays,
        max_rounds: job.max_rounds,
        round: 1,
        sent: false,
        quorum_at: None,
        decision: None,
        reported: false,
        halted: false,
        last_round: 0,
    }
}

fn worker<P: RoundProcess>(ctx: WorkerCtx<P>) {
    // If anything below panics, tell the session owner on unwind so its
    // blocking waits fail loudly instead of hanging.
    let _sentinel = PanicSentinel { id: ctx.id, events_tx: ctx.results_tx.clone() };
    let mut active: Vec<ActiveInstance<P>> = Vec::new();
    // Messages whose injected delay has not elapsed yet (any instance).
    let mut in_flight: Vec<Envelope<P::Msg>> = Vec::new();
    // Arrived messages, keyed by instance then by the round they were
    // sent in. Entries may exist before the instance's job arrives (a
    // faster peer started it first).
    let mut mailboxes: HashMap<u64, Mailbox<P::Msg>> = HashMap::new();
    // Instances this worker has fully retired; stragglers are dropped.
    let mut retired = RetiredSet::default();
    // Retired automatons awaiting reuse (recycling sessions only).
    let mut pool: Vec<P> = Vec::new();
    let mut jobs_closed = false;
    let replica = ctx.id.index();

    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }

        // Accept new instances.
        loop {
            match ctx.job_rx.try_recv() {
                Ok(job) => active.push(activate(job, replica, ctx.recycler.as_deref(), &mut pool)),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    jobs_closed = true;
                    break;
                }
            }
        }

        // Promote ripe in-flight messages into the mailboxes.
        let now = Instant::now();
        let mut i = 0;
        while i < in_flight.len() {
            if in_flight[i].deliver_at <= now {
                let e = in_flight.swap_remove(i);
                if !retired.contains(e.instance) {
                    mailboxes
                        .entry(e.instance)
                        .or_default()
                        .entry(e.sent_round.get())
                        .or_default()
                        .push(DeliveredMsg {
                            sender: e.sender,
                            sent_round: e.sent_round,
                            msg: e.msg,
                        });
                }
            } else {
                i += 1;
            }
        }

        // Advance every active instance as far as it can go.
        for inst in &mut active {
            advance_instance(&ctx, inst, mailboxes.entry(inst.instance).or_default());
        }

        // Retire instances that are globally done (or locally halted and
        // globally done): free their mailboxes and drop future
        // stragglers. The registry lock is only taken for instances this
        // worker has already finished locally. Retired automatons go back
        // to the pool when the session recycles.
        let mut i = 0;
        while i < active.len() {
            let inst = &active[i];
            let gone =
                (inst.halted || inst.decision.is_some()) && ctx.registry.is_done_ack(inst.instance);
            if gone {
                mailboxes.remove(&inst.instance);
                retired.insert(inst.instance);
                let inst = active.remove(i);
                if ctx.recycler.is_some() {
                    pool.push(inst.process);
                }
            } else {
                i += 1;
            }
        }

        if jobs_closed && active.is_empty() {
            return;
        }

        if active.is_empty() && in_flight.is_empty() {
            // Idle: nothing can progress until the next job (peer
            // messages for not-yet-started instances simply queue in the
            // channel). Park on the job channel instead of spinning on
            // the wire; a new job wakes the worker immediately, the
            // timeout only bounds how long a shutdown goes unnoticed.
            match ctx.job_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(job) => active.push(activate(job, replica, ctx.recycler.as_deref(), &mut pool)),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => jobs_closed = true,
            }
            continue;
        }

        // Pull from the wire (or idle briefly).
        match ctx.peer_rx.recv_timeout(Duration::from_micros(300)) {
            Ok(e) => {
                if e.deliver_at <= Instant::now() {
                    if !retired.contains(e.instance) {
                        mailboxes
                            .entry(e.instance)
                            .or_default()
                            .entry(e.sent_round.get())
                            .or_default()
                            .push(DeliveredMsg {
                                sender: e.sender,
                                sent_round: e.sent_round,
                                msg: e.msg,
                            });
                    }
                } else {
                    in_flight.push(e);
                }
            }
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {}
        }
    }
}

/// Runs one instance's protocol forward: send if due, deliver every round
/// whose quorum-plus-grace condition is met, repeat until the instance
/// blocks on the network (or halts).
fn advance_instance<P: RoundProcess>(
    ctx: &WorkerCtx<P>,
    inst: &mut ActiveInstance<P>,
    mailbox: &mut Mailbox<P::Msg>,
) {
    while !inst.halted {
        let k = inst.round;
        if !inst.sent {
            // Logical crash: silent in this instance from the crash round
            // on (the simulator's `crash_before_send`).
            if inst.crash_round.is_some_and(|c| k >= c.get()) {
                halt_and_report(ctx, inst);
                return;
            }
            if k > inst.max_rounds {
                halt_and_report(ctx, inst);
                return;
            }
            let round = Round::new(k);
            let msg = inst.process.send(round);
            let now = Instant::now();
            for (j, tx) in ctx.peer_txs.iter().enumerate() {
                let to = ProcessId::new(j);
                let delay = if to == ctx.id {
                    Duration::ZERO
                } else {
                    inst.delays.delay_for(round, ctx.id, to)
                };
                // Receivers may have exited; ignore closed channels.
                let _ = tx.send(Envelope {
                    sender: ctx.id,
                    instance: inst.instance,
                    sent_round: round,
                    deliver_at: now + delay,
                    msg: msg.clone(),
                });
            }
            inst.sent = true;
            inst.quorum_at = None;
        }

        // Receive phase: the round completes once all `n` current-round
        // messages arrived, or the `n - t` quorum plus the grace window.
        let current = mailbox.get(&k).map_or(0, Vec::len);
        let ready = if current >= ctx.n {
            true
        } else if current >= ctx.quorum {
            let entered = *inst.quorum_at.get_or_insert_with(Instant::now);
            entered.elapsed() >= ctx.grace
        } else {
            false
        };
        if !ready {
            return;
        }

        // Deliver everything sent in rounds <= k that has arrived.
        let round = Round::new(k);
        let ready_rounds: Vec<u32> = mailbox.range(..=k).map(|(&r, _)| r).collect();
        let mut batch: Vec<DeliveredMsg<P::Msg>> = Vec::new();
        for r in ready_rounds {
            batch.extend(mailbox.remove(&r).unwrap_or_default());
        }
        batch.sort_by_key(|m| (m.sent_round, m.sender));
        let delivery = Delivery::new(round, batch);
        let step = inst.process.deliver(round, &delivery);
        inst.last_round = k;
        if let Step::Decide(value) = step {
            if inst.decision.is_none() {
                inst.decision = Some(Decision { process: ctx.id, round, value });
                ctx.registry.mark(inst.instance, ctx.id);
                report(ctx, inst);
            }
        }
        inst.round += 1;
        inst.sent = false;
    }
}

/// Stops the instance locally (crash or exhausted budget), reporting its
/// terminal state if it has not reported yet.
fn halt_and_report<P: RoundProcess>(ctx: &WorkerCtx<P>, inst: &mut ActiveInstance<P>) {
    inst.halted = true;
    ctx.registry.mark(inst.instance, ctx.id);
    report(ctx, inst);
}

/// Sends the replica's result for this instance to the session owner
/// (at most once).
fn report<P: RoundProcess>(ctx: &WorkerCtx<P>, inst: &mut ActiveInstance<P>) {
    if inst.reported {
        return;
    }
    inst.reported = true;
    let _ = ctx.results_tx.send(WorkerEvent::Result(ReplicaResult {
        instance: inst.instance,
        replica: ctx.id,
        decision: inst.decision,
        last_round: inst.last_round,
    }));
}

/// Runs `factory`-built automatons over real threads and channels: a
/// fresh [`Session`], one instance, joined on completion.
///
/// Every process broadcasts one message per round (including to itself,
/// instantly), waits for the `n - t` quorum of current-round messages plus
/// the grace window, and hands its automaton everything that arrived.
/// Processes keep participating after deciding (relaying their decision)
/// until every process has decided or crashed.
///
/// # Panics
///
/// Panics if `proposals.len() != config.n()`, or if a worker thread
/// panics.
pub fn run_network<F>(
    config: SystemConfig,
    factory: &F,
    proposals: &[Value],
    net: &NetworkConfig,
) -> NetReport
where
    F: ProcessFactory,
    <F::Process as RoundProcess>::Msg: Send + 'static,
    F::Process: Send + 'static,
{
    assert_eq!(proposals.len(), config.n(), "one proposal per process required");
    let start = Instant::now();
    let mut session = Session::with_grace(config, net.grace);
    let processes: Vec<F::Process> =
        (0..config.n()).map(|i| factory.build(i, proposals[i])).collect();
    let spec = InstanceSpec {
        crashes: net.crashes.clone(),
        delays: net.delays,
        max_rounds: net.max_rounds,
    };
    let instance = session.start_instance(processes, &spec);
    let report = session.wait_instance(instance);

    let crashed: ProcessSet =
        config.processes().filter(|p| net.crashes[p.index()].is_some()).collect();
    NetReport {
        outcome: RunOutcome {
            proposals: proposals.to_vec(),
            decisions: report.decisions,
            crashed,
            rounds_executed: report.rounds_executed,
        },
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use indulgent_consensus::{AtPlus2, CoordinatorEcho, RotatingCoordinator};

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    fn at_factory(
        config: SystemConfig,
    ) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> {
        move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        }
    }

    fn vals(vs: &[u64]) -> Vec<Value> {
        vs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn synchronous_network_decides_at_t_plus_2() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config);
        let report = run_network(config, &at_factory(config), &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
        assert_eq!(
            report.outcome.global_decision_round(),
            Some(Round::new(4)),
            "t + 2 fast decision should carry over to the threaded runtime"
        );
        for d in report.outcome.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(2));
        }
    }

    #[test]
    fn crashed_process_is_tolerated() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config).crash(ProcessId::new(1), Round::new(2));
        let report = run_network(config, &at_factory(config), &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
        assert!(report.outcome.crashed.contains(ProcessId::new(1)));
        assert!(report.outcome.decision_of(ProcessId::new(1)).is_none());
    }

    #[test]
    fn asynchronous_prefix_still_terminates_consistently() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config).with_delays(DelayModel::AsyncUntil {
            until_round: 5,
            delay: Duration::from_millis(40),
            probability: 0.3,
            seed: 7,
        });
        let report = run_network(config, &at_factory(config), &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
    }

    #[test]
    fn coordinator_echo_runs_on_the_network() {
        let config = cfg();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let net = NetworkConfig::synchronous(config);
        let report = run_network(config, &factory, &vals(&[6, 2, 8, 4, 7]), &net);
        report.outcome.check_consensus().unwrap();
        assert_eq!(report.outcome.global_decision_round(), Some(Round::new(2)));
    }

    #[test]
    fn recycled_session_decides_across_instances() {
        let config = cfg();
        let build = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let reset = |_i: usize, p: &mut AtPlus2<RotatingCoordinator>, v: Value| {
            p.reset_instance(v);
        };
        let mut session = Session::with_recycler(config, Duration::from_millis(4), build, reset);
        let spec = InstanceSpec::synchronous(config);
        // Several sequential instances: after the first, every automaton
        // comes out of the worker pools via the reset hook. Decisions must
        // match what fresh automatons would produce (min proposal).
        for (proposals, expect) in
            [([6u64, 2, 8, 4, 7], 2u64), ([9, 9, 1, 9, 9], 1), ([5, 5, 5, 5, 5], 5)]
        {
            let instance = session.start_instance_recycled(&vals(&proposals), &spec);
            let report = session.wait_instance(instance);
            for d in &report.decisions {
                assert_eq!(d.expect("replica must decide").value, Value::new(expect));
            }
        }
    }

    #[test]
    #[should_panic(expected = "start_instance_recycled requires Session::with_recycler")]
    fn recycled_start_requires_recycler() {
        let config = cfg();
        let mut session: Session<AtPlus2<RotatingCoordinator>> = Session::new(config);
        let spec = InstanceSpec::synchronous(config);
        session.start_instance_recycled(&vals(&[1, 1, 1, 1, 1]), &spec);
    }

    #[test]
    fn delay_model_is_deterministic() {
        let m = DelayModel::AsyncUntil {
            until_round: 4,
            delay: Duration::from_millis(10),
            probability: 0.5,
            seed: 42,
        };
        let a = m.delay_for(Round::new(2), ProcessId::new(1), ProcessId::new(3));
        let b = m.delay_for(Round::new(2), ProcessId::new(1), ProcessId::new(3));
        assert_eq!(a, b);
        // After the synchrony round there are no delays.
        assert_eq!(
            m.delay_for(Round::new(4), ProcessId::new(1), ProcessId::new(3)),
            Duration::ZERO
        );
    }

    #[test]
    fn uniform_delay_applies_to_every_round() {
        let m = DelayModel::Uniform { delay: Duration::from_millis(3) };
        for k in [1u32, 7, 100] {
            assert_eq!(
                m.delay_for(Round::new(k), ProcessId::new(0), ProcessId::new(1)),
                Duration::from_millis(3)
            );
        }
    }

    #[test]
    fn wall_clock_is_reported() {
        let config = cfg();
        let net = NetworkConfig::synchronous(config);
        let report = run_network(config, &at_factory(config), &vals(&[1, 1, 1, 1, 1]), &net);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn session_reuses_threads_across_instances() {
        let config = cfg();
        let mut session = Session::new(config);
        let spec = InstanceSpec::synchronous(config);
        for (expected, proposals) in
            [(2u64, [6u64, 2, 8, 4, 7]), (1, [9, 9, 1, 9, 9]), (3, [3, 5, 7, 9, 11])]
        {
            let processes = (0..config.n())
                .map(|i| {
                    let id = ProcessId::new(i);
                    AtPlus2::new(
                        config,
                        id,
                        Value::new(proposals[i]),
                        RotatingCoordinator::new(config, id),
                    )
                })
                .collect();
            let instance = session.start_instance(processes, &spec);
            let report = session.wait_instance(instance);
            for d in report.decisions.iter() {
                assert_eq!(d.expect("decided").value, Value::new(expected));
            }
        }
    }

    #[test]
    fn pipelined_instances_complete_concurrently() {
        let config = cfg();
        let mut session = Session::new(config);
        let spec = InstanceSpec::synchronous(config);
        let mut ids = Vec::new();
        for base in 0..4u64 {
            let processes = (0..config.n())
                .map(|i| {
                    let id = ProcessId::new(i);
                    AtPlus2::new(
                        config,
                        id,
                        Value::new(base * 10 + i as u64),
                        RotatingCoordinator::new(config, id),
                    )
                })
                .collect();
            ids.push(session.start_instance(processes, &spec));
        }
        // Instances decide independently; each decides its own minimum.
        for (base, id) in ids.into_iter().enumerate() {
            let d = session.wait_decision(id).expect("decided");
            assert_eq!(d.value, Value::new(base as u64 * 10));
            let report = session.wait_instance(id);
            for d in report.decisions.iter().flatten() {
                assert_eq!(d.value, Value::new(base as u64 * 10));
            }
        }
    }

    #[test]
    fn non_blocking_result_pump_drains_an_instance() {
        let config = cfg();
        let mut session = Session::new(config);
        let spec = InstanceSpec::synchronous(config);
        assert!(session.try_next_result().is_none(), "nothing in flight yet");
        let processes = (0..config.n())
            .map(|i| {
                let id = ProcessId::new(i);
                AtPlus2::new(
                    config,
                    id,
                    Value::new(i as u64 + 1),
                    RotatingCoordinator::new(config, id),
                )
            })
            .collect();
        let instance = session.start_instance(processes, &spec);
        // Pump with the bounded-wait variant until all n replicas report.
        let mut results = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while results.len() < config.n() {
            assert!(Instant::now() < deadline, "instance must complete");
            if let Some(r) = session.next_result_timeout(Duration::from_millis(5)) {
                assert_eq!(r.instance, instance);
                results.push(r);
            }
        }
        for r in &results {
            assert_eq!(r.decision.expect("decided").value, Value::new(1));
        }
        assert!(session.try_next_result().is_none(), "exactly n results per instance");
    }

    #[test]
    #[should_panic(expected = "worker thread p2 panicked")]
    fn worker_panic_propagates_to_waiters() {
        // An automaton that panics mid-protocol must not hang the
        // session's blocking waits; the poison marker surfaces it.
        #[derive(Debug, Clone)]
        struct Bomb(ProcessId);
        impl RoundProcess for Bomb {
            type Msg = ();
            fn send(&mut self, _round: Round) {}
            fn deliver(&mut self, _round: Round, _delivery: &Delivery<()>) -> Step {
                assert_ne!(self.0, ProcessId::new(2), "boom");
                Step::Continue
            }
        }
        let config = cfg();
        let mut session = Session::new(config);
        let processes = (0..config.n()).map(|i| Bomb(ProcessId::new(i))).collect();
        let spec = InstanceSpec::synchronous(config).with_max_rounds(5);
        let instance = session.start_instance(processes, &spec);
        let _ = session.wait_instance(instance);
    }

    #[test]
    fn retired_set_watermark_absorbs_in_order_and_gaps() {
        let mut r = RetiredSet::default();
        r.insert(2);
        assert!(r.contains(2));
        assert!(!r.contains(1));
        r.insert(1);
        assert_eq!(r.below, 2);
        assert!(r.above.is_empty(), "dense prefix collapses into the watermark");
        r.insert(4);
        r.insert(3);
        assert_eq!(r.below, 4);
        assert!(r.contains(3) && r.contains(4) && !r.contains(5));
    }

    #[test]
    fn per_instance_crashes_are_isolated() {
        // The same replica crashes in instance 1 but participates fully in
        // instance 2 — crash scope is the instance, not the session.
        let config = cfg();
        let mut session = Session::new(config);
        let build = |proposals: [u64; 5]| {
            (0..config.n())
                .map(|i| {
                    let id = ProcessId::new(i);
                    AtPlus2::new(
                        config,
                        id,
                        Value::new(proposals[i]),
                        RotatingCoordinator::new(config, id),
                    )
                })
                .collect::<Vec<_>>()
        };
        let crashing = InstanceSpec::synchronous(config).crash(ProcessId::new(1), Round::new(2));
        let first = session.start_instance(build([6, 2, 8, 4, 7]), &crashing);
        let clean = InstanceSpec::synchronous(config);
        let second = session.start_instance(build([6, 2, 8, 4, 7]), &clean);

        let r1 = session.wait_instance(first);
        assert!(r1.decisions[1].is_none(), "crashed replica must not decide");
        for d in r1.decisions.iter().flatten() {
            assert_eq!(d.value, Value::new(2));
        }
        let r2 = session.wait_instance(second);
        assert!(r2.decisions.iter().all(Option::is_some), "instance 2 is crash-free");
    }
}
