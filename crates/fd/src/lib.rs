//! Failure detector oracles for round-based consensus.
//!
//! The paper's Sect. 4 relates the eventually synchronous model **ES** to
//! asynchronous round models enriched with unreliable failure detectors
//! (Chandra & Toueg): the *eventually perfect* detector ◇P and the
//! *eventually strong* detector ◇S. This crate provides:
//!
//! * the [`FailureDetector`] trait — a local module queried each round;
//! * [`PerfectDetector`] (P): strong completeness and strong accuracy,
//!   driven by ground-truth crash information;
//! * [`EventuallyPerfectDetector`] (◇P): arbitrary scripted output before an
//!   accuracy round `G`, perfect afterwards;
//! * [`EventuallyStrongDetector`] (◇S): complete, but only *one* correct
//!   process is guaranteed to stop being falsely suspected after `G`;
//! * [`Suspicion`] — the suspicion source abstraction letting one algorithm
//!   implementation run either on message-absence-derived suspicions (the
//!   ES definition, also the paper's Sect. 4 simulation of ◇P from ES) or
//!   on an explicit detector oracle (the `A_◇S` variant of Sect. 5.1).
//!
//! All detectors are deterministic: false suspicions are scripted, not
//! sampled, so runs are exactly reproducible.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use indulgent_model::{ProcessId, ProcessSet, Round};

/// A failure detector: each process's local module outputs a set of
/// suspected processes when queried in a round.
///
/// Determinism requirement: the output may depend only on `(observer,
/// round)` and the detector's construction parameters, so that simulator
/// runs are reproducible.
///
/// Detectors must also be [`Clone`]: a detector rides inside the automaton
/// state of algorithms like `A_◇S`, and the incremental sweep engine forks
/// that state mid-run (see `indulgent_model::RoundProcess`). Cloned
/// detectors must keep answering identically for identical `(observer,
/// round)` queries, which the determinism requirement already guarantees.
pub trait FailureDetector: Clone {
    /// The set of processes `observer`'s local module suspects in `round`.
    fn suspects(&mut self, observer: ProcessId, round: Round) -> ProcessSet;
}

/// Ground-truth crash information driving the oracle detectors: for each
/// process, the round in which it crashes (`None` = correct).
///
/// # Examples
///
/// ```
/// use indulgent_fd::CrashInfo;
/// use indulgent_model::{ProcessId, Round};
///
/// let info = CrashInfo::new(vec![None, Some(Round::new(2)), None]);
/// assert!(info.crashed_before(ProcessId::new(1), Round::new(3)));
/// assert!(!info.crashed_before(ProcessId::new(1), Round::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    crash_rounds: Vec<Option<Round>>,
}

impl CrashInfo {
    /// Creates crash information from per-process crash rounds.
    #[must_use]
    pub fn new(crash_rounds: Vec<Option<Round>>) -> Self {
        CrashInfo { crash_rounds }
    }

    /// Crash information with no crashes among `n` processes.
    #[must_use]
    pub fn none(n: usize) -> Self {
        CrashInfo { crash_rounds: vec![None; n] }
    }

    /// Number of processes described.
    #[must_use]
    pub fn n(&self) -> usize {
        self.crash_rounds.len()
    }

    /// Returns `true` if `p` crashed strictly before `round` (so `p`
    /// certainly sends nothing in `round`).
    #[must_use]
    pub fn crashed_before(&self, p: ProcessId, round: Round) -> bool {
        match self.crash_rounds.get(p.index()).copied().flatten() {
            Some(r) => r < round,
            None => false,
        }
    }

    /// The set of processes that crashed strictly before `round`.
    #[must_use]
    pub fn crashed_set(&self, round: Round) -> ProcessSet {
        (0..self.n()).map(ProcessId::new).filter(|&p| self.crashed_before(p, round)).collect()
    }

    /// The faulty processes (those that crash at any round).
    #[must_use]
    pub fn faulty(&self) -> ProcessSet {
        (0..self.n())
            .map(ProcessId::new)
            .filter(|&p| self.crash_rounds[p.index()].is_some())
            .collect()
    }
}

/// The perfect failure detector **P**: strong completeness (crashed
/// processes are suspected by everyone from the round after their crash)
/// and strong accuracy (no process is suspected before it crashes).
///
/// # Examples
///
/// ```
/// use indulgent_fd::{CrashInfo, FailureDetector, PerfectDetector};
/// use indulgent_model::{ProcessId, Round};
///
/// let mut p = PerfectDetector::new(CrashInfo::new(vec![None, Some(Round::new(1)), None]));
/// assert!(p.suspects(ProcessId::new(0), Round::new(2)).contains(ProcessId::new(1)));
/// assert!(p.suspects(ProcessId::new(0), Round::new(1)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PerfectDetector {
    info: CrashInfo,
}

impl PerfectDetector {
    /// Creates a perfect detector from ground-truth crash information.
    #[must_use]
    pub fn new(info: CrashInfo) -> Self {
        PerfectDetector { info }
    }
}

impl FailureDetector for PerfectDetector {
    fn suspects(&mut self, _observer: ProcessId, round: Round) -> ProcessSet {
        self.info.crashed_set(round)
    }
}

/// A script of false suspicions: `(round, observer) → extra suspected set`.
///
/// Used to make the unreliable period of ◇P / ◇S detectors fully
/// deterministic and hand-craftable in tests and experiments.
pub type SuspicionScript = BTreeMap<(u32, usize), ProcessSet>;

/// The eventually perfect failure detector **◇P**: before the accuracy
/// round `G` its output is arbitrary (taken from a [`SuspicionScript`] plus
/// true crashes); from `G` on it behaves like [`PerfectDetector`].
///
/// Strong completeness holds throughout (crashed processes are always
/// included); eventual strong accuracy holds from `G`.
#[derive(Debug, Clone)]
pub struct EventuallyPerfectDetector {
    info: CrashInfo,
    accuracy_round: Round,
    script: SuspicionScript,
}

impl EventuallyPerfectDetector {
    /// Creates a ◇P detector that stops making mistakes at `accuracy_round`.
    #[must_use]
    pub fn new(info: CrashInfo, accuracy_round: Round, script: SuspicionScript) -> Self {
        EventuallyPerfectDetector { info, accuracy_round, script }
    }

    /// A ◇P detector that never makes mistakes (equivalent to P).
    #[must_use]
    pub fn accurate(info: CrashInfo) -> Self {
        Self::new(info, Round::FIRST, SuspicionScript::new())
    }
}

impl FailureDetector for EventuallyPerfectDetector {
    fn suspects(&mut self, observer: ProcessId, round: Round) -> ProcessSet {
        let mut out = self.info.crashed_set(round);
        if round < self.accuracy_round {
            if let Some(extra) = self.script.get(&(round.get(), observer.index())) {
                let mut with_extra = out.union(*extra);
                // A process never suspects itself.
                with_extra.remove(observer);
                out = with_extra;
            }
        }
        out
    }
}

/// The eventually strong failure detector **◇S**: strong completeness, but
/// only *eventual weak accuracy* — after round `G` the designated `trusted`
/// correct process is never suspected, while any other process may keep
/// being falsely suspected forever (per the script).
#[derive(Debug, Clone)]
pub struct EventuallyStrongDetector {
    info: CrashInfo,
    accuracy_round: Round,
    trusted: ProcessId,
    script: SuspicionScript,
}

impl EventuallyStrongDetector {
    /// Creates a ◇S detector trusting `trusted` from `accuracy_round` on.
    ///
    /// # Panics
    ///
    /// Panics if `trusted` is faulty in `info` — eventual weak accuracy
    /// requires a *correct* process to be eventually trusted.
    #[must_use]
    pub fn new(
        info: CrashInfo,
        accuracy_round: Round,
        trusted: ProcessId,
        script: SuspicionScript,
    ) -> Self {
        assert!(!info.faulty().contains(trusted), "the eventually trusted process must be correct");
        EventuallyStrongDetector { info, accuracy_round, trusted, script }
    }
}

impl FailureDetector for EventuallyStrongDetector {
    fn suspects(&mut self, observer: ProcessId, round: Round) -> ProcessSet {
        let mut out = self.info.crashed_set(round);
        if let Some(extra) = self.script.get(&(round.get(), observer.index())) {
            out = out.union(*extra);
        }
        if round >= self.accuracy_round {
            out.remove(self.trusted);
        }
        out.remove(observer);
        out
    }
}

/// The suspicion source used by suspicion-tracking algorithms.
///
/// In **ES** the model itself defines suspicion: `pi` suspects `pj` in round
/// `k` iff `pj`'s round-`k` message did not arrive in round `k`
/// ([`Suspicion::Derived`]). In an asynchronous round model enriched with a
/// failure detector, suspicion is the local detector output
/// ([`Suspicion::Detector`]). The paper's Sect. 4 shows the first simulates
/// the second; keeping both lets `A_{t+2}` and `A_◇S` share one
/// implementation.
#[derive(Debug, Clone)]
pub enum Suspicion<D> {
    /// Suspect exactly the processes whose current-round message is absent.
    Derived,
    /// Suspect what the failure detector module outputs, *plus* the absent
    /// processes.
    ///
    /// In an FD-enriched asynchronous round model a process waits for
    /// messages "from all processes not suspected by the local failure
    /// detector module" (paper Sect. 4), so the receive phase can only end
    /// with a message missing if its sender is suspected. In our
    /// delivery-driven simulator the equivalent statement is that an absent
    /// sender counts as suspected; without it the elimination property of
    /// `A_{t+2}` (paper Lemma 7) would not carry over.
    Detector(D),
}

impl<D: FailureDetector> Suspicion<D> {
    /// Computes the suspicion set for `observer` in `round`, given the set
    /// `absent` of processes whose current-round message did not arrive.
    ///
    /// The result never contains `observer` itself (algorithm assumption 2
    /// of the paper: no process ever suspects itself).
    pub fn suspects(
        &mut self,
        observer: ProcessId,
        round: Round,
        absent: ProcessSet,
    ) -> ProcessSet {
        let mut out = match self {
            Suspicion::Derived => absent,
            Suspicion::Detector(d) => d.suspects(observer, round).union(absent),
        };
        out.remove(observer);
        out
    }
}

/// A placeholder detector for purely derived suspicion; it suspects nobody
/// and is never consulted by algorithms configured with
/// [`Suspicion::Derived`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoDetector;

impl FailureDetector for NoDetector {
    fn suspects(&mut self, _observer: ProcessId, _round: Round) -> ProcessSet {
        ProcessSet::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_info() -> CrashInfo {
        // p1 crashes in round 2, p3 crashes in round 4, out of 5 processes.
        CrashInfo::new(vec![None, Some(Round::new(2)), None, Some(Round::new(4)), None])
    }

    #[test]
    fn crash_info_accessors() {
        let info = crash_info();
        assert_eq!(info.n(), 5);
        assert_eq!(info.faulty().len(), 2);
        assert!(info.crashed_before(ProcessId::new(1), Round::new(3)));
        assert!(!info.crashed_before(ProcessId::new(1), Round::new(2)));
        assert_eq!(info.crashed_set(Round::new(5)).len(), 2);
        assert!(CrashInfo::none(3).faulty().is_empty());
    }

    #[test]
    fn perfect_detector_strong_accuracy_and_completeness() {
        let mut p = PerfectDetector::new(crash_info());
        // Round 2: nobody crashed strictly before round 2.
        assert!(p.suspects(ProcessId::new(0), Round::new(2)).is_empty());
        // Round 3: p1 crashed in round 2.
        let s = p.suspects(ProcessId::new(0), Round::new(3));
        assert!(s.contains(ProcessId::new(1)));
        assert!(!s.contains(ProcessId::new(3)));
        // Round 5: both crashed.
        assert_eq!(p.suspects(ProcessId::new(2), Round::new(5)).len(), 2);
    }

    #[test]
    fn eventually_perfect_follows_script_then_converges() {
        let mut script = SuspicionScript::new();
        // In round 1 p0 falsely suspects p2 and p4.
        script.insert((1, 0), ProcessSet::from_ids([ProcessId::new(2), ProcessId::new(4)]));
        let mut d = EventuallyPerfectDetector::new(crash_info(), Round::new(3), script);
        let r1 = d.suspects(ProcessId::new(0), Round::new(1));
        assert!(r1.contains(ProcessId::new(2)));
        assert!(r1.contains(ProcessId::new(4)));
        // Other observers see no false suspicions (not scripted).
        assert!(d.suspects(ProcessId::new(1), Round::new(1)).is_empty());
        // From the accuracy round on, output is perfect.
        let r3 = d.suspects(ProcessId::new(0), Round::new(3));
        assert_eq!(r3, ProcessSet::from_ids([ProcessId::new(1)]));
    }

    #[test]
    fn eventually_perfect_never_self_suspects_via_script() {
        let mut script = SuspicionScript::new();
        script.insert((1, 0), ProcessSet::from_ids([ProcessId::new(0), ProcessId::new(2)]));
        let mut d = EventuallyPerfectDetector::new(CrashInfo::none(3), Round::new(5), script);
        let out = d.suspects(ProcessId::new(0), Round::new(1));
        assert!(!out.contains(ProcessId::new(0)));
        assert!(out.contains(ProcessId::new(2)));
    }

    #[test]
    fn eventually_strong_keeps_suspecting_untrusted() {
        let mut script = SuspicionScript::new();
        // p0 falsely suspects p2 forever (scripted for rounds 1..=10).
        for k in 1..=10 {
            script.insert((k, 0), ProcessSet::from_ids([ProcessId::new(2)]));
        }
        let mut d =
            EventuallyStrongDetector::new(crash_info(), Round::new(4), ProcessId::new(4), script);
        // Before accuracy round: p2 suspected.
        assert!(d.suspects(ProcessId::new(0), Round::new(2)).contains(ProcessId::new(2)));
        // After accuracy round: p2 may *still* be suspected (only weak
        // accuracy), but the trusted p4 never is.
        let late = d.suspects(ProcessId::new(0), Round::new(8));
        assert!(late.contains(ProcessId::new(2)));
        assert!(!late.contains(ProcessId::new(4)));
        // Completeness still holds.
        assert!(late.contains(ProcessId::new(1)));
    }

    #[test]
    #[should_panic(expected = "must be correct")]
    fn eventually_strong_rejects_faulty_trustee() {
        let _ = EventuallyStrongDetector::new(
            crash_info(),
            Round::new(4),
            ProcessId::new(1),
            SuspicionScript::new(),
        );
    }

    #[test]
    fn derived_suspicion_uses_absent_set() {
        let mut s: Suspicion<NoDetector> = Suspicion::Derived;
        let absent = ProcessSet::from_ids([ProcessId::new(0), ProcessId::new(2)]);
        let out = s.suspects(ProcessId::new(0), Round::FIRST, absent);
        // Self is removed even if absent (cannot suspect yourself).
        assert!(!out.contains(ProcessId::new(0)));
        assert!(out.contains(ProcessId::new(2)));
    }

    #[test]
    fn detector_suspicion_unions_oracle_with_absence() {
        let mut s = Suspicion::Detector(PerfectDetector::new(crash_info()));
        let absent = ProcessSet::from_ids([ProcessId::new(2)]);
        let out = s.suspects(ProcessId::new(0), Round::new(3), absent);
        assert!(out.contains(ProcessId::new(2))); // absent => suspected
        assert!(out.contains(ProcessId::new(1))); // oracle output used
    }

    #[test]
    fn no_detector_suspects_nobody() {
        let mut d = NoDetector;
        assert!(d.suspects(ProcessId::new(0), Round::new(9)).is_empty());
    }
}
