//! Cross-crate integration tests for the indulgent consensus workspace.
//!
//! The tests live in `tests/`; this library only hosts shared helpers.

use indulgent_model::Value;

/// Pairwise distinct odd proposal values used across the integration suite.
#[must_use]
pub fn proposals(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new((((i + n / 2) % n) as u64) * 2 + 1)).collect()
}
