//! Parity between the deterministic simulator and the threaded runtime:
//! the same automatons, the same decisions.

use std::time::Duration;

use indulgent_consensus::{AfPlus2, AtPlus2, CoordinatorEcho, RotatingCoordinator};
use indulgent_integration::proposals;
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_runtime::{run_network, DelayModel, NetworkConfig};
use indulgent_sim::{run_schedule, ModelKind, Schedule};

#[test]
fn simulator_and_network_agree_on_synchronous_at_plus2() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let props = proposals(5);
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    };

    let sim = run_schedule(&factory, &props, &Schedule::failure_free(config, ModelKind::Es), 30)
        .expect("one proposal per process");
    sim.check_consensus().unwrap();

    let net = run_network(config, &factory, &props, &NetworkConfig::synchronous(config));
    net.outcome.check_consensus().unwrap();

    assert_eq!(sim.global_decision_round(), net.outcome.global_decision_round());
    for p in config.processes() {
        assert_eq!(
            sim.decision_of(p).map(|d| d.value),
            net.outcome.decision_of(p).map(|d| d.value),
            "{p} decided differently in the two executors"
        );
    }
}

#[test]
fn network_crash_matches_simulator_crash_semantics() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let props = proposals(5);
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    };
    // Crash p3 before it can send anything in round 2, in both worlds.
    let schedule = indulgent_sim::ScheduleBuilder::new(config, ModelKind::Es)
        .crash_before_send(ProcessId::new(3), Round::new(2))
        .build(30)
        .unwrap();
    let sim = run_schedule(&factory, &props, &schedule, 30).expect("one proposal per process");
    sim.check_consensus().unwrap();

    let net_cfg = NetworkConfig::synchronous(config).crash(ProcessId::new(3), Round::new(2));
    let net = run_network(config, &factory, &props, &net_cfg);
    net.outcome.check_consensus().unwrap();

    assert_eq!(sim.global_decision_round(), net.outcome.global_decision_round());
    assert_eq!(
        sim.decisions.iter().flatten().next().map(|d| d.value),
        net.outcome.decisions.iter().flatten().next().map(|d| d.value),
    );
}

#[test]
fn network_runs_every_algorithm_family() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let props = proposals(5);

    let ce = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
    let report = run_network(config, &ce, &props, &NetworkConfig::synchronous(config));
    report.outcome.check_consensus().unwrap();
    assert_eq!(report.outcome.global_decision_round(), Some(Round::new(2)));

    let third = SystemConfig::third(7, 2).unwrap();
    let props7 = proposals(7);
    let af = move |i: usize, v: Value| AfPlus2::new(third, ProcessId::new(i), v);
    let report = run_network(third, &af, &props7, &NetworkConfig::synchronous(third));
    report.outcome.check_consensus().unwrap();
    assert!(report.outcome.global_decision_round().unwrap() <= Round::new(2));
}

#[test]
fn network_with_async_prefix_preserves_agreement_across_seeds() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let props = proposals(5);
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    };
    for seed in 0..5u64 {
        let net = NetworkConfig::synchronous(config).with_delays(DelayModel::AsyncUntil {
            until_round: 4,
            delay: Duration::from_millis(30),
            probability: 0.35,
            seed,
        });
        let report = run_network(config, &factory, &props, &net);
        report.outcome.check_consensus().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
