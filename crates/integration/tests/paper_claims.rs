//! End-to-end verification of the paper's headline claims, spanning all
//! workspace crates.

use indulgent_checker::{worst_case_decision_round, worst_case_over_binary_proposals};
use indulgent_consensus::{
    AfPlus2, AtPlus2, CoordinatorEcho, FloodSet, RotatingCoordinator, Standalone,
};
use indulgent_integration::proposals;
use indulgent_model::{ProcessFactory, ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{run_schedule, ModelKind, Schedule, ScheduleBuilder};

fn at_plus2_factory(
    config: SystemConfig,
) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> {
    move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    }
}

/// Proposition 1 + Lemma 13, exhaustively: over *all* serial synchronous
/// runs and *all* binary proposal vectors, `A_{t+2}` globally decides at
/// exactly round `t + 2` — never earlier, never later.
#[test]
fn t_plus_2_is_tight_for_at_plus_2() {
    for (n, t) in [(3usize, 1usize), (4, 1)] {
        let config = SystemConfig::majority(n, t).unwrap();
        let report = worst_case_over_binary_proposals(
            &at_plus2_factory(config),
            config,
            ModelKind::Es,
            t as u32 + 2,
            30,
        )
        .unwrap();
        assert_eq!(report.worst_round, Round::new(t as u32 + 2), "n={n}, t={t}");
        assert_eq!(report.best_round, Round::new(t as u32 + 2), "n={n}, t={t}");
    }
}

/// The classic contrast: FloodSet's exhaustive worst case in SCS is t + 1.
#[test]
fn t_plus_1_is_tight_for_floodset_in_scs() {
    for (n, t) in [(3usize, 1usize), (4, 2), (5, 2)] {
        let config = SystemConfig::synchronous(n, t).unwrap();
        let factory = move |_i: usize, v: Value| FloodSet::new(config, v);
        let report = worst_case_decision_round(
            &factory,
            config,
            ModelKind::Scs,
            &proposals(n),
            t as u32 + 1,
            t as u32 + 3,
        )
        .unwrap();
        assert_eq!(report.worst_round, Round::new(t as u32 + 1), "n={n}, t={t}");
    }
}

/// The paper's Sect. 1.4: the most efficient previously known indulgent
/// algorithm has a synchronous run needing 2t + 2 rounds, and the
/// CT-style rotating coordinator needs 3t + 3; `A_{t+2}` needs t + 2 in
/// the *same* adversarial schedules.
#[test]
fn baseline_separation_grows_with_t() {
    for t in 1..=4usize {
        let n = 2 * t + 1;
        let config = SystemConfig::majority(n, t).unwrap();
        let props = proposals(n);
        let horizon = 8 * (t as u32 + 2);

        let mut b = ScheduleBuilder::new(config, ModelKind::Es);
        for p in 0..t {
            b = b.crash_before_send(ProcessId::new(p), Round::new(2 * p as u32 + 1));
        }
        let hr_schedule = b.build(horizon).unwrap();
        let hr = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let outcome =
            run_schedule(&hr, &props, &hr_schedule, horizon).expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(2 * t as u32 + 2)));

        let mut b = ScheduleBuilder::new(config, ModelKind::Es);
        for p in 0..t {
            b = b.crash_before_send(ProcessId::new(p), Round::new(3 * p as u32 + 2));
        }
        let rc_schedule = b.build(horizon).unwrap();
        let rc = move |i: usize, v: Value| {
            Standalone::new(RotatingCoordinator::new(config, ProcessId::new(i)), v)
        };
        let outcome =
            run_schedule(&rc, &props, &rc_schedule, horizon).expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(3 * t as u32 + 3)));

        // A_{t+2} under the HR-worst-case schedule still decides at t + 2.
        let outcome = run_schedule(&at_plus2_factory(config), &props, &hr_schedule, horizon)
            .expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(t as u32 + 2)));
    }
}

/// Sect. 5.2: with the Fig. 4 optimization, every failure-free synchronous
/// run decides at round 2, and the decision is the minimum proposal.
#[test]
fn failure_free_optimization_meets_the_two_round_bound() {
    for n in [3usize, 5, 7, 9] {
        let t = (n - 1) / 2;
        let config = SystemConfig::majority(n, t).unwrap();
        let f = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let schedule = Schedule::failure_free(config, ModelKind::Es);
        let props = proposals(n);
        let outcome = run_schedule(&f, &props, &schedule, 40).expect("one proposal per process");
        outcome.check_consensus().unwrap();
        assert_eq!(outcome.global_decision_round(), Some(Round::new(2)), "n={n}");
        let min = props.iter().copied().min().unwrap();
        for d in outcome.decisions.iter().flatten() {
            assert_eq!(d.value, min);
        }
    }
}

/// Lemma 15: `A_{f+2}` decides by `k + f + 2` when the run becomes
/// synchronous after round `k` — here with crafted prefixes and staggered
/// crashes for several `(k, f)`.
#[test]
fn af_plus_2_meets_k_plus_f_plus_2() {
    let config = SystemConfig::third(7, 2).unwrap();
    let props = proposals(7);
    for k in [0u32, 2, 4] {
        for f in 0..=2usize {
            let horizon = k + 20;
            let mut b = ScheduleBuilder::new(config, ModelKind::Es).sync_from(Round::new(k + 1));
            // A deterministic asynchronous prefix: in each round <= k, every
            // receiver r has the messages of senders r+1 and r+2 delayed.
            for round in 1..=k {
                for r in 0..7usize {
                    for off in [1usize, 2] {
                        let s = (r + off) % 7;
                        b = b.delay(
                            Round::new(round),
                            ProcessId::new(s),
                            ProcessId::new(r),
                            Round::new(k + 1),
                        );
                    }
                }
            }
            for c in 0..f {
                b = b.crash_before_send(ProcessId::new(c), Round::new(k + 1 + c as u32));
            }
            let schedule = b.build(horizon).unwrap();
            let factory = move |i: usize, v: Value| AfPlus2::new(config, ProcessId::new(i), v);
            let outcome = run_schedule(&factory, &props, &schedule, horizon)
                .expect("one proposal per process");
            outcome.check_consensus().unwrap();
            assert!(
                outcome.global_decision_round().unwrap() <= Round::new(k + f as u32 + 2),
                "k={k}, f={f}: {:?}",
                outcome.global_decision_round()
            );
        }
    }
}

/// The resilience price (Chandra & Toueg, recalled in the paper's
/// introduction): indulgent consensus requires t < n/2, while the
/// synchronous model tolerates t <= n - 2.
#[test]
fn resilience_price_is_enforced_by_config_validation() {
    assert!(SystemConfig::majority(4, 2).is_err());
    assert!(SystemConfig::synchronous(4, 2).is_ok());
    assert!(SystemConfig::majority(5, 2).is_ok());
}
