//! Allocation-regression guard for the round engine.
//!
//! The executor's steady state is advertised as allocation-free: flat
//! ring mailboxes, pooled deliveries and the shared-broadcast fast path
//! mean that once the buffers are warm, [`RunState::step`] touches the
//! heap zero times per round. This test binary installs a counting
//! global allocator and asserts exactly that — any future change that
//! sneaks a per-round `Vec`, `BTreeMap` node or payload box back into
//! the hot loop fails here before it shows up as a throughput
//! regression in `BENCH_sweep.json`.
//!
//! The counter is thread-local, so the harness's own threads don't
//! perturb the measurement; this file deliberately contains few tests
//! (each runs on its own thread with its own tally).
//!
//! [`RunState::step`]: indulgent_sim::RunState

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{Delivery, ProcessId, Round, RoundProcess, Step, SystemConfig, Value};
use indulgent_sim::{ModelKind, RunState, Schedule, ScheduleBuilder};

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts this thread's heap acquisitions (alloc/realloc); frees are not
/// counted — dropping into a warm buffer is fine, acquiring is not.
struct CountingAllocator;

fn bump() {
    // `try_with` so allocations during TLS teardown stay safe.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to `System` unchanged; the wrapper
// only increments a thread-local counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocations performed by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// Flooding probe that never decides — keeps the run live so steady-state
/// rounds can be measured indefinitely.
#[derive(Debug, Clone)]
struct Flood {
    est: Value,
}

impl RoundProcess for Flood {
    type Msg = Value;

    fn send(&mut self, _round: Round) -> Value {
        self.est
    }

    fn deliver(&mut self, _round: Round, delivery: &Delivery<Value>) -> Step {
        for m in delivery.current() {
            self.est = self.est.min(m.msg);
        }
        Step::Continue
    }
}

fn props(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new(i as u64 + 1)).collect()
}

#[test]
fn steady_state_step_is_allocation_free_on_failure_free_schedule() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let schedule = Schedule::failure_free(config, ModelKind::Es);
    let proposals = props(5);
    let factory = |_i: usize, v: Value| Flood { est: v };
    let mut state = RunState::new(&factory, &proposals, 5).unwrap();

    // Warm-up: the first rounds grow the pooled delivery and ring buffers
    // to their working size.
    state.run_to(&schedule, 3);

    let allocs = allocations_in(|| {
        for _ in 0..100 {
            state.step(&schedule);
        }
    });
    assert_eq!(allocs, 0, "steady-state step must not allocate on the shared-broadcast fast path");
    assert_eq!(state.rounds_executed(), 103);
}

#[test]
fn steady_state_step_is_allocation_free_after_crashes() {
    // Crash rounds take the general path (which may warm new buffers);
    // the post-crash-horizon tail of the run — the steady state of every
    // serial schedule — must be allocation-free again.
    let config = SystemConfig::majority(5, 2).unwrap();
    let schedule = ScheduleBuilder::new(config, ModelKind::Es)
        .crash_delivering_only(ProcessId::new(1), Round::new(1), [ProcessId::new(0)])
        .crash_before_send(ProcessId::new(3), Round::new(2))
        .build(200)
        .unwrap();
    let proposals = props(5);
    let factory = |_i: usize, v: Value| Flood { est: v };
    let mut state = RunState::new(&factory, &proposals, 5).unwrap();
    state.run_to(&schedule, 4);

    let allocs = allocations_in(|| {
        for _ in 0..100 {
            state.step(&schedule);
        }
    });
    assert_eq!(allocs, 0, "post-crash steady state must not allocate");
}

#[test]
fn steady_state_step_with_metrics_recording_is_allocation_free() {
    // The observability layer's promise: recording into the obs registry
    // costs zero heap on the hot path. Drive warm steps exactly as the
    // instrumented engines do — bump counters and record stage latencies
    // around every round — and require the tally to stay at zero.
    // Registration (`engine_counters`'s first call, `register_family`)
    // allocates, so it happens in the warm-up.
    use indulgent_obs::{Counter, Histogram};
    use indulgent_sim::stats::engine_counters;

    let config = SystemConfig::majority(5, 2).unwrap();
    let schedule = Schedule::failure_free(config, ModelKind::Es);
    let proposals = props(5);
    let factory = |_i: usize, v: Value| Flood { est: v };
    let mut state = RunState::new(&factory, &proposals, 5).unwrap();
    state.run_to(&schedule, 3);

    let counter = Counter::new();
    let latency = Histogram::new();
    let warm = engine_counters(); // registration allocates; do it now
    let allocs = allocations_in(|| {
        for i in 0..100u64 {
            state.step(&schedule);
            counter.add(i);
            latency.record(i * 1_000);
            let _ = warm.snapshot();
        }
        let _ = latency.snapshot();
    });
    assert_eq!(allocs, 0, "metrics recording must stay off the heap on the warm path");
    assert_eq!(counter.get(), 99 * 100 / 2);
    assert_eq!(latency.snapshot().count, 100);
}

#[test]
fn at_plus2_phase1_steps_are_allocation_free_when_warm() {
    // The dominant algorithm itself must not allocate per round either:
    // Phase 1 of A_{t+2} (flood ESTIMATE, update Halt/est) over a clean
    // round runs entirely in pooled buffers. Warm up with round 1, then
    // measure the remaining Phase 1 rounds (t = 4 stretches Phase 1 to
    // round 5).
    let config = SystemConfig::majority(9, 4).unwrap();
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    };
    let schedule = Schedule::failure_free(config, ModelKind::Es);
    let proposals = props(9);
    let mut state = RunState::new(&factory, &proposals, 9).unwrap();
    state.step(&schedule); // warm-up: round 1

    let allocs = allocations_in(|| {
        state.run_to(&schedule, 4); // rounds 2..=4, all Phase 1
    });
    assert_eq!(allocs, 0, "warm Phase 1 rounds of A_t+2 must not allocate");
    assert_eq!(state.rounds_executed(), 4);
}
