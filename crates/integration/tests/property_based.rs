//! Property-based tests (proptest): consensus invariants under randomized
//! adversaries, for every algorithm in the workspace.

use indulgent_consensus::{
    AfPlus2, AtPlus2, CoordinatorEcho, LeaderEcho, RotatingCoordinator, Standalone,
};
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{random_run, run_schedule, ModelKind, RandomRunParams};
use proptest::prelude::*;

fn value_vec(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec((0u64..50).prop_map(Value::new), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A_{t+2} satisfies all three consensus properties in arbitrary
    /// random ES runs (any crash count up to t, any synchrony round).
    #[test]
    fn at_plus2_consensus_in_random_es_runs(
        seed in any::<u64>(),
        crashes in 0usize..=2,
        sync_from in 1u32..8,
        props in value_vec(5),
    ) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 6, sync_from),
            90,
            seed,
        );
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let outcome = run_schedule(&factory, &props, &schedule, 90).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok(), "{:?}", outcome.check_consensus());
    }

    /// In synchronous runs A_{t+2} decides exactly at t + 2, and the
    /// decision is the minimum proposal among processes that got to speak.
    #[test]
    fn at_plus2_fast_decision_in_random_synchronous_runs(
        seed in any::<u64>(),
        crashes in 0usize..=2,
        props in value_vec(5),
    ) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::synchronous(crashes, 4),
            40,
            seed,
        );
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let outcome = run_schedule(&factory, &props, &schedule, 40).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok());
        prop_assert_eq!(outcome.global_decision_round(), Some(Round::new(4)));
        // Validity, strengthened: the decision is some process's proposal
        // and at least the global minimum.
        let min = props.iter().copied().min().unwrap();
        for d in outcome.decisions.iter().flatten() {
            prop_assert!(d.value >= min);
            prop_assert!(props.contains(&d.value));
        }
    }

    /// The failure-free optimization never compromises safety, whatever
    /// the adversary does.
    #[test]
    fn optimized_at_plus2_safe_in_random_es_runs(
        seed in any::<u64>(),
        crashes in 0usize..=2,
        sync_from in 1u32..8,
        props in value_vec(5),
    ) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 6, sync_from),
            90,
            seed,
        );
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let outcome = run_schedule(&factory, &props, &schedule, 90).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok(), "{:?}", outcome.check_consensus());
    }

    /// The HR-style baseline is a correct indulgent consensus too (it is
    /// only *slower*).
    #[test]
    fn coordinator_echo_consensus_in_random_es_runs(
        seed in any::<u64>(),
        crashes in 0usize..=2,
        sync_from in 1u32..8,
        props in value_vec(5),
    ) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 6, sync_from),
            90,
            seed,
        );
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let outcome = run_schedule(&factory, &props, &schedule, 90).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok(), "{:?}", outcome.check_consensus());
    }

    /// The rotating-coordinator fallback on its own.
    #[test]
    fn rotating_coordinator_consensus_in_random_es_runs(
        seed in any::<u64>(),
        crashes in 0usize..=2,
        sync_from in 1u32..6,
        props in value_vec(5),
    ) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 6, sync_from),
            120,
            seed,
        );
        let factory = move |i: usize, v: Value| {
            Standalone::new(RotatingCoordinator::new(config, ProcessId::new(i)), v)
        };
        let outcome = run_schedule(&factory, &props, &schedule, 120).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok(), "{:?}", outcome.check_consensus());
    }

    /// A_{f+2} and the AMR baseline under random ES runs (t < n/3).
    #[test]
    fn third_resilience_algorithms_consensus(
        seed in any::<u64>(),
        crashes in 0usize..=2,
        sync_from in 1u32..8,
        props in value_vec(7),
    ) {
        let config = SystemConfig::third(7, 2).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 6, sync_from),
            90,
            seed,
        );
        let af = move |i: usize, v: Value| AfPlus2::new(config, ProcessId::new(i), v);
        let outcome = run_schedule(&af, &props, &schedule, 90).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok(), "AfPlus2: {:?}", outcome.check_consensus());

        let amr = move |i: usize, v: Value| LeaderEcho::new(config, ProcessId::new(i), v);
        let outcome = run_schedule(&amr, &props, &schedule, 90).expect("one proposal per process");
        prop_assert!(outcome.check_consensus().is_ok(), "LeaderEcho: {:?}", outcome.check_consensus());
    }

    /// Random schedules produced by the generator always validate — the
    /// generator never emits an illegal run.
    #[test]
    fn random_schedules_are_always_legal(
        seed in any::<u64>(),
        crashes in 0usize..=3,
        sync_from in 1u32..10,
    ) {
        let config = SystemConfig::majority(7, 3).unwrap();
        let schedule = random_run(
            config,
            ModelKind::Es,
            RandomRunParams::eventually_synchronous(crashes, 8, sync_from),
            60,
            seed,
        );
        prop_assert!(schedule.validate(60).is_ok());
        prop_assert_eq!(schedule.crash_count(), crashes);
    }
}
