//! Integration tests of the networked replicated-KV service: the
//! layered Local/Remote differential and the fault cases the wire layer
//! introduces (clients dying mid-request, reconnect replays, slow-ack
//! retries racing their own first submission).

use std::net::TcpStream;
use std::time::Duration;

use indulgent_model::{ClientId, RequestId};
use indulgent_server::{
    remote_lease_state, remote_stats, EngineConfig, KvOp, KvServer, KvService, LocalKv, Outcome,
    PipeClient, ReadPath, RemoteKv, Response,
};

/// Deterministic sizing: batch of 1 so sequential calls sequence one
/// slot each and both layers must answer byte-identically.
fn deterministic() -> EngineConfig {
    EngineConfig::default_5().with_batch_size(1).with_pipeline_depth(2)
}

/// A scripted workload of puts and gets over a small key space.
fn script() -> Vec<KvOp> {
    (0..30u64)
        .map(|i| {
            let key = (i * 13 % 7) as u16;
            if i % 3 == 0 {
                KvOp::Get { key }
            } else {
                KvOp::Put { key, value: 1_000 + i as u32 }
            }
        })
        .collect()
}

fn drive<S: KvService>(s: &mut S, ops: &[KvOp]) -> Vec<Response> {
    ops.iter()
        .map(|op| match *op {
            KvOp::Put { key, value } => s.put(key, value).expect("put acked"),
            KvOp::Get { key } => s.get(key).expect("get acked"),
        })
        .collect()
}

/// The tentpole differential: the same workload through the in-process
/// service layer and through the framed-TCP layer produces *identical*
/// responses — slots included — and both runs pass the full audit.
#[test]
fn local_and_remote_layers_answer_identically() {
    let ops = script();

    let local_server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let mut local = LocalKv::connect(&local_server.engine(), ClientId(42));
    let local_responses = drive(&mut local, &ops);
    drop(local);
    let local_audit = local_server.shutdown();
    local_audit.check().expect("local audit");

    let remote_server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let mut remote = RemoteKv::connect(remote_server.addr(), ClientId(42)).expect("connect");
    let remote_responses = drive(&mut remote, &ops);
    drop(remote);
    let remote_audit = remote_server.shutdown();
    remote_audit.check().expect("remote audit");

    assert_eq!(local_responses, remote_responses, "the transport must add no semantics");
    assert_eq!(local_audit.committed_commands(), remote_audit.committed_commands());
    assert_eq!(local_audit.final_store(), remote_audit.final_store());
}

/// The value a response answered, whatever path served it (`None` for
/// writes).
fn value_of(r: &Response) -> Option<Option<u32>> {
    match r.outcome {
        Outcome::Get { value, .. } | Outcome::Read { value, .. } => Some(value),
        Outcome::Put { .. } => None,
    }
}

/// The read-path differential: with leases on, the same mixed workload
/// answers byte-identically through the in-process and framed-TCP
/// layers (read indices included), and value-identically to the
/// sequenced escape hatch — the fast path changes latency, never
/// answers.
#[test]
fn lease_reads_are_transport_and_mode_transparent() {
    let ops = script();
    let leased = || deterministic().with_reads(ReadPath::Lease);

    let local_server = KvServer::bind("127.0.0.1:0", leased()).expect("bind");
    let mut local = LocalKv::connect(&local_server.engine(), ClientId(42));
    let local_responses = drive(&mut local, &ops);
    drop(local);
    let local_audit = local_server.shutdown();
    local_audit.check().expect("local lease audit");
    assert!(!local_audit.fast_reads().is_empty(), "the workload exercised the fast path");

    let remote_server = KvServer::bind("127.0.0.1:0", leased()).expect("bind");
    let mut remote = RemoteKv::connect(remote_server.addr(), ClientId(42)).expect("connect");
    let remote_responses = drive(&mut remote, &ops);
    drop(remote);
    let remote_audit = remote_server.shutdown();
    remote_audit.check().expect("remote lease audit");

    assert_eq!(local_responses, remote_responses, "the transport must add no read semantics");

    // The sequenced escape hatch answers the same values for every read;
    // only the linearization metadata (slot vs read index) differs.
    let seq_server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let mut seq = LocalKv::connect(&seq_server.engine(), ClientId(42));
    let seq_responses = drive(&mut seq, &ops);
    drop(seq);
    seq_server.shutdown().check().expect("sequenced audit");
    for (leased, sequenced) in local_responses.iter().zip(&seq_responses) {
        assert_eq!(value_of(leased), value_of(sequenced), "fast reads answer the same values");
    }
}

/// The lease-state dump is queryable over the wire mid-service: mode,
/// epoch, and the read-path counters come back on a dedicated
/// connection (this is what CI failure artifacts capture).
#[test]
fn lease_state_is_queryable_over_the_wire() {
    let server =
        KvServer::bind("127.0.0.1:0", deterministic().with_reads(ReadPath::Lease)).expect("bind");
    let addr = server.addr();
    let mut kv = RemoteKv::connect(addr, ClientId(9)).expect("connect");
    kv.put(3, 33).expect("put");
    kv.get(3).expect("get");
    let status = remote_lease_state(addr, 0, Duration::from_secs(5)).expect("lease state");
    assert_eq!(status.mode, ReadPath::Lease.as_wire());
    assert_eq!((status.shard, status.shards), (0, 1));
    assert!(status.epoch >= 1, "an epoch was burned before serving");
    assert!(
        status.reads_lease + status.reads_quorum >= 1,
        "the read went down the fast path: {status}"
    );
    drop(kv);
    server.shutdown().check().expect("audit clean");
}

/// The observability differential: the same scripted workload through
/// the in-process layer and through framed TCP leaves *identical*
/// scraped counters — slots, committed commands, dedup hits, read-path
/// tallies, and every stage histogram's observation count. Latencies
/// differ run to run; what was counted must not.
#[test]
fn stats_scrapes_match_across_transports() {
    let ops = script();

    let local_server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let mut local = LocalKv::connect(&local_server.engine(), ClientId(42));
    drive(&mut local, &ops);
    let local_stats =
        remote_stats(local_server.addr(), 0, Duration::from_secs(5)).expect("local scrape");
    drop(local);
    local_server.shutdown().check().expect("local audit");

    let remote_server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let mut remote = RemoteKv::connect(remote_server.addr(), ClientId(42)).expect("connect");
    drive(&mut remote, &ops);
    let remote_stats_report =
        remote_stats(remote_server.addr(), 0, Duration::from_secs(5)).expect("remote scrape");
    drop(remote);
    remote_server.shutdown().check().expect("remote audit");

    let counters = |s: &indulgent_server::StatsReport| {
        (s.slots, s.committed, s.dedup_hits, s.reads_lease, s.reads_quorum, s.reads_sequenced)
    };
    assert_eq!(
        counters(&local_stats),
        counters(&remote_stats_report),
        "the transport must not change what gets counted"
    );
    assert_eq!(local_stats.committed, ops.len() as u64, "batch of 1: every op took a slot");
    for ((name, local_h), (_, remote_h)) in
        local_stats.stages().iter().zip(remote_stats_report.stages().iter())
    {
        assert_eq!(
            local_h.count, remote_h.count,
            "stage {name} observed a different number of events across transports"
        );
    }
    // Every sequenced command passed through every pipeline stage.
    assert_eq!(local_stats.submit_seal.count, ops.len() as u64);
    assert_eq!(local_stats.apply_ack.count, local_stats.slots);
    assert_eq!(local_stats.wal_fsync.count, 0, "no durability configured, no fsyncs");
}

/// A durable engine leaves its flight recording on disk: checkpoints
/// and the clean shutdown both dump the ring to `flight-<shard>.log`
/// in the shard's durability directory, so a post-mortem (CI failure
/// artifact, `kill -9` autopsy) always has the recent event history.
#[test]
fn flight_recorder_dumps_land_in_the_durability_dir() {
    let dir = std::env::temp_dir().join(format!("indulgent-flight-dump-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = deterministic()
        .with_durability(indulgent_server::DurabilityConfig::new(&dir).with_snapshot_every(4));
    let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
    let mut kv = LocalKv::connect(&server.engine(), ClientId(77));
    for i in 0..10u32 {
        kv.put(u16::try_from(i % 3).unwrap(), i).expect("put acked");
    }
    drop(kv);
    server.shutdown().check().expect("audit clean");

    let path = dir.join("flight-0.log");
    let dump = std::fs::read_to_string(&path).expect("flight recording dumped");
    assert!(dump.starts_with("# flight-recorder:"), "dump carries its banner: {dump}");
    for label in ["slot_applied", "wal_sync", "checkpoint", "shutdown"] {
        assert!(dump.contains(label), "flight dump is missing {label} events:\n{dump}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Killing a client mid-request must neither hang the server nor apply
/// the command twice when the client reconnects with the same request
/// id. This is the satellite fault-injection case from the issue.
#[test]
fn killed_client_reconnect_applies_exactly_once() {
    let server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let addr = server.addr();

    // Client sends a put and dies before reading the ack — repeatedly,
    // at slightly different points of the request lifecycle.
    for (i, pause) in [0u64, 1, 5, 20].iter().enumerate() {
        let client = ClientId(100 + i as u64);
        let key = 50 + i as u16;
        let mut doomed =
            PipeClient::connect(addr, client, Duration::from_millis(1)).expect("connect");
        doomed.send(RequestId(0), KvOp::Put { key, value: 7_000 + i as u32 }).expect("send");
        // Let the command progress a varying distance (unbatched, batched,
        // possibly decided) before the socket dies.
        std::thread::sleep(Duration::from_millis(*pause));
        drop(doomed);

        // Reconnect as the same session and replay the in-doubt request.
        let mut revived = RemoteKv::connect_from(addr, client, RequestId(0)).expect("reconnect");
        let ack = revived
            .call_with(RequestId(0), KvOp::Put { key, value: 7_000 + i as u32 })
            .expect("acked");
        assert!(matches!(ack.outcome, Outcome::Put { .. }));
        // The session stays usable and observes its own write.
        match revived.get(key).expect("get acked").outcome {
            Outcome::Get { value, .. } => assert_eq!(value, Some(7_000 + i as u32)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    let audit = server.shutdown();
    audit.check().expect("audit clean");
    // 4 sessions x (1 put applied once + 1 get).
    assert_eq!(audit.committed_commands(), 8, "no replayed put applied twice");
    assert_eq!(audit.duplicate_applies(), 0);
}

/// A connection that sends garbage (a non-protocol frame) is dropped
/// without wedging the server; well-behaved sessions keep working.
#[test]
fn garbage_frames_drop_the_connection_not_the_server() {
    let server = KvServer::bind("127.0.0.1:0", deterministic()).expect("bind");
    let addr = server.addr();

    {
        let mut sock = TcpStream::connect(addr).expect("connect");
        indulgent_server::wire::write_frame(&mut sock, b"not a protocol message").expect("write");
        // The server drops us; the socket sees EOF (or reset) eventually.
        sock.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = [0u8; 16];
        use std::io::Read;
        let _ = sock.read(&mut buf);
    }

    let mut kv = RemoteKv::connect(addr, ClientId(1)).expect("connect");
    kv.put(1, 11).expect("server still serving");
    drop(kv);
    let audit = server.shutdown();
    audit.check().expect("audit clean");
    assert_eq!(audit.committed_commands(), 1);
}

/// Retries racing their own first submission (duplicate ids sent while
/// the original is still in flight) collapse to one slot.
#[test]
fn in_flight_duplicates_collapse_to_one_slot() {
    // A big batch + no other traffic keeps the first submission in the
    // open batch while duplicates arrive.
    let config = EngineConfig::default_5().with_batch_size(32).with_pipeline_depth(2);
    let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    let mut pipe =
        PipeClient::connect(addr, ClientId(5), Duration::from_millis(5)).expect("connect");
    for _ in 0..5 {
        pipe.send(RequestId(0), KvOp::Put { key: 1, value: 99 }).expect("send");
    }
    // Collect the ack (the linger timer seals the partial batch). All
    // duplicates were absorbed while in flight, so exactly one ack comes.
    let mut acks = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while acks.is_empty() && std::time::Instant::now() < deadline {
        acks.extend(pipe.drain_acks().expect("drain"));
    }
    assert_eq!(acks.len(), 1, "five duplicate submissions produce one ack");
    assert_eq!(acks[0].request, RequestId(0));
    drop(pipe);

    let audit = server.shutdown();
    audit.check().expect("audit clean");
    assert_eq!(audit.committed_commands(), 1, "one slot for five duplicate submissions");
    assert!(audit.dedup_hits() >= 4, "the in-flight duplicates were absorbed");
}

/// Sessions on both layers interleave against one server and every
/// acknowledged read is consistent with the audit's replay (the
/// linearizability gate at integration scale).
#[test]
fn mixed_local_and_remote_sessions_stay_linearizable() {
    let config = EngineConfig::default_5().with_batch_size(4).with_pipeline_depth(3);
    let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    let engine = server.engine();

    let remote_worker = std::thread::spawn(move || {
        let mut kv = RemoteKv::connect(addr, ClientId(1)).expect("connect");
        for i in 0..20u32 {
            kv.put((i % 5) as u16, i).expect("put");
            kv.get(((i + 1) % 5) as u16).expect("get");
        }
    });
    let local_worker = std::thread::spawn(move || {
        let mut kv = LocalKv::connect(&engine, ClientId(2));
        for i in 0..20u32 {
            kv.put((i % 5) as u16, 1_000 + i).expect("put");
            kv.get((i % 5) as u16).expect("get");
        }
    });
    remote_worker.join().expect("remote worker");
    local_worker.join().expect("local worker");

    let audit = server.shutdown();
    audit.check().expect("linearizability-by-replay holds across mixed layers");
    assert_eq!(audit.committed_commands(), 80);
}

/// The cross-shard differential: the same seeded multi-key workload
/// routed through 1, 2, and 4 shard groups materializes byte-identical
/// KV stores and answers every per-key read with the same value. Slots
/// are per-shard and so differ across shard counts; the *values* — the
/// linearized answers — may not.
#[test]
fn sharded_runs_match_single_group_key_for_key() {
    let ops: Vec<KvOp> = (0..60u64)
        .map(|i| {
            let key = (i * 29 % 23) as u16;
            if i % 3 == 0 {
                KvOp::Get { key }
            } else {
                KvOp::Put { key, value: 5_000 + i as u32 }
            }
        })
        .collect();

    let mut runs = Vec::new();
    for shards in [1usize, 2, 4] {
        let config = deterministic().with_shards(shards);
        let server = KvServer::bind("127.0.0.1:0", config).expect("bind");
        let mut kv = RemoteKv::connect(server.addr(), ClientId(7)).expect("connect");
        let responses = drive(&mut kv, &ops);
        drop(kv);
        let audit = server.shutdown();
        audit.check().expect("sharded audit clean");
        assert_eq!(audit.shards.len(), shards);
        runs.push((shards, responses, audit.final_store(), audit.committed_commands()));
    }

    let (_, baseline_responses, baseline_store, baseline_committed) = &runs[0];
    for (shards, responses, store, committed) in &runs[1..] {
        assert_eq!(
            store, baseline_store,
            "{shards}-shard run materializes a different store than the single group"
        );
        assert_eq!(committed, baseline_committed);
        for (op, (sharded, single)) in ops.iter().zip(responses.iter().zip(baseline_responses)) {
            assert_eq!(
                value_of(sharded),
                value_of(single),
                "{op:?} answered differently through {shards} shards"
            );
        }
    }
}

/// Counts this process's live threads via /proc — the shard scaling
/// claim depends on S shards *sharing* one session worker pool, not
/// spawning S of them.
#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").expect("proc readable").count()
}

/// S shards must not cost S thread pools: the engine multiplexes every
/// shard group onto one replica session, so the thread bill for
/// `--shards 4` equals the bill for `--shards 1`.
#[cfg(target_os = "linux")]
#[test]
fn shards_share_one_worker_pool() {
    let delta_for = |shards: usize| {
        let before = live_threads();
        let server =
            KvServer::bind("127.0.0.1:0", deterministic().with_shards(shards)).expect("bind");
        let mut kv = LocalKv::connect(&server.engine(), ClientId(3));
        kv.put(1, 10).expect("put");
        // Threads are all up once a command has committed.
        let during = live_threads();
        drop(kv);
        server.shutdown().check().expect("audit clean");
        during - before
    };
    let one = delta_for(1);
    let four = delta_for(4);
    assert_eq!(four, one, "4 shards spawned extra threads over 1 shard ({four} vs {one})");
}
