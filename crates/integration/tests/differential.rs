//! Differential conformance harness for the sweep engines.
//!
//! Runs identical schedule batches through the executors the workspace
//! has — the serial replay sweep, the incremental fork-on-branch sweep
//! (serial and pooled), and, for sampled schedules, the threaded
//! `indulgent_runtime` — and asserts outcome-for-outcome equality:
//!
//! * worst-case reports, censuses and valency sets are **bit-identical**
//!   across backends and thread counts (the engine's determinism
//!   guarantee);
//! * the incremental prefix-sharing engine reproduces the run-from-scratch
//!   replay reports byte for byte, up to the exhaustive `n = 6, t = 2`
//!   space (the fork-on-branch executor changes how runs execute, never
//!   what they compute);
//! * consensus violations are detected by every backend;
//! * schedules expressible on the real network (crash-before-send) produce
//!   the same decisions under the deterministic simulator and the
//!   thread-per-process runtime;
//! * the paper's `t + 2` bound (`k_ES`) survives the engine's headline
//!   workload: an exhaustive `n = 7, t = 2` sweep (~518k serial runs).

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use indulgent_checker::{
    decision_round_census_replay, decision_round_census_with, reachable_decisions,
    worst_case_decision_round_replay, worst_case_decision_round_with, SweepBackend, ValencyParams,
};
use indulgent_consensus::{AtPlus2, CoordinatorEcho, FloodSet, RotatingCoordinator};
use indulgent_integration::proposals;
use indulgent_model::{ProcessFactory, ProcessId, Round, SystemConfig, Value};
use indulgent_runtime::{run_network, NetworkConfig};
use indulgent_sim::{run_schedule, work_units, MessageFate, ModelKind, Schedule};

fn at_plus2_factory(
    config: SystemConfig,
) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> + Sync {
    move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    }
}

#[test]
fn worst_case_reports_identical_across_backends() {
    for (n, t) in [(4usize, 1usize), (5, 2)] {
        let config = SystemConfig::majority(n, t).unwrap();
        let factory = at_plus2_factory(config);
        let props = proposals(n);
        let crash_horizon = t as u32 + 2;
        let serial = worst_case_decision_round_with(
            &factory,
            config,
            ModelKind::Es,
            &props,
            crash_horizon,
            40,
            SweepBackend::Serial,
        )
        .unwrap();
        assert_eq!(serial.worst_round, Round::new(t as u32 + 2), "k_ES = t + 2 for A_t+2");
        for threads in [2, 4] {
            let parallel = worst_case_decision_round_with(
                &factory,
                config,
                ModelKind::Es,
                &props,
                crash_horizon,
                40,
                SweepBackend::parallel(threads),
            )
            .unwrap();
            assert_eq!(
                serial, parallel,
                "(n={n}, t={t}) report with {threads} workers must equal serial"
            );
        }
    }
}

#[test]
fn census_identical_across_backends_including_witnesses() {
    let config = SystemConfig::majority(3, 1).unwrap();
    let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
    let props = proposals(3);
    let serial = decision_round_census_with(
        &factory,
        config,
        ModelKind::Es,
        &props,
        4,
        30,
        SweepBackend::Serial,
    )
    .unwrap();
    for threads in [2, 4] {
        let parallel = decision_round_census_with(
            &factory,
            config,
            ModelKind::Es,
            &props,
            4,
            30,
            SweepBackend::parallel(threads),
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn valency_sets_identical_across_backends() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let factory = at_plus2_factory(config);
    let props = vec![Value::ONE, Value::ONE, Value::ONE, Value::ONE, Value::ZERO];
    let prefix = Schedule::failure_free(config, ModelKind::Es);
    let serial: BTreeSet<Value> = reachable_decisions(
        &factory,
        &props,
        &prefix,
        1,
        ValencyParams::new(4, 40).with_backend(SweepBackend::Serial),
    );
    assert_eq!(serial, BTreeSet::from([Value::ZERO, Value::ONE]), "the prefix is bivalent");
    for threads in [2, 4] {
        let parallel = reachable_decisions(
            &factory,
            &props,
            &prefix,
            1,
            ValencyParams::new(4, 40).with_backend(SweepBackend::parallel(threads)),
        );
        assert_eq!(serial, parallel);
    }
}

#[test]
fn violations_detected_by_every_backend() {
    // FloodSet truncated to t rounds violates agreement in some serial
    // schedule; serial and parallel sweeps must both catch it (the
    // witness schedule may legitimately differ).
    let config = SystemConfig::synchronous(4, 2).unwrap();
    let early = config.t() as u32;
    let factory = move |_i: usize, v: Value| FloodSet::deciding_at(Round::new(early), v);
    let props = proposals(4);
    for backend in [SweepBackend::Serial, SweepBackend::parallel(2), SweepBackend::parallel(4)] {
        let result = worst_case_decision_round_with(
            &factory,
            config,
            ModelKind::Scs,
            &props,
            3,
            10,
            backend,
        );
        assert!(result.is_err(), "backend {backend:?} must catch the violation");
    }
}

/// Schedules whose every crash loses all messages (crash strictly before
/// sending) are exactly the ones the threaded runtime can express via
/// `NetworkConfig::crash`; sample them from the swept space and compare
/// executor against network, outcome for outcome.
#[test]
fn runtime_spot_checks_match_the_swept_schedules() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let props = proposals(5);
    let horizon = 3u32;

    // Collect the network-expressible schedules from the batch partition.
    let mut expressible: Vec<Schedule> = Vec::new();
    for unit in work_units(config, ModelKind::Es, horizon) {
        let _ = unit.for_each(|schedule| {
            let all_lost = config.processes().all(|p| match schedule.crash_round(p) {
                None => true,
                // Fates toward already-crashed receivers are irrelevant
                // (never delivered); only live receivers must lose.
                Some(r) => config
                    .processes()
                    .filter(|&q| q != p && schedule.alive_entering(q, r))
                    .all(|q| schedule.fate(r, p, q) == MessageFate::Lose),
            });
            if all_lost {
                expressible.push(schedule.clone());
            }
            ControlFlow::Continue(())
        });
    }
    // 1 failure-free + one-crash (3 rounds x 5 victims) + two-crash
    // (3 ordered round pairs x 5 x 4 victims).
    assert_eq!(expressible.len(), 1 + 15 + 60);

    // Spot-check a deterministic sample through the threaded runtime.
    for schedule in expressible.iter().step_by(7) {
        let factory = at_plus2_factory(config);
        let sim = run_schedule(&factory, &props, schedule, 30).unwrap();
        sim.check_consensus().unwrap();

        let mut net_cfg = NetworkConfig::synchronous(config);
        for p in config.processes() {
            if let Some(r) = schedule.crash_round(p) {
                net_cfg = net_cfg.crash(p, r);
            }
        }
        let net = run_network(config, &factory, &props, &net_cfg);
        net.outcome.check_consensus().unwrap();

        assert_eq!(
            sim.global_decision_round(),
            net.outcome.global_decision_round(),
            "global decision round diverged on {schedule:?}"
        );
        for p in config.processes() {
            assert_eq!(
                sim.decision_of(p).map(|d| d.value),
                net.outcome.decision_of(p).map(|d| d.value),
                "{p} decided differently under {schedule:?}"
            );
            assert_eq!(
                sim.decision_of(p).map(|d| d.round),
                net.outcome.decision_of(p).map(|d| d.round),
                "{p} decided in a different round under {schedule:?}"
            );
        }
        assert_eq!(sim.crashed, net.outcome.crashed);
    }
}

/// The tentpole differential: the incremental fork-on-branch engine
/// (serial and 4-worker pooled) against the serial run-from-scratch
/// replay, on the exhaustive `n = 6, t = 2` sweep (~93k serial runs) —
/// reports must be **bit-identical**, including the witness schedule.
#[test]
fn incremental_engine_matches_serial_replay_on_n6_t2() {
    let config = SystemConfig::majority(6, 2).unwrap();
    let factory = at_plus2_factory(config);
    let props = proposals(6);
    let crash_horizon = 4; // t + 2
    let replay = worst_case_decision_round_replay(
        &factory,
        config,
        ModelKind::Es,
        &props,
        crash_horizon,
        30,
        SweepBackend::Serial,
    )
    .unwrap();
    assert_eq!(replay.worst_round, Round::new(4), "k_ES = t + 2");
    for backend in [SweepBackend::Serial, SweepBackend::parallel(4)] {
        let incremental = worst_case_decision_round_with(
            &factory,
            config,
            ModelKind::Es,
            &props,
            crash_horizon,
            30,
            backend,
        )
        .unwrap();
        assert_eq!(
            replay, incremental,
            "incremental report ({backend:?}) must be bit-identical to serial replay"
        );
    }
}

/// Census differential: incremental (pooled ring-mailbox engine, serial
/// and 4-worker) vs run-from-scratch replay on the exhaustive
/// `n = 6, t = 2` space (~93k serial runs) — every tally and witness
/// bit-identical.
#[test]
fn incremental_census_matches_replay_on_n6_t2() {
    let config = SystemConfig::majority(6, 2).unwrap();
    let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
    let props = proposals(6);
    let replay = decision_round_census_replay(
        &factory,
        config,
        ModelKind::Es,
        &props,
        4,
        30,
        SweepBackend::Serial,
    )
    .unwrap();
    for backend in [SweepBackend::Serial, SweepBackend::parallel(4)] {
        let incremental =
            decision_round_census_with(&factory, config, ModelKind::Es, &props, 4, 30, backend)
                .unwrap();
        assert_eq!(replay, incremental, "census ({backend:?}) must equal replay");
    }
}

/// The engine's headline workload: the exhaustive `n = 7, t = 2` sweep
/// (~518k serial synchronous runs) confirming `k_ES = t + 2` for
/// `A_{t+2}` — exactly the bound of the paper's Proposition 1, attained.
#[test]
fn exhaustive_n7_t2_sweep_confirms_t_plus_2() {
    let config = SystemConfig::majority(7, 2).unwrap();
    let factory = at_plus2_factory(config);
    let props = proposals(7);
    let report = worst_case_decision_round_with(
        &factory,
        config,
        ModelKind::Es,
        &props,
        4, // crashes anywhere in rounds 1..=t+2
        30,
        SweepBackend::parallel(4),
    )
    .unwrap();
    assert_eq!(report.worst_round, Round::new(4), "k_ES = t + 2");
    assert_eq!(report.best_round, Round::new(4), "A_t+2 never decides earlier either");
    assert_eq!(report.runs, 517_889, "the full serial space was swept");
}
