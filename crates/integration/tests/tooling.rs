//! Integration tests for the analysis tooling: traces, censuses, the
//! Sect. 4 detector simulation, and their interplay with the algorithms.

use indulgent_checker::{decision_round_census, randomized_worst_case};
use indulgent_consensus::{AtPlus2, EarlyFloodSet, FloodSet, RotatingCoordinator};
use indulgent_integration::proposals;
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{
    run_schedule, run_traced, ModelKind, Schedule, ScheduleBuilder, ScheduleDetector,
};

fn at_factory(config: SystemConfig) -> impl Fn(usize, Value) -> AtPlus2<RotatingCoordinator> {
    move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    }
}

/// The trace of an `A_{t+2}` synchronous run shows the suspicion pattern
/// the Halt mechanism consumes: once a process crashes, every survivor
/// suspects it in all later rounds, and nobody suspects a live process.
#[test]
fn trace_suspicions_mirror_crashes_in_synchronous_runs() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let schedule = ScheduleBuilder::new(config, ModelKind::Es)
        .crash_before_send(ProcessId::new(2), Round::new(2))
        .build(30)
        .unwrap();
    let trace = run_traced(&at_factory(config), &proposals(5), &schedule, 30)
        .expect("one proposal per process");
    trace.outcome().check_consensus().unwrap();
    for rec in trace.records() {
        for suspected in rec.suspected.iter() {
            // Only the genuinely crashed p2 is ever suspected, and only
            // from its crash round on.
            assert_eq!(suspected, ProcessId::new(2), "false suspicion at {rec:?}");
            assert!(rec.round >= Round::new(2));
        }
    }
    // And it *is* suspected by every survivor from round 2 on.
    for k in 2..=4u32 {
        for p in [0usize, 1, 3, 4] {
            assert!(trace.suspected(Round::new(k), ProcessId::new(p), ProcessId::new(2)));
        }
    }
}

/// The timeline renderer produces one row per process and marks the global
/// decision round of every survivor.
#[test]
fn trace_render_is_complete() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let schedule = Schedule::failure_free(config, ModelKind::Es);
    let trace = run_traced(&at_factory(config), &proposals(5), &schedule, 30)
        .expect("one proposal per process");
    let art = trace.render();
    for i in 0..5 {
        assert!(art.contains(&format!("p{i}")), "missing row for p{i}:\n{art}");
    }
    assert_eq!(art.matches('D').count(), 5, "all five decide:\n{art}");
}

/// The census of FloodSet in SCS is a single bar at t + 1 — the exhaustive
/// counterpart of the classic tight bound, next to `A_{t+2}`'s single bar
/// at t + 2 in ES (E8's shape, via the census API).
#[test]
fn censuses_show_the_one_round_price() {
    let scs = SystemConfig::synchronous(4, 1).unwrap();
    let floodset = move |_i: usize, v: Value| FloodSet::new(scs, v);
    let scs_census =
        decision_round_census(&floodset, scs, ModelKind::Scs, &proposals(4), 2, 10).unwrap();
    assert_eq!(scs_census.spread(), 1);
    assert_eq!(scs_census.worst(), Some(Round::new(2))); // t + 1

    let es = SystemConfig::majority(4, 1).unwrap();
    let es_census =
        decision_round_census(&at_factory(es), es, ModelKind::Es, &proposals(4), 3, 30).unwrap();
    assert_eq!(es_census.spread(), 1);
    assert_eq!(es_census.worst(), Some(Round::new(3))); // t + 2

    // The price, computed from the censuses themselves.
    assert_eq!(es_census.worst().unwrap() - scs_census.worst().unwrap(), 1);
}

/// EarlyFloodSet's census spreads between f + 2 and t + 1 — unlike plain
/// FloodSet it actually exploits calm runs.
#[test]
fn early_floodset_census_spreads_with_f() {
    let config = SystemConfig::synchronous(4, 2).unwrap();
    let early = move |_i: usize, v: Value| EarlyFloodSet::new(config, v);
    let census =
        decision_round_census(&early, config, ModelKind::Scs, &proposals(4), 3, 10).unwrap();
    assert_eq!(census.best(), Some(Round::new(2))); // failure-free: f + 2 = 2
    assert_eq!(census.worst(), Some(Round::new(3))); // min(f + 2, t + 1) = 3
    assert!(census.spread() >= 2);
}

/// Randomized worst-case search scales the t + 2 observation to a system
/// far beyond exhaustive reach and returns a synchronous witness schedule.
#[test]
fn randomized_search_on_a_large_system() {
    let config = SystemConfig::majority(11, 5).unwrap();
    let (round, schedule) =
        randomized_worst_case(&at_factory(config), config, &proposals(11), 150, 60, 3).unwrap();
    assert_eq!(round, Round::new(7)); // t + 2
    assert!(schedule.is_synchronous());
    assert!(schedule.validate(60).is_ok());
}

/// The Sect. 4 simulated detector, fed to the `A_◇S` variant, decides at
/// t + 2 in synchronous runs exactly like the derived-suspicion original —
/// and the trace confirms both see the same suspicion pattern.
#[test]
fn section4_detector_equivalence_under_trace() {
    let config = SystemConfig::majority(5, 2).unwrap();
    let schedule = ScheduleBuilder::new(config, ModelKind::Es)
        .crash_delivering_only(ProcessId::new(3), Round::new(1), [ProcessId::new(0)])
        .build(30)
        .unwrap();
    let props = proposals(5);

    let derived =
        run_schedule(&at_factory(config), &props, &schedule, 30).expect("one proposal per process");
    derived.check_consensus().unwrap();

    let sched = schedule.clone();
    let with_detector = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::with_detector(
            config,
            id,
            v,
            RotatingCoordinator::new(config, id),
            ScheduleDetector::new(sched.clone()),
        )
    };
    let simulated =
        run_schedule(&with_detector, &props, &schedule, 30).expect("one proposal per process");
    simulated.check_consensus().unwrap();

    assert_eq!(derived.decisions, simulated.decisions);
    assert_eq!(derived.global_decision_round(), Some(Round::new(4))); // t + 2
}
