//! Chaos restart storms over the durable service engine: seeded
//! kill/restart sequences — including kills with requests still in
//! flight, double-crashes of the same instance, and recovery under
//! injected asynchrony — across replica-group sizes beyond the fixed
//! n = 5, t = 2, and across shard counts. After every storm the
//! [`ShardedAudit`] replay check must stay green over the *combined*
//! pre/post-restart history, and the on-disk state (per-shard snapshot +
//! WAL replay) must agree with the engine's final materialized store —
//! the disk-state divergence check.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use indulgent_model::{ClientId, RequestId, SystemConfig};
use indulgent_runtime::DelayModel;
use indulgent_server::wal::replay_bytes;
use indulgent_server::{
    load_manifest, shard_dir, DurabilityConfig, EngineConfig, KvEngine, KvOp, LocalKv, Request,
    ShardedAudit, Snapshot,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn storm_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "indulgent-storm-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn cfg(n: usize, t: usize, shards: usize, dir: &Path, snapshot_every: u64) -> EngineConfig {
    EngineConfig {
        system: SystemConfig::majority(n, t).expect("valid majority config"),
        ..EngineConfig::default_5()
    }
    .with_batch_size(3)
    .with_pipeline_depth(2)
    .with_shards(shards)
    .with_durability(DurabilityConfig::new(dir).with_snapshot_every(snapshot_every))
}

/// Tiny deterministic RNG (splitmix64) so the storm is seeded chaos, not
/// flaky chaos.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_op(state: &mut u64) -> KvOp {
    let r = mix(state);
    let key = (r % 11) as u16;
    if r.is_multiple_of(3) {
        KvOp::Get { key }
    } else {
        KvOp::Put { key, value: (r >> 8) as u32 }
    }
}

/// Validates one shard's durable state between incarnations: the
/// snapshot verifies, the WAL replays cleanly (any torn tail is the
/// crash artifact `Wal::open` repairs — here we only require the
/// checksummed prefix to parse), and the records are slot-contiguous
/// past the snapshot.
fn check_shard_disk(dir: &Path) {
    let snap = Snapshot::load(&dir.join("state.snap")).expect("snapshot readable");
    let base = snap.as_ref().map_or(0, |s| s.applied_through);
    let bytes = std::fs::read(dir.join("wal.log")).unwrap_or_default();
    let replay = replay_bytes(&bytes).expect("wal prefix parses");
    for (expected, rec) in (base + 1..).zip(replay.records.iter().filter(|r| r.slot > base)) {
        assert_eq!(rec.slot, expected, "wal records contiguous past the snapshot");
    }
}

/// Validates the whole durability root: the manifest records the
/// expected shard count, and every shard subdirectory passes the
/// per-shard disk check.
fn check_disk(root: &Path, shards: usize) {
    let on_disk = load_manifest(root).expect("manifest readable").expect("manifest present");
    assert_eq!(on_disk as usize, shards, "manifest records the shard count");
    for i in 0..shards {
        check_shard_disk(&shard_dir(root, i as u32));
    }
}

/// Replays one shard's durable state into a store — the independent
/// disk-side materialization the final audit is compared against.
fn shard_disk_store(dir: &Path) -> (u64, BTreeMap<u16, u32>) {
    let snap =
        Snapshot::load(&dir.join("state.snap")).expect("snapshot readable").unwrap_or_default();
    let mut store = snap.store;
    let base = snap.applied_through;
    let mut through = base;
    let bytes = std::fs::read(dir.join("wal.log")).unwrap_or_default();
    let replay = replay_bytes(&bytes).expect("wal prefix parses");
    for rec in replay.records.iter().filter(|r| r.slot > base) {
        for ack in &rec.commands {
            if let KvOp::Put { key, value } = ack.op {
                store.insert(key, value);
            }
        }
        through = rec.slot;
    }
    (through, store)
}

/// Merges every shard's disk replay: total applied slots across shards
/// plus the merged store. Keys are disjoint across shards (the router is
/// a function of the key), so the merge order cannot matter.
fn disk_store(root: &Path, shards: usize) -> (u64, BTreeMap<u16, u32>) {
    let mut total = 0u64;
    let mut merged = BTreeMap::new();
    for i in 0..shards {
        let (through, store) = shard_disk_store(&shard_dir(root, i as u32));
        total += through;
        merged.extend(store);
    }
    (total, merged)
}

/// One seeded storm: `phases` incarnations of the engine on the same
/// durability root, each killed hard with requests possibly still in
/// flight, clients replaying their in-doubt ids into the next
/// incarnation. Returns the final (clean-shutdown) audit.
#[allow(clippy::too_many_arguments)]
fn run_storm(
    n: usize,
    t: usize,
    shards: usize,
    phases: usize,
    ops_per_phase: usize,
    seed: u64,
    snapshot_every: u64,
    recovery_delays: DelayModel,
) -> ShardedAudit {
    let dir = storm_dir("storm");
    let clients = 3usize;
    let mut state = seed;
    let mut next_id = vec![0u64; clients];
    // At most one in-doubt (submitted, never acked) request per client,
    // replayed first thing in the next incarnation.
    let mut pending: Vec<Option<(u64, KvOp)>> = vec![None; clients];

    let mut final_audit = None;
    for phase in 0..phases {
        let mut config = cfg(n, t, shards, &dir, snapshot_every);
        if phase > 0 {
            // Recovery may happen while the network is misbehaving.
            config = config.with_delays(recovery_delays);
        }
        let engine = KvEngine::spawn(config);
        let handle = engine.handle();
        let mut sessions: Vec<LocalKv> =
            (0..clients).map(|c| LocalKv::connect(&handle, ClientId(c as u64))).collect();

        // Replay in-doubt requests: each must be acked exactly once —
        // either from the recovered dedup cache (it committed before the
        // kill) or by a fresh apply (it died in flight).
        for (c, slot) in pending.iter_mut().enumerate() {
            if let Some((id, op)) = slot.take() {
                let resp = sessions[c].call_with(RequestId(id), op).expect("replay acked");
                assert_eq!(resp.request, RequestId(id));
            }
        }

        for _ in 0..ops_per_phase {
            let c = (mix(&mut state) % clients as u64) as usize;
            let op = random_op(&mut state);
            let id = next_id[c];
            next_id[c] += 1;
            let resp = sessions[c].call_with(RequestId(id), op).expect("acked");
            assert_eq!(resp.request, RequestId(id));
        }

        if phase + 1 == phases {
            drop(sessions);
            final_audit = Some(engine.shutdown());
        } else {
            // Leave one in-doubt request per client (submitted raw, ack
            // never awaited), let the engine race it briefly, then pull
            // the plug.
            let (raw, _outbound) = handle.connect();
            for (c, slot) in pending.iter_mut().enumerate() {
                let id = next_id[c];
                next_id[c] += 1;
                let op = random_op(&mut state);
                assert!(raw.submit(Request {
                    client: ClientId(c as u64),
                    request: RequestId(id),
                    op,
                }));
                *slot = Some((id, op));
            }
            std::thread::sleep(Duration::from_millis(mix(&mut state) % 4));
            drop(sessions);
            drop(raw);
            engine.kill();
            check_disk(&dir, shards);
        }
    }

    let audit = final_audit.expect("storm ran at least one phase");
    audit.check().expect("combined pre/post-restart history audits clean");

    // Disk-state divergence check: after the clean shutdown the durable
    // state, independently replayed shard by shard, must equal the
    // engine's final merged store.
    let (through, store) = disk_store(&dir, shards);
    assert_eq!(store, audit.final_store(), "disk replay diverges from the engine store");
    assert_eq!(through, audit.applied_slots());

    std::fs::remove_dir_all(&dir).ok();
    audit
}

/// The headline storm: three incarnations on one directory (the same
/// logical replica instance crashes twice — a double crash), kills with
/// requests in flight, frequent checkpoints so the WAL is truncated
/// mid-storm.
#[test]
fn restart_storm_survives_seeded_kill_sequences() {
    for seed in [11u64, 29, 73] {
        let audit = run_storm(5, 2, 1, 3, 12, seed, 4, DelayModel::Instant);
        assert!(audit.committed_commands() >= 36, "every submitted request committed");
    }
}

/// The storm holds beyond the fixed n = 5, t = 2 service configuration.
#[test]
fn restart_storm_across_group_sizes() {
    for (n, t) in [(3, 1), (5, 2), (7, 3)] {
        let audit = run_storm(n, t, 1, 2, 8, 1000 + n as u64, 3, DelayModel::Instant);
        assert_eq!(audit.shards[0].system.n(), n);
        assert!(audit.committed_commands() >= 16);
    }
}

/// The sharded storm: every incarnation hosts multiple shard groups on
/// one durability root, the kill lands with requests in flight on
/// several shards at once, and every shard must recover from its own
/// subdirectory with exactly-once intact across the whole keyspace.
#[test]
fn restart_storm_recovers_every_shard() {
    for shards in [2usize, 4] {
        let audit = run_storm(5, 2, shards, 3, 12, 4242 + shards as u64, 4, DelayModel::Instant);
        assert_eq!(audit.shards.len(), shards);
        assert!(audit.committed_commands() >= 36, "every submitted request committed");
        // Keys 0..11 spread over the shards, so with 2+ shards more than
        // one group must have sequenced work.
        let busy = audit.shards.iter().filter(|s| s.committed_commands > 0).count();
        assert!(busy >= 2, "the workload exercised at least two shard groups");
    }
}

/// Recovery while the network is asynchronous: the restarted incarnation
/// runs its early rounds under seeded message delays (false suspicions
/// included) and must still recover, dedup, and audit clean.
#[test]
fn recovery_during_asynchrony_stays_correct() {
    let delays = DelayModel::AsyncUntil {
        until_round: 4,
        delay: Duration::from_millis(3),
        probability: 0.4,
        seed: 0xDEC1DE,
    };
    let audit = run_storm(5, 2, 2, 3, 10, 7, 5, delays);
    audit.check().expect("audit clean under recovery asynchrony");
}

/// Exactly-once across the crash: a request acknowledged before the kill
/// is answered from the recovered session table when retried after the
/// restart — same response bytes, counted as a dedup hit, never
/// re-applied.
#[test]
fn precrash_ack_is_replayed_from_recovered_sessions() {
    let dir = storm_dir("dedup");
    let engine = KvEngine::spawn(cfg(5, 2, 1, &dir, 0));
    let mut session = LocalKv::connect(&engine.handle(), ClientId(9));
    let first = session.call_with(RequestId(0), KvOp::Put { key: 2, value: 77 }).expect("acked");
    drop(session);
    engine.kill();

    let engine = KvEngine::spawn(cfg(5, 2, 1, &dir, 0));
    let mut session = LocalKv::connect(&engine.handle(), ClientId(9));
    let replayed =
        session.call_with(RequestId(0), KvOp::Put { key: 2, value: 77 }).expect("acked again");
    assert_eq!(replayed, first, "the recovered cache replays the original ack");
    let after = session.call_with(RequestId(1), KvOp::Get { key: 2 }).expect("acked");
    drop(session);
    let audit = engine.shutdown();
    audit.check().expect("audit clean");
    assert!(audit.dedup_hits() >= 1, "the replay was a dedup hit");
    assert_eq!(audit.committed_commands(), 2, "the put applied exactly once");
    match after.outcome {
        indulgent_server::Outcome::Get { value, .. } => assert_eq!(value, Some(77)),
        other => panic!("expected a get outcome, found {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Boot refusal on a shard-count mismatch: a durability root laid out
/// for S shards (recorded in the fsynced manifest) must not be
/// reinterpreted by an engine configured for a different count — slot
/// histories and session tables would be split across the wrong groups.
/// The driver panics instead of booting; the panic surfaces at
/// `shutdown`.
#[test]
fn boot_refuses_shard_count_mismatch() {
    let dir = storm_dir("mismatch");
    let engine = KvEngine::spawn(cfg(5, 2, 2, &dir, 0));
    let mut session = LocalKv::connect(&engine.handle(), ClientId(1));
    session.call_with(RequestId(0), KvOp::Put { key: 3, value: 30 }).expect("acked");
    drop(session);
    let audit = engine.shutdown();
    audit.check().expect("audit clean");

    let engine = KvEngine::spawn(cfg(5, 2, 4, &dir, 0));
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.shutdown()));
    assert!(refused.is_err(), "booting 4 shards on a 2-shard layout must refuse");
    std::fs::remove_dir_all(&dir).ok();
}
