//! Snapshot semantics of the fork-on-branch executor (proptest): for every
//! algorithm in `indulgent-consensus`, forking a run mid-flight — cloning
//! its [`RunState`] at some round `k` — and resuming the fork produces a
//! `RunOutcome` bit-identical to a fresh run of the full schedule, and
//! leaves the original snapshot unaffected.
//!
//! This is the contract the incremental prefix-sharing sweep engine
//! (`indulgent_sim::incremental`) rests on: automatons are plain `Clone`
//! values with no hidden shared state, so a mid-run snapshot *is* the run.

use indulgent_consensus::{
    AfPlus2, AtPlus2, CoordinatorEcho, EarlyFloodSet, FloodSet, FloodSetWs, LeaderEcho,
    RotatingCoordinator, Standalone,
};
use indulgent_fd::{CrashInfo, EventuallyStrongDetector, NoDetector, Suspicion, SuspicionScript};
use indulgent_integration::proposals;
use indulgent_model::{ProcessFactory, ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{random_run, run_schedule, ModelKind, RandomRunParams, RunState, Schedule};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Asserts the snapshot contract for one (factory, schedule) pair:
/// `fork(snapshot at k) + resume == fresh run`, and the donor snapshot,
/// resumed afterwards, reaches the same outcome (forks are independent).
fn assert_fork_parity<F>(
    factory: &F,
    config: SystemConfig,
    schedule: &Schedule,
    props: &[Value],
    fork_at: u32,
    horizon: u32,
) -> Result<(), TestCaseError>
where
    F: ProcessFactory,
{
    let fresh = run_schedule(factory, props, schedule, horizon).expect("valid inputs");
    let mut donor: RunState<F::Process> =
        RunState::new(factory, props, config.n()).expect("valid inputs");
    donor.run_to(schedule, fork_at.min(horizon));
    let mut fork = donor.clone();
    fork.run_to(schedule, horizon);
    // Fork at round `fork_at`, resumed: must equal the fresh run.
    prop_assert_eq!(&fork.outcome(props, schedule), &fresh);
    // The donor, resumed after forking, is unaffected by the fork.
    donor.run_to(schedule, horizon);
    prop_assert_eq!(&donor.outcome(props, schedule), &fresh);
    Ok(())
}

/// A random synchronous ES schedule with up to `crashes` crashes.
fn es_schedule(config: SystemConfig, crashes: usize, horizon: u32, seed: u64) -> Schedule {
    random_run(
        config,
        ModelKind::Es,
        RandomRunParams::synchronous(crashes, config.t() as u32 + 2),
        horizon,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `A_{t+2}` (paper Fig. 2).
    #[test]
    fn at_plus2_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..6) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
        };
        let schedule = es_schedule(config, crashes, 40, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 40)?;
    }

    /// `A_◇S` (paper Fig. 3): the detector snapshot forks with the
    /// automaton.
    #[test]
    fn a_diamond_s_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..6) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let schedule = es_schedule(config, crashes, 40, seed);
        let info = CrashInfo::new(config.processes().map(|p| schedule.crash_round(p)).collect());
        let trusted = config
            .processes()
            .find(|p| schedule.crash_round(*p).is_none())
            .expect("some correct process");
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            let detector = EventuallyStrongDetector::new(
                info.clone(),
                Round::FIRST,
                trusted,
                SuspicionScript::new(),
            );
            AtPlus2::with_detector(config, id, v, RotatingCoordinator::new(config, id), detector)
        };
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 40)?;
    }

    /// The Fig. 4 failure-free optimization of `A_{t+2}`.
    #[test]
    fn at_plus2_ff_optimized_fork_parity(seed in any::<u64>(), fork_at in 0u32..5) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let factory = move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
                .with_failure_free_optimization()
        };
        let schedule = es_schedule(config, 1, 40, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 40)?;
    }

    /// `A_{f+2}` (paper Fig. 5, `t < n/3`).
    #[test]
    fn af_plus2_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..6) {
        let config = SystemConfig::third(7, 2).unwrap();
        let factory = move |i: usize, v: Value| AfPlus2::new(config, ProcessId::new(i), v);
        let schedule = es_schedule(config, crashes, 40, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(7), fork_at, 40)?;
    }

    /// FloodSet in SCS (the `t + 1` contrast algorithm).
    #[test]
    fn floodset_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..4) {
        let config = SystemConfig::synchronous(5, 2).unwrap();
        let factory = move |_i: usize, v: Value| FloodSet::new(config, v);
        let schedule = random_run(
            config,
            ModelKind::Scs,
            RandomRunParams::synchronous(crashes, 3),
            10,
            seed,
        );
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 10)?;
    }

    /// Early-deciding FloodSet in SCS (`min(f + 2, t + 1)`).
    #[test]
    fn early_floodset_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..4) {
        let config = SystemConfig::synchronous(5, 2).unwrap();
        let factory = move |_i: usize, v: Value| EarlyFloodSet::new(config, v);
        let schedule = random_run(
            config,
            ModelKind::Scs,
            RandomRunParams::synchronous(crashes, 3),
            10,
            seed,
        );
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 10)?;
    }

    /// FloodSetWS on derived suspicions (the ablation strawman — fork
    /// parity is about determinism, not safety).
    #[test]
    fn floodset_ws_fork_parity(seed in any::<u64>(), crashes in 0usize..=1, fork_at in 0u32..4) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let factory = move |i: usize, v: Value| {
            FloodSetWs::<NoDetector>::new(config, ProcessId::new(i), v, Suspicion::Derived)
        };
        let schedule = es_schedule(config, crashes, 12, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 12)?;
    }

    /// The Hurfin–Raynal-style coordinator-echo baseline (`2t + 2`).
    #[test]
    fn coordinator_echo_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..7) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let factory = move |i: usize, v: Value| CoordinatorEcho::new(config, ProcessId::new(i), v);
        let schedule = es_schedule(config, crashes, 40, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 40)?;
    }

    /// The Mostefaoui–Raynal-style leader-echo baseline (`t < n/3`).
    #[test]
    fn leader_echo_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..7) {
        let config = SystemConfig::third(7, 2).unwrap();
        let factory = move |i: usize, v: Value| LeaderEcho::new(config, ProcessId::new(i), v);
        let schedule = es_schedule(config, crashes, 40, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(7), fork_at, 40)?;
    }

    /// The standalone rotating-coordinator fallback (`3t + 3`).
    #[test]
    fn rotating_coordinator_fork_parity(seed in any::<u64>(), crashes in 0usize..=2, fork_at in 0u32..9) {
        let config = SystemConfig::majority(5, 2).unwrap();
        let factory = move |i: usize, v: Value| {
            Standalone::new(RotatingCoordinator::new(config, ProcessId::new(i)), v)
        };
        let schedule = es_schedule(config, crashes, 60, seed);
        assert_fork_parity(&factory, config, &schedule, &proposals(5), fork_at, 60)?;
    }
}
