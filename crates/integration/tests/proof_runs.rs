//! The lower-bound proof's run constructions (paper Claim 5.1, Fig. 1),
//! expressed as executable schedules.
//!
//! The proof of Proposition 1 builds, around a `(t-1)`-round bivalent
//! serial partial run, two synchronous runs `s1`/`s0` and three
//! asynchronous runs `a2`/`a1`/`a0` whose pairwise indistinguishabilities
//! force a hypothetical `(t+1)`-deciding algorithm into disagreement.
//! A *correct* algorithm like `A_{t+2}` must of course survive all five;
//! these tests express the runs' schedule shapes for `n = 3, t = 1`
//! (so `t + 1 = 2`) and check `A_{t+2}`'s behaviour on them.

use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessFactory, ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{run_schedule, ModelKind, ScheduleBuilder};

fn config() -> SystemConfig {
    SystemConfig::majority(3, 1).unwrap()
}

fn factory(config: SystemConfig) -> impl ProcessFactory<Process = AtPlus2<RotatingCoordinator>> {
    move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
    }
}

/// `s1`-shaped run: `p0` (the proof's `p'1`) crashes in round `t = 1`, its
/// message to `p1` (the proof's `p'_{i+1}`) lost, and nobody crashes later.
/// A synchronous serial run.
#[test]
fn s_runs_are_synchronous_and_decide_at_t_plus_2() {
    let cfg = config();
    let s1 = ScheduleBuilder::new(cfg, ModelKind::Es)
        .crash_losing_to(ProcessId::new(0), Round::new(1), [ProcessId::new(1)])
        .build(30)
        .unwrap();
    assert!(s1.is_synchronous());
    let proposals = [Value::ONE, Value::ONE, Value::ZERO];
    let outcome =
        run_schedule(&factory(cfg), &proposals, &s1, 30).expect("one proposal per process");
    outcome.check_consensus().unwrap();
    assert_eq!(outcome.global_decision_round(), Some(Round::new(3))); // t + 2

    // s0: same crash round, but the message reaches everyone.
    let s0 = ScheduleBuilder::new(cfg, ModelKind::Es)
        .crash_after_send(ProcessId::new(0), Round::new(1))
        .build(30)
        .unwrap();
    let outcome =
        run_schedule(&factory(cfg), &proposals, &s0, 30).expect("one proposal per process");
    outcome.check_consensus().unwrap();
    assert_eq!(outcome.global_decision_round(), Some(Round::new(3)));
}

/// `a2`-shaped run: `p0` does *not* crash in round 1 but is falsely
/// suspected by `p1` (its message delayed); `p1` crashes before sending in
/// round `t + 1 = 2`; the delayed message arrives at round `t + 2`.
///
/// At the end of round 1 this run is indistinguishable from `s1` for
/// everybody except `p0` itself — the indistinguishability at the heart of
/// the proof. A `(t+1)`-deciding algorithm would be trapped; `A_{t+2}`
/// detects the false suspicion through the `Halt` exchange or simply
/// tolerates it by deciding later.
#[test]
fn a2_shaped_run_is_survived() {
    let cfg = config();
    let a2 = ScheduleBuilder::new(cfg, ModelKind::Es)
        .sync_from(Round::new(3))
        .delay(Round::new(1), ProcessId::new(0), ProcessId::new(1), Round::new(3))
        .crash_before_send(ProcessId::new(1), Round::new(2))
        .build(30)
        .unwrap();
    let proposals = [Value::ONE, Value::ONE, Value::ZERO];
    let outcome =
        run_schedule(&factory(cfg), &proposals, &a2, 30).expect("one proposal per process");
    outcome.check_consensus().unwrap();
}

/// `a1`/`a0`-shaped runs: as `a2`, but `p1` survives round 2 while being
/// falsely suspected by everyone (its round-2 messages delayed), and
/// crashes before round 3. The proof shows the two are indistinguishable
/// to the survivors yet must decide differently for a fast algorithm —
/// `A_{t+2}` instead decides consistently in both.
#[test]
fn a1_a0_shaped_runs_decide_the_same_value() {
    let cfg = config();
    let proposals = [Value::ONE, Value::ONE, Value::ZERO];

    // a1: p0 falsely suspected by p1 in round 1; p1 falsely suspected by
    // all in round 2; p1 crashes before round 3.
    let a1 = ScheduleBuilder::new(cfg, ModelKind::Es)
        .sync_from(Round::new(3))
        .delay(Round::new(1), ProcessId::new(0), ProcessId::new(1), Round::new(3))
        .delay(Round::new(2), ProcessId::new(1), ProcessId::new(0), Round::new(4))
        .delay(Round::new(2), ProcessId::new(1), ProcessId::new(2), Round::new(4))
        .crash_before_send(ProcessId::new(1), Round::new(3))
        .build(30)
        .unwrap();
    let o1 = run_schedule(&factory(cfg), &proposals, &a1, 30).expect("one proposal per process");
    o1.check_consensus().unwrap();

    // a0: as a1 but without the round-1 false suspicion (p0's message
    // reaches p1 in round 1).
    let a0 = ScheduleBuilder::new(cfg, ModelKind::Es)
        .sync_from(Round::new(3))
        .delay(Round::new(2), ProcessId::new(1), ProcessId::new(0), Round::new(4))
        .delay(Round::new(2), ProcessId::new(1), ProcessId::new(2), Round::new(4))
        .crash_before_send(ProcessId::new(1), Round::new(3))
        .build(30)
        .unwrap();
    let o0 = run_schedule(&factory(cfg), &proposals, &a0, 30).expect("one proposal per process");
    o0.check_consensus().unwrap();

    // For the correct algorithm, both runs settle on a single value each;
    // the paper's contradiction (1 in a1, 0 in a0 *with* survivor
    // indistinguishability) cannot arise because A_{t+2} holds the
    // survivors' decisions until the suspicion pattern is resolved.
    let v1 = o1.decisions.iter().flatten().next().unwrap().value;
    let v0 = o0.decisions.iter().flatten().next().unwrap().value;
    assert!(proposals.contains(&v1));
    assert!(proposals.contains(&v0));
}

/// The footnote-5 feature: crash-round messages may be *delayed* (not just
/// lost) even in synchronous runs of ES. The schedule validator accepts
/// them and the algorithm still decides at `t + 2`.
#[test]
fn crash_round_delay_in_synchronous_run() {
    let cfg = config();
    let schedule = ScheduleBuilder::new(cfg, ModelKind::Es)
        .crash_delaying_to(ProcessId::new(0), Round::new(1), [ProcessId::new(1)], Round::new(5))
        .build(30)
        .unwrap();
    assert!(schedule.is_synchronous());
    let proposals = [Value::ONE, Value::ONE, Value::ZERO];
    let outcome =
        run_schedule(&factory(cfg), &proposals, &schedule, 30).expect("one proposal per process");
    outcome.check_consensus().unwrap();
    assert_eq!(outcome.global_decision_round(), Some(Round::new(3)));
}
