//! Differential conformance of the replicated log across substrates:
//! the threaded runtime's decided log must be value-identical to the
//! deterministic simulator's, slot by slot, on every replayable
//! crash-only scenario — any batch size, any pipeline depth.
//!
//! Crashes are logical per-instance points realized identically by both
//! substrates, so this equality is exact, not statistical. Asynchronous
//! prefixes are inherently wall-clock-dependent (which messages miss the
//! grace window differs between a simulated round and a real one), so
//! chaotic runs are held to the log *invariants* on both substrates
//! instead of cross-substrate equality.

use std::collections::BTreeMap;

use indulgent_log::{
    run_log_session, run_log_sim, AsyncPrefix, ClientFrontend, IntakePolicy, LogConfig, LogReport,
    LogScenario, NetProfile,
};
use indulgent_model::{Round, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::majority(5, 2).unwrap()
}

fn workload(batch: usize, instances: u64, intake: IntakePolicy) -> ClientFrontend {
    let mut f = ClientFrontend::new(5, batch).with_intake(intake);
    f.submit_all(0..instances * batch as u64);
    f
}

fn assert_substrates_agree(
    log_config: LogConfig,
    scenario: &LogScenario,
    intake: IntakePolicy,
    label: &str,
) -> (LogReport, LogReport) {
    let batch = log_config.batch_size;
    let instances = log_config.instances;
    let sim = run_log_sim(cfg(), log_config, scenario.clone(), workload(batch, instances, intake));
    let net = run_log_session(
        cfg(),
        log_config,
        scenario.clone(),
        workload(batch, instances, intake),
        NetProfile::test_sized(),
    );
    sim.check().unwrap_or_else(|e| panic!("{label}: sim invariants: {e}"));
    net.check().unwrap_or_else(|e| panic!("{label}: net invariants: {e}"));
    assert_eq!(sim.decided_values, net.decided_values, "{label}: decided values diverged");
    assert_eq!(sim.canonical, net.canonical, "{label}: applied logs diverged");
    (sim, net)
}

#[test]
fn failure_free_logs_agree_across_batch_and_depth_matrix() {
    for (batch, depth) in [(1usize, 1u64), (1, 3), (4, 1), (4, 3), (2, 5)] {
        let log_config = LogConfig::sequential(8).with_batch_size(batch).with_pipeline_depth(depth);
        let (sim, _) = assert_substrates_agree(
            log_config,
            &LogScenario::failure_free(5),
            IntakePolicy::Shared,
            &format!("batch={batch} depth={depth}"),
        );
        // Healthy slots decide on the Fig. 4 round-2 fast path.
        for row in &sim.decisions {
            for d in row.iter().flatten() {
                assert_eq!(d.round, Round::new(2), "failure-free slots use the fast path");
            }
        }
        assert_eq!(sim.committed_commands, 8 * batch as u64);
    }
}

#[test]
fn crash_scenarios_agree_at_every_pipeline_depth() {
    // A mid-protocol crash (p1 in slot 2, round 2) plus a from-the-start
    // crash later (p3 from slot 4): exactly the t = 2 budget.
    let scenario =
        LogScenario::failure_free(5).crash(1, 2, Round::new(2)).crash(3, 4, Round::FIRST);
    for depth in 1..=4u64 {
        let log_config = LogConfig::sequential(8).with_batch_size(2).with_pipeline_depth(depth);
        let (sim, _) = assert_substrates_agree(
            log_config,
            &scenario,
            IntakePolicy::Shared,
            &format!("crash depth={depth}"),
        );
        // Shared intake: crashes lose no batches, every slot commits.
        assert_eq!(sim.committed_commands, 16, "depth {depth}");
        assert!(sim.decided_values.iter().all(Option::is_some));
    }
}

#[test]
fn crash_round_sweep_is_pinned_replayably() {
    // Sweep the crash point across (instance, round) for one victim: a
    // replayable family of seeds, every member pinned sim == runtime.
    for instance in 1..=3u64 {
        for round in 1..=3u32 {
            let scenario = LogScenario::failure_free(5).crash(2, instance, Round::new(round));
            let log_config = LogConfig::sequential(6).with_batch_size(1).with_pipeline_depth(2);
            assert_substrates_agree(
                log_config,
                &scenario,
                IntakePolicy::Shared,
                &format!("crash p2@({instance},{round})"),
            );
        }
    }
}

/// Materializes the canonical applied log into a toy KV store (payload
/// `p` means `put key = p % 16, value = p`) — the application-state view
/// of the log that recovery must reproduce exactly.
fn materialize(report: &LogReport) -> BTreeMap<u64, u64> {
    let mut store = BTreeMap::new();
    for id in report.canonical.applied_batches() {
        let batch = report.frontend.batch(id).expect("applied batches are registered");
        for cmd in &batch.commands {
            store.insert(cmd.payload % 16, cmd.payload);
        }
    }
    store
}

#[test]
fn crash_recovery_scenarios_agree_at_every_pipeline_depth() {
    // p1 is down from (2, round 2) until instance 4 and crashes AGAIN at
    // (6, round 1) — a double crash; p3 crashes permanently at slot 5.
    // Three crash events: more than a crash-only scenario could spend,
    // legal here because the outages never overlap past the t = 2 budget.
    let scenario = LogScenario::failure_free(5)
        .crash_recover(1, 2, Round::new(2), 4)
        .crash_recover(1, 6, Round::new(1), 7)
        .crash(3, 5, Round::FIRST);
    for depth in 1..=3u64 {
        let log_config = LogConfig::sequential(8).with_batch_size(2).with_pipeline_depth(depth);
        let (sim, net) = assert_substrates_agree(
            log_config,
            &scenario,
            IntakePolicy::Shared,
            &format!("crash-recover depth={depth}"),
        );
        // The recovered state machine, not just the log: both substrates
        // materialize the identical post-recovery KV store.
        assert_eq!(materialize(&sim), materialize(&net), "post-recovery KV state diverged");
        assert_eq!(sim.outages, net.outages, "reports carry the same outage schedule");
        assert_eq!(sim.committed_commands, 16, "depth {depth}");
        assert!(sim.decided_values.iter().all(Option::is_some));
    }
}

#[test]
fn recovery_point_sweep_is_pinned_replayably() {
    // Sweep one victim's outage window across (crash instance, recovery
    // gap): a replayable family of crash-recovery seeds, every member
    // pinned sim == runtime down to the materialized store.
    for crash_at in 1..=3u64 {
        for gap in 1..=2u64 {
            let scenario = LogScenario::failure_free(5).crash_recover(
                2,
                crash_at,
                Round::new(2),
                crash_at + gap,
            );
            let log_config = LogConfig::sequential(6).with_batch_size(1).with_pipeline_depth(2);
            let (sim, net) = assert_substrates_agree(
                log_config,
                &scenario,
                IntakePolicy::Shared,
                &format!("recover p2@({crash_at},+{gap})"),
            );
            assert_eq!(materialize(&sim), materialize(&net));
        }
    }
}

#[test]
fn round_robin_contention_agrees_across_substrates() {
    // Multi-proposer intake (per-replica queues) under a crash: the
    // decided slot sequence — including which proposals lose and get
    // re-proposed — must be identical on both substrates.
    let scenario = LogScenario::failure_free(5).crash(4, 2, Round::new(1));
    for depth in [1u64, 3] {
        let log_config = LogConfig::sequential(8).with_batch_size(1).with_pipeline_depth(depth);
        assert_substrates_agree(
            log_config,
            &scenario,
            IntakePolicy::RoundRobin,
            &format!("round-robin depth={depth}"),
        );
    }
}

#[test]
fn async_prefix_holds_invariants_on_both_substrates() {
    // Wall-clock suspicions are substrate-specific; both substrates must
    // nevertheless keep every correct replica on one identical log.
    let scenario =
        LogScenario::failure_free(5).crash(0, 3, Round::new(2)).with_asynchrony(AsyncPrefix {
            until_instance: 4,
            sync_from: 5,
            probability: 0.35,
            seed: 23,
        });
    let log_config = LogConfig::sequential(7).with_batch_size(2).with_pipeline_depth(2);
    let sim =
        run_log_sim(cfg(), log_config, scenario.clone(), workload(2, 7, IntakePolicy::Shared));
    let net = run_log_session(
        cfg(),
        log_config,
        scenario,
        workload(2, 7, IntakePolicy::Shared),
        NetProfile::test_sized(),
    );
    sim.check().unwrap();
    net.check().unwrap();
}
