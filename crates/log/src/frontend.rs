//! The client frontend: command intake, batching, and batch dissemination.
//!
//! Clients submit [`Command`]s one at a time; the frontend groups them
//! into fixed-size [`Batch`]es and assigns each sealed batch a *home
//! replica* (round-robin) — the replica that will propose it for log
//! slots until it is chosen. Batch ids are monotonic, so the id order is
//! the submission order and min-estimate consensus naturally prefers the
//! oldest outstanding batch.
//!
//! The frontend also plays the role of the *dissemination layer*: batch
//! content is recorded in an in-process registry keyed by [`BatchId`],
//! while only the id travels through consensus. Real deployments ship the
//! payload on a separate dissemination path and sequence cheap references
//! through agreement (the design generalized-consensus systems use to
//! keep the ordering path thin); an in-process registry is the honest
//! single-machine reduction of that split — consensus *validity*
//! guarantees every decided id was proposed by some replica, hence was
//! registered here first.

use std::collections::VecDeque;

use indulgent_model::{Batch, BatchId, Command, CommandId};

/// How sealed batches are distributed to proposer queues.
///
/// The intake policy models where clients connect:
///
/// * `RoundRobin` — clients spread across replicas; batches contend for
///   slots (a losing proposal is re-proposed once its slot settles).
///   Richest behavior for chaos testing, but a fixed instance budget may
///   leave late batches uncommitted.
/// * `Leader(r)` — all clients talk to replica `r`, which proposes
///   batches in id order; other replicas propose no-ops. One batch
///   commits per slot, zero contention.
/// * `Shared` — clients broadcast to every replica (every queue holds
///   every batch), so all replicas propose the *same* batch for the same
///   slot. Zero contention, and no batch is stranded when its proposer
///   crashes; majority-selection algorithms such as `A_{f+2}` need this
///   mode to commit real work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntakePolicy {
    /// Home replica `batch_id % n`.
    RoundRobin,
    /// All batches home at one replica.
    Leader(usize),
    /// Every replica queues every batch.
    Shared,
}

/// Command intake and batch dissemination for one log workload.
#[derive(Debug, Clone)]
pub struct ClientFrontend {
    n: usize,
    batch_size: usize,
    intake: IntakePolicy,
    open: Vec<Command>,
    next_batch: u64,
    next_command: u64,
    /// Sealed batches, dense from `first_batch`:
    /// `batches[i].id == BatchId(first_batch + i)`.
    batches: Vec<Batch>,
    /// Outstanding batch ids per home replica, oldest first.
    queues: Vec<VecDeque<BatchId>>,
    /// Live-intake cursor: sealed batches below this id have been handed
    /// out via [`ClientFrontend::pop_sealed`].
    sealed_cursor: u64,
    /// First batch id this frontend may mint (nonzero when resuming a
    /// recovered incarnation: ids below it are burned, never reusable).
    first_batch: u64,
}

impl ClientFrontend {
    /// Creates a frontend for `n` replicas sealing batches of
    /// `batch_size` commands, with round-robin intake.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn new(n: usize, batch_size: usize) -> Self {
        Self::resume_from(n, batch_size, 0)
    }

    /// Creates a frontend resuming a recovered incarnation: batch ids
    /// start at `first_batch` (the durable high-water mark), so a batch
    /// id can never be minted — or handed out by
    /// [`pop_sealed`](ClientFrontend::pop_sealed) — twice across a
    /// crash/restart, even though the in-memory registry is rebuilt from
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn resume_from(n: usize, batch_size: usize, first_batch: u64) -> Self {
        assert!(batch_size > 0, "batches hold at least one command");
        ClientFrontend {
            n,
            batch_size,
            intake: IntakePolicy::RoundRobin,
            open: Vec::with_capacity(batch_size),
            next_batch: first_batch,
            next_command: 0,
            batches: Vec::new(),
            queues: vec![VecDeque::new(); n],
            sealed_cursor: first_batch,
            first_batch,
        }
    }

    /// Sets the intake policy. Must be called before submitting commands.
    ///
    /// # Panics
    ///
    /// Panics if batches were already sealed, or if a `Leader` index is
    /// out of range.
    #[must_use]
    pub fn with_intake(mut self, intake: IntakePolicy) -> Self {
        assert_eq!(
            self.next_batch, self.first_batch,
            "intake policy must be set before submission"
        );
        if let IntakePolicy::Leader(l) = intake {
            assert!(l < self.n, "leader index out of range");
        }
        self.intake = intake;
        self
    }

    /// Submits one command; returns its id. Seals the open batch when it
    /// reaches the batch size.
    pub fn submit(&mut self, payload: u64) -> CommandId {
        let id = CommandId(self.next_command);
        self.next_command += 1;
        self.open.push(Command { id, payload });
        if self.open.len() == self.batch_size {
            self.seal();
        }
        id
    }

    /// Submits a whole workload and seals any trailing partial batch.
    pub fn submit_all<I: IntoIterator<Item = u64>>(&mut self, payloads: I) {
        for p in payloads {
            self.submit(p);
        }
        self.flush();
    }

    /// Seals the open batch even if it is not full (no-op when empty).
    pub fn flush(&mut self) {
        if !self.open.is_empty() {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let id = BatchId(self.next_batch);
        self.next_batch += 1;
        let commands = std::mem::take(&mut self.open);
        self.open = Vec::with_capacity(self.batch_size);
        match self.intake {
            IntakePolicy::RoundRobin => {
                self.queues[(id.0 % self.n as u64) as usize].push_back(id);
            }
            IntakePolicy::Leader(l) => self.queues[l].push_back(id),
            IntakePolicy::Shared => {
                for q in &mut self.queues {
                    q.push_back(id);
                }
            }
        }
        self.batches.push(Batch { id, commands });
    }

    /// Number of replicas this frontend feeds.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total commands submitted.
    #[must_use]
    pub fn commands_submitted(&self) -> u64 {
        self.next_command
    }

    /// Total batches sealed by this incarnation.
    #[must_use]
    pub fn batches_sealed(&self) -> u64 {
        self.next_batch - self.first_batch
    }

    /// The content of a sealed batch (the dissemination-layer lookup).
    #[must_use]
    pub fn batch(&self, id: BatchId) -> Option<&Batch> {
        self.batches.get(usize::try_from(id.0.checked_sub(self.first_batch)?).ok()?)
    }

    /// The next batch id this frontend will mint — the high-water mark a
    /// durability layer persists so a recovered incarnation resumes past
    /// every id this one may have sealed.
    #[must_use]
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch
    }

    /// The outstanding batch ids per home replica, oldest first — the
    /// proposal queues the log driver starts from.
    #[must_use]
    pub fn take_queues(&mut self) -> Vec<VecDeque<BatchId>> {
        std::mem::replace(&mut self.queues, vec![VecDeque::new(); self.n])
    }

    /// Commands in the open (not yet sealed) batch.
    ///
    /// A live service uses this with [`flush`](ClientFrontend::flush) to
    /// seal a lingering partial batch instead of waiting for it to fill.
    #[must_use]
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Live-intake cursor: hands out the oldest sealed batch not yet
    /// popped, or `None` when intake has caught up with sealing.
    ///
    /// This is the intake path of a *service* with one in-process
    /// sequencer (the `indulgent-server` engine): batches are proposed in
    /// seal order as they become available, independent of the per-replica
    /// policy queues a [`LogDriver`](crate::LogDriver) workload starts
    /// from. The cursor never hands a batch out twice, which is what makes
    /// the engine's shared proposals double-choose-free by construction.
    pub fn pop_sealed(&mut self) -> Option<BatchId> {
        if self.sealed_cursor < self.next_batch {
            let id = BatchId(self.sealed_cursor);
            self.sealed_cursor += 1;
            Some(id)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_seals_at_size_and_assigns_homes_round_robin() {
        let mut f = ClientFrontend::new(3, 2);
        f.submit_all(0..10);
        assert_eq!(f.commands_submitted(), 10);
        assert_eq!(f.batches_sealed(), 5); // 10 commands / size 2
        let queues = f.take_queues();
        // Batch b -> home b % 3.
        assert_eq!(queues[0].iter().copied().collect::<Vec<_>>(), [BatchId(0), BatchId(3)]);
        assert_eq!(queues[1].iter().copied().collect::<Vec<_>>(), [BatchId(1), BatchId(4)]);
        assert_eq!(queues[2].iter().copied().collect::<Vec<_>>(), [BatchId(2)]);
    }

    #[test]
    fn flush_seals_partial_batches() {
        let mut f = ClientFrontend::new(2, 4);
        f.submit(7);
        assert_eq!(f.batches_sealed(), 0);
        f.flush();
        assert_eq!(f.batches_sealed(), 1);
        let b = f.batch(BatchId(0)).unwrap();
        assert_eq!(b.commands.len(), 1);
        assert_eq!(b.commands[0].payload, 7);
        // Double flush is a no-op.
        f.flush();
        assert_eq!(f.batches_sealed(), 1);
    }

    #[test]
    fn live_intake_cursor_tracks_sealing() {
        let mut f = ClientFrontend::new(2, 2).with_intake(IntakePolicy::Shared);
        assert_eq!(f.pop_sealed(), None);
        f.submit(1);
        assert_eq!(f.open_len(), 1);
        assert_eq!(f.pop_sealed(), None, "open batches are not handed out");
        f.submit(2); // seals batch 0
        assert_eq!(f.open_len(), 0);
        assert_eq!(f.pop_sealed(), Some(BatchId(0)));
        assert_eq!(f.pop_sealed(), None, "a batch pops exactly once");
        f.submit(3);
        f.flush(); // seals the partial batch 1
        assert_eq!(f.pop_sealed(), Some(BatchId(1)));
        assert_eq!(f.pop_sealed(), None);
    }

    #[test]
    fn linger_sealed_partial_batches_pop_in_order() {
        // A live service seals partial batches via flush (the linger
        // timer); the cursor must interleave full and partial seals in
        // seal order without skipping or repeating.
        let mut f = ClientFrontend::new(3, 3).with_intake(IntakePolicy::Shared);
        f.submit(1);
        f.flush(); // partial batch 0 (1 command)
        f.submit(2);
        f.submit(3);
        f.submit(4); // full batch 1
        f.submit(5);
        f.flush(); // partial batch 2
        assert_eq!(f.pop_sealed(), Some(BatchId(0)));
        assert_eq!(f.batch(BatchId(0)).unwrap().commands.len(), 1);
        assert_eq!(f.pop_sealed(), Some(BatchId(1)));
        assert_eq!(f.batch(BatchId(1)).unwrap().commands.len(), 3);
        assert_eq!(f.pop_sealed(), Some(BatchId(2)));
        assert_eq!(f.pop_sealed(), None);
        assert_eq!(f.open_len(), 0);
    }

    #[test]
    fn cursor_never_hands_a_batch_out_twice_across_rehydration() {
        // First incarnation: seal and hand out batches 0..3.
        let mut f = ClientFrontend::new(3, 2).with_intake(IntakePolicy::Shared);
        f.submit_all(0..6);
        let mut handed = Vec::new();
        while let Some(b) = f.pop_sealed() {
            handed.push(b);
        }
        assert_eq!(handed, [BatchId(0), BatchId(1), BatchId(2)]);
        let high_water = f.next_batch_id();
        drop(f); // the crash: in-memory registry is gone

        // Recovered incarnation resumes past the durable high-water mark.
        let mut f = ClientFrontend::resume_from(3, 2, high_water).with_intake(IntakePolicy::Shared);
        assert_eq!(f.pop_sealed(), None, "nothing sealed yet in this incarnation");
        f.submit_all(0..4);
        let mut rehanded = Vec::new();
        while let Some(b) = f.pop_sealed() {
            rehanded.push(b);
        }
        assert_eq!(rehanded, [BatchId(3), BatchId(4)], "old ids are burned, never re-handed");
        assert!(handed.iter().all(|b| !rehanded.contains(b)));
        // The registry indexes the resumed ids correctly.
        assert_eq!(f.batch(BatchId(3)).unwrap().commands.len(), 2);
        assert!(f.batch(BatchId(0)).is_none(), "pre-crash content is not claimed");
        assert_eq!(f.batches_sealed(), 2);
    }

    #[test]
    fn command_ids_are_dense_and_unique() {
        let mut f = ClientFrontend::new(2, 3);
        let ids: Vec<CommandId> = (0..7).map(|p| f.submit(p)).collect();
        f.flush();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0, i as u64);
        }
        // Every command sits in exactly one batch.
        let mut seen = std::collections::HashSet::new();
        for b in 0..f.batches_sealed() {
            for c in &f.batch(BatchId(b)).unwrap().commands {
                assert!(seen.insert(c.id), "{} appears twice", c.id);
            }
        }
        assert_eq!(seen.len(), 7);
    }
}
