//! The simulator substrate: log instances on the deterministic
//! [`MultiShotRunner`].
//!
//! Each [`ShotSpec`] is compiled into a validated adversary [`Schedule`]
//! — permanent crashes become `crash_before_send` entries, the
//! asynchronous prefix becomes seeded per-edge message delays within the
//! model's `t`-resilience budget — and executed on one recycled
//! `RunState` via the algorithms' instance-reset hooks. Execution is
//! fully deterministic: the same scenario always yields the same decided
//! log, which is the reference the runtime differential tests pin the
//! threaded [`SessionLogRunner`](crate::SessionLogRunner) against.

use indulgent_model::{
    Decision, ProcessFactory, ProcessId, Round, RoundProcess, RunOutcome, SystemConfig, Value,
};
use indulgent_runtime::edge_coin;
use indulgent_sim::{ModelKind, MultiShotRunner, Schedule, ScheduleBuilder};

use crate::driver::{InstanceRunner, ShotSpec};

/// Deterministic log substrate over the simulator's multi-shot executor.
#[derive(Debug)]
pub struct SimLogRunner<P, F, Rst>
where
    P: RoundProcess,
{
    config: SystemConfig,
    runner: MultiShotRunner<P>,
    factory: F,
    reset: Rst,
    outcomes: Vec<RunOutcome>,
}

impl<P, F, Rst> SimLogRunner<P, F, Rst>
where
    P: RoundProcess,
    F: ProcessFactory<Process = P>,
    Rst: FnMut(usize, &mut P, Value),
{
    /// Creates the substrate: `factory` builds the automatons once,
    /// `reset` re-fits them per instance (the core `reset_instance`
    /// hooks).
    #[must_use]
    pub fn new(config: SystemConfig, factory: F, reset: Rst) -> Self {
        SimLogRunner {
            config,
            runner: MultiShotRunner::new(config.n()),
            factory,
            reset,
            outcomes: Vec::new(),
        }
    }

    /// The per-instance outcomes executed so far.
    #[must_use]
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }
}

impl<P, F, Rst> InstanceRunner for SimLogRunner<P, F, Rst>
where
    P: RoundProcess,
    F: ProcessFactory<Process = P>,
    Rst: FnMut(usize, &mut P, Value),
{
    fn start(&mut self, instance: u64, proposals: &[Value], spec: &ShotSpec) {
        debug_assert_eq!(instance, self.outcomes.len() as u64 + 1, "instances start in order");
        let schedule = compile_schedule(self.config, spec);
        let outcome = self
            .runner
            .run_instance(&self.factory, &mut self.reset, proposals, &schedule, spec.max_rounds)
            .expect("one proposal per replica");
        self.outcomes.push(outcome);
    }

    fn wait_decided(&mut self, instance: u64) -> Option<Decision> {
        self.outcomes[(instance - 1) as usize].decisions.iter().flatten().next().copied()
    }

    fn finish(self) -> Vec<Vec<Option<Decision>>> {
        self.outcomes.into_iter().map(|o| o.decisions).collect()
    }
}

/// Compiles a substrate-neutral [`ShotSpec`] into a validated simulator
/// [`Schedule`].
///
/// Crash rounds map 1:1 onto `crash_before_send`. The asynchronous prefix
/// delays, per round `k < sync_from` and per receiver, a seeded subset of
/// the senders' messages to arrive at the synchrony round — capped at the
/// round's remaining `t`-resilience budget (`t` minus the replicas
/// already crashed), and never involving a crashing replica, so the
/// schedule always validates.
#[must_use]
pub fn compile_schedule(config: SystemConfig, spec: &ShotSpec) -> Schedule {
    let mut builder = ScheduleBuilder::new(config, ModelKind::Es);
    for (r, crash) in spec.crashes.iter().enumerate() {
        if let Some(round) = crash {
            builder = builder.crash_before_send(ProcessId::new(r), *round);
        }
    }
    if let Some(chaos) = spec.asynchrony {
        builder = builder.sync_from(Round::new(chaos.sync_from));
        let arrival = Round::new(chaos.sync_from);
        for k in 1..chaos.sync_from {
            let crashed_by_k =
                spec.crashes.iter().filter(|c| c.is_some_and(|r| r.get() <= k)).count();
            // Per-receiver delay budget of round k: the receiver must
            // still get `n - t` on-time messages alongside the round's
            // crashed senders.
            let budget = config.t().saturating_sub(crashed_by_k);
            if budget == 0 {
                continue;
            }
            for receiver in config.processes() {
                if spec.crashes[receiver.index()].is_some() {
                    continue;
                }
                let mut delayed = 0usize;
                for sender in config.processes() {
                    if sender == receiver || spec.crashes[sender.index()].is_some() {
                        continue;
                    }
                    if delayed >= budget {
                        break;
                    }
                    if edge_coin(chaos.seed, k, sender, receiver) < chaos.probability {
                        builder = builder.delay(Round::new(k), sender, receiver, arrival);
                        delayed += 1;
                    }
                }
            }
        }
    }
    builder.build(spec.max_rounds).expect("compiled log schedules respect the model constraints")
}

#[cfg(test)]
mod tests {
    use crate::driver::ShotAsync;

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    #[test]
    fn crash_only_specs_compile_to_valid_schedules() {
        let spec = ShotSpec {
            crashes: vec![None, Some(Round::new(2)), None, Some(Round::FIRST), None],
            asynchrony: None,
            max_rounds: 30,
        };
        let schedule = compile_schedule(cfg(), &spec);
        assert!(schedule.faulty().contains(ProcessId::new(1)));
        assert!(schedule.faulty().contains(ProcessId::new(3)));
    }

    #[test]
    fn chaotic_specs_compile_within_the_resilience_budget() {
        for seed in 0..50u64 {
            let spec = ShotSpec {
                crashes: vec![None, None, None, None, Some(Round::new(2))],
                asynchrony: Some(ShotAsync { sync_from: 5, probability: 0.6, seed }),
                max_rounds: 40,
            };
            // `compile_schedule` expects validation to succeed; a budget
            // bug would panic here.
            let _ = compile_schedule(cfg(), &spec);
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let spec = ShotSpec {
            crashes: vec![None; 5],
            asynchrony: Some(ShotAsync { sync_from: 4, probability: 0.5, seed: 11 }),
            max_rounds: 40,
        };
        let a = compile_schedule(cfg(), &spec);
        let b = compile_schedule(cfg(), &spec);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
