//! The pipelined instance driver: the policy layer of the replicated log.
//!
//! The driver owns everything substrate-independent: which batch each
//! replica proposes for which slot, when the next instance may start
//! (the bounded in-flight window), and how decided values are applied to
//! the log. Execution itself goes through the [`InstanceRunner`] trait,
//! implemented by the deterministic simulator
//! ([`SimLogRunner`](crate::SimLogRunner)) and the threaded runtime
//! ([`SessionLogRunner`](crate::SessionLogRunner)) — one policy, two
//! substrates, differentially comparable executions.
//!
//! # The proposal policy, and why it is deterministic
//!
//! With pipeline depth `W`, instance `j` starts once the decision of
//! instance `j - W` is known; its proposals may therefore rely on the
//! decided values of instances `≤ j - W` only. Decisions of the
//! still-pending instances `j - W + 1 .. j - 1` may well be known already
//! on a fast substrate — the driver *deliberately ignores them*:
//! determinism over opportunism. Replica `r` proposes its oldest
//! outstanding batch that is neither chosen by a settled instance nor
//! tentatively proposed by `r` for a pending instance. Because a batch
//! has exactly one home replica, this exclusion makes double-choosing a
//! batch impossible: a chosen batch is either settled (removed from its
//! queue) or pending (excluded by its home), so every slot applies a
//! fresh batch — the apply-time [`DecidedLog`] deduplication exists as a
//! defense-in-depth safety net, and the invariant checker asserts it
//! never fires.
//!
//! # Crash, recovery, and asynchrony scenarios
//!
//! A [`LogScenario`] holds per-replica [`Outage`] intervals over the
//! *logical* timeline: an outage silences a replica from a `(instance,
//! round)` point — from that round of that instance on, and from round 1
//! of every later covered instance — until it recovers at
//! `until_instance` (or forever, the crash-stop special case). Because
//! both substrates run each instance with fresh per-instance automatons,
//! recovery is free: the replica simply participates again from the
//! recovery instance on, with no in-instance state to restore. Both
//! substrates realize exactly this per-instance outage pattern, which is
//! what keeps crash *and recovery* chaos deterministically comparable
//! between them at any pipeline depth. An asynchronous prefix adds
//! seeded message delays (and the false suspicions they cause) to the
//! early instances; those runs are validated by the log invariants
//! rather than cross-substrate equality, since wall-clock suspicion
//! timing is inherently substrate-specific.
//!
//! The fault budget is per-*instance*, not per-run: at every instance at
//! most `t` replicas may be down simultaneously, but across the run the
//! total number of crash events may exceed `t` — the crash-recovery
//! model of the wider indulgent literature, where `A_{t+2}`'s safety
//! only ever needs a majority up per decision.

use std::collections::{BTreeMap, HashSet, VecDeque};

use indulgent_model::{
    AppliedEntry, BatchId, Decision, LogIndex, ProcessSet, Round, SystemConfig, Value,
};

use crate::frontend::ClientFrontend;

/// The `log_driver` metric family: what this process's log runs decided
/// and applied, summed across every [`LogDriver::run`]. Slot-level
/// tallies (noops, apply-time duplicates) surface here so a registry
/// dump shows whether the proposal policy is holding up without waiting
/// for the invariant suite.
#[derive(Debug)]
struct DriverMetrics {
    runs_completed: indulgent_obs::Counter,
    instances_run: indulgent_obs::Counter,
    slots_applied: indulgent_obs::Counter,
    committed_commands: indulgent_obs::Counter,
    noop_slots: indulgent_obs::Counter,
    duplicate_slots: indulgent_obs::Counter,
}

static DRIVER_METRICS: DriverMetrics = DriverMetrics {
    runs_completed: indulgent_obs::Counter::new(),
    instances_run: indulgent_obs::Counter::new(),
    slots_applied: indulgent_obs::Counter::new(),
    committed_commands: indulgent_obs::Counter::new(),
    noop_slots: indulgent_obs::Counter::new(),
    duplicate_slots: indulgent_obs::Counter::new(),
};

impl indulgent_obs::MetricFamily for DriverMetrics {
    fn name(&self) -> &'static str {
        "log_driver"
    }

    fn emit(&self, sink: &mut dyn indulgent_obs::MetricSink) {
        sink.counter("runs_completed", self.runs_completed.get());
        sink.counter("instances_run", self.instances_run.get());
        sink.counter("slots_applied", self.slots_applied.get());
        sink.counter("committed_commands", self.committed_commands.get());
        sink.counter("noop_slots", self.noop_slots.get());
        sink.counter("duplicate_slots", self.duplicate_slots.get());
    }
}

static REGISTER_DRIVER_METRICS: std::sync::Once = std::sync::Once::new();

fn driver_metrics() -> &'static DriverMetrics {
    REGISTER_DRIVER_METRICS.call_once(|| indulgent_obs::register_family(&DRIVER_METRICS));
    &DRIVER_METRICS
}

/// Sizing of a log run: how much work, how wide the batches, how deep the
/// pipeline.
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Number of consensus instances (log slots) to run.
    pub instances: u64,
    /// Commands per sealed batch.
    pub batch_size: usize,
    /// Bounded in-flight window `W ≥ 1`: instance `j` starts once the
    /// decision of `j - W` is known (`W = 1` is strictly sequential).
    pub pipeline_depth: u64,
    /// Per-instance round budget handed to the substrate.
    pub max_rounds: u32,
}

impl LogConfig {
    /// A sequential, unbatched baseline configuration.
    #[must_use]
    pub fn sequential(instances: u64) -> Self {
        LogConfig { instances, batch_size: 1, pipeline_depth: 1, max_rounds: 60 }
    }

    /// Sets the batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: u64) -> Self {
        assert!(depth >= 1, "pipeline depth is at least 1");
        self.pipeline_depth = depth;
        self
    }
}

/// One logical down interval of a replica: crashed at `(from_instance,
/// from_round)`, recovered (participating again) from `until_instance`
/// on — or never, the crash-stop special case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The instance in which the replica goes down.
    pub from_instance: u64,
    /// The round of `from_instance` from which it is silent.
    pub from_round: Round,
    /// First instance the replica participates in again; `None` = the
    /// outage is permanent (crash-stop).
    pub until_instance: Option<u64>,
}

impl Outage {
    /// The round from which this outage silences the replica in
    /// `instance`, if the outage covers it: the crash round in the crash
    /// instance, round 1 in every later covered instance.
    #[must_use]
    pub fn covers(&self, instance: u64) -> Option<Round> {
        if instance == self.from_instance {
            Some(self.from_round)
        } else if instance > self.from_instance
            && self.until_instance.is_none_or(|until| instance < until)
        {
            Some(Round::FIRST)
        } else {
            None
        }
    }
}

/// Chaos injected into a log run.
#[derive(Debug, Clone, Default)]
pub struct LogScenario {
    /// Per-replica outage intervals (multiple = the replica crashes,
    /// recovers, and crashes again).
    pub outages: Vec<Vec<Outage>>,
    /// Asynchronous prefix over the early instances.
    pub asynchrony: Option<AsyncPrefix>,
}

impl LogScenario {
    /// A failure-free scenario for `n` replicas.
    #[must_use]
    pub fn failure_free(n: usize) -> Self {
        LogScenario { outages: vec![Vec::new(); n], asynchrony: None }
    }

    /// Crashes `replica` permanently at `(instance, round)`.
    #[must_use]
    pub fn crash(mut self, replica: usize, instance: u64, round: Round) -> Self {
        self.outages[replica].push(Outage {
            from_instance: instance,
            from_round: round,
            until_instance: None,
        });
        self
    }

    /// Crashes `replica` at `(instance, round)` and recovers it at
    /// `recover_instance` (it participates in `recover_instance` and
    /// later instances again). Chain multiple calls per replica for
    /// repeated crash/recover cycles.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or overlaps an existing outage of
    /// the same replica.
    #[must_use]
    pub fn crash_recover(
        mut self,
        replica: usize,
        instance: u64,
        round: Round,
        recover_instance: u64,
    ) -> Self {
        assert!(recover_instance > instance, "recovery happens after the crash");
        let outage = Outage {
            from_instance: instance,
            from_round: round,
            until_instance: Some(recover_instance),
        };
        for existing in &self.outages[replica] {
            for j in instance..recover_instance {
                assert!(
                    existing.covers(j).is_none(),
                    "outage intervals of replica {replica} overlap at instance {j}"
                );
            }
        }
        self.outages[replica].push(outage);
        self
    }

    /// Adds an asynchronous prefix.
    #[must_use]
    pub fn with_asynchrony(mut self, prefix: AsyncPrefix) -> Self {
        self.asynchrony = Some(prefix);
        self
    }

    /// The round from which `replica` is silent in `instance`, if any
    /// outage covers it.
    #[must_use]
    pub fn down_round(&self, replica: usize, instance: u64) -> Option<Round> {
        self.outages[replica].iter().find_map(|o| o.covers(instance))
    }

    /// How many replicas are down (covered by an outage) at `instance`.
    #[must_use]
    pub fn down_at(&self, instance: u64) -> usize {
        (0..self.outages.len()).filter(|&r| self.down_round(r, instance).is_some()).count()
    }

    /// The set of replicas this scenario ever crashes (including ones
    /// that recover).
    #[must_use]
    pub fn crashed_set(&self) -> ProcessSet {
        self.outages
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.is_empty())
            .map(|(i, _)| indulgent_model::ProcessId::new(i))
            .collect()
    }

    /// Number of replicas this scenario ever crashes.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.outages.iter().filter(|o| !o.is_empty()).count()
    }
}

/// An asynchronous prefix: instances `1 .. until_instance` run with
/// seeded message delays causing false suspicions.
#[derive(Debug, Clone, Copy)]
pub struct AsyncPrefix {
    /// First instance free of injected delays.
    pub until_instance: u64,
    /// Within an affected instance, rounds `< sync_from` may delay
    /// messages; the instance is synchronous from `sync_from` on.
    pub sync_from: u32,
    /// Per-message delay probability in `[0, 1]`.
    pub probability: f64,
    /// Determinism seed (mixed with the instance number per instance).
    pub seed: u64,
}

/// Substrate-neutral description of one instance's adversary, derived by
/// the driver from the [`LogScenario`].
#[derive(Debug, Clone)]
pub struct ShotSpec {
    /// Crash round per replica for this instance (`Round::FIRST` =
    /// crashed from the start).
    pub crashes: Vec<Option<Round>>,
    /// Injected asynchrony for this instance, if any.
    pub asynchrony: Option<ShotAsync>,
    /// Round budget.
    pub max_rounds: u32,
}

/// Per-instance asynchrony parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShotAsync {
    /// The instance is synchronous from this round on.
    pub sync_from: u32,
    /// Per-message delay probability.
    pub probability: f64,
    /// Instance-specific seed.
    pub seed: u64,
}

/// One consensus substrate driving log instances — the single trait both
/// the deterministic simulator and the threaded runtime implement.
///
/// Instances are started in id order (`1, 2, …`), possibly several in
/// flight at once (the driver's pipeline window). `wait_decided` may be
/// called for any started instance; `finish` completes everything and
/// returns the full per-replica decision matrix.
pub trait InstanceRunner {
    /// Starts instance `instance` with one proposal per replica under the
    /// given adversary.
    fn start(&mut self, instance: u64, proposals: &[Value], spec: &ShotSpec);

    /// Blocks until some replica's decision for `instance` is known;
    /// `None` if every replica reported without deciding (all crashed or
    /// out of budget).
    fn wait_decided(&mut self, instance: u64) -> Option<Decision>;

    /// Completes all started instances: element `i` holds instance
    /// `i + 1`'s first decision per replica (index = replica id).
    fn finish(self) -> Vec<Vec<Option<Decision>>>;
}

/// A replica's applied log: one [`AppliedEntry`] per decided slot, with
/// apply-time deduplication.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecidedLog {
    entries: Vec<AppliedEntry>,
    applied: HashSet<BatchId>,
    truncated: u64,
}

impl DecidedLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the decided batch id of the next slot and returns the
    /// entry recorded: `Applied` for a fresh batch, `Noop` for the
    /// reserved no-op, `Duplicate` for an id already applied.
    pub fn apply(&mut self, decided: BatchId) -> AppliedEntry {
        let entry = if decided.is_noop() {
            AppliedEntry::Noop
        } else if self.applied.insert(decided) {
            AppliedEntry::Applied(decided)
        } else {
            AppliedEntry::Duplicate(decided)
        };
        self.entries.push(entry);
        entry
    }

    /// The applied entries, slot order.
    #[must_use]
    pub fn entries(&self) -> &[AppliedEntry] {
        &self.entries
    }

    /// Number of slots applied.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no slot has been applied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `batch` has been applied.
    #[must_use]
    pub fn contains(&self, batch: BatchId) -> bool {
        self.applied.contains(&batch)
    }

    /// Iterates over the applied (fresh) batch ids in slot order.
    pub fn applied_batches(&self) -> impl Iterator<Item = BatchId> + '_ {
        self.entries.iter().filter_map(|e| e.applied())
    }

    /// Drops the oldest `count` entries — a checkpoint has folded them
    /// into a snapshot, so the in-memory log only retains the suffix.
    /// The applied-batch dedup memory is kept in full: a later duplicate
    /// of a truncated batch is still detected.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the retained length.
    pub fn truncate_prefix(&mut self, count: usize) {
        assert!(count <= self.entries.len(), "cannot truncate past the retained suffix");
        self.entries.drain(..count);
        self.truncated += count as u64;
    }

    /// Entries dropped by prefix truncation (the retained suffix starts
    /// at slot offset `truncated`).
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The decided frontier: the highest slot applied so far (truncated
    /// prefix included). A linearizable fast read must reflect at least
    /// this prefix — the frontier is the smallest valid read index.
    #[must_use]
    pub fn frontier(&self) -> LogIndex {
        LogIndex(self.truncated + self.entries.len() as u64)
    }
}

/// Everything a completed log run reports.
#[derive(Debug, Clone)]
pub struct LogReport {
    /// The run's sizing.
    pub config: LogConfig,
    /// Per-instance proposals (index 0 = instance 1), one per replica.
    pub proposals: Vec<Vec<Value>>,
    /// Per-instance, per-replica first decisions.
    pub decisions: Vec<Vec<Option<Decision>>>,
    /// The decided value the driver settled each instance with (first
    /// reported decision), `None` if the slot never decided.
    pub decided_values: Vec<Option<Value>>,
    /// Per-replica applied logs (over each replica's own decisions).
    pub logs: Vec<DecidedLog>,
    /// The driver's canonical applied log (over `decided_values`).
    pub canonical: DecidedLog,
    /// Commands in the canonical log's applied batches — the acknowledged
    /// work of the run.
    pub committed_commands: u64,
    /// Slots that decided the reserved no-op.
    pub noop_slots: u64,
    /// Slots whose decided batch was already applied (policy violation if
    /// nonzero; checked by the invariant suite).
    pub duplicate_slots: u64,
    /// Replicas the scenario ever crashed (including recovered ones).
    pub crashed: ProcessSet,
    /// The scenario's per-replica outage intervals — the invariant
    /// checker holds recovered replicas to their guarantees outside
    /// their outages.
    pub outages: Vec<Vec<Outage>>,
    /// The workload's frontend (batch content lookups for appliers and
    /// the invariant checker).
    pub frontend: ClientFrontend,
}

/// The replicated-log driver: batching frontend + pipelined instance
/// policy over any [`InstanceRunner`].
#[derive(Debug)]
pub struct LogDriver {
    config: SystemConfig,
    log_config: LogConfig,
    scenario: LogScenario,
    frontend: ClientFrontend,
}

impl LogDriver {
    /// Creates a driver for `config.n()` replicas; `frontend` supplies
    /// the batched workload (its queues are taken over by the driver).
    ///
    /// # Panics
    ///
    /// Panics if the scenario's outage vector length differs from `n`,
    /// if more than `t` replicas are down simultaneously at any instance
    /// of the run (the per-instance fault budget — *total* crash events
    /// may exceed `t` when outages recover), or if
    /// `pipeline_depth == 0`.
    #[must_use]
    pub fn new(
        config: SystemConfig,
        log_config: LogConfig,
        scenario: LogScenario,
        frontend: ClientFrontend,
    ) -> Self {
        assert_eq!(scenario.outages.len(), config.n(), "one outage list per replica");
        for j in 1..=log_config.instances {
            assert!(
                scenario.down_at(j) <= config.t(),
                "a scenario may have at most t = {} replicas down at once (instance {j} has {})",
                config.t(),
                scenario.down_at(j)
            );
        }
        assert!(log_config.pipeline_depth >= 1, "pipeline depth is at least 1");
        LogDriver { config, log_config, scenario, frontend }
    }

    /// The adversary of instance `j` under this driver's scenario.
    #[must_use]
    pub fn shot_spec(&self, instance: u64) -> ShotSpec {
        shot_spec(&self.scenario, self.log_config.max_rounds, instance)
    }

    /// Runs the log to completion on `runner` and reports.
    pub fn run<R: InstanceRunner>(mut self, mut runner: R) -> LogReport {
        let n = self.config.n();
        let depth = self.log_config.pipeline_depth;
        let instances = self.log_config.instances;
        let mut queues: Vec<VecDeque<BatchId>> = self.frontend.take_queues();
        // Tentative proposals of the pending (in-flight) instances.
        let mut pending: BTreeMap<u64, Vec<BatchId>> = BTreeMap::new();
        let mut proposals: Vec<Vec<Value>> = Vec::with_capacity(instances as usize);
        let mut decided_values: Vec<Option<Value>> = vec![None; instances as usize];
        let mut canonical = DecidedLog::new();

        let settle = |instance: u64,
                      decision: Option<Decision>,
                      queues: &mut Vec<VecDeque<BatchId>>,
                      pending: &mut BTreeMap<u64, Vec<BatchId>>,
                      decided_values: &mut Vec<Option<Value>>,
                      canonical: &mut DecidedLog| {
            pending.remove(&instance);
            let Some(d) = decision else { return };
            decided_values[(instance - 1) as usize] = Some(d.value);
            let batch = BatchId::from_value(d.value);
            canonical.apply(batch);
            if !batch.is_noop() {
                // Retire the chosen batch from every queue holding it
                // (one under round-robin/leader intake, all under shared).
                for q in queues.iter_mut() {
                    if let Some(pos) = q.iter().position(|&b| b == batch) {
                        q.remove(pos);
                    }
                }
            }
        };

        for j in 1..=instances {
            // The window gate: settle instance j - depth before proposing j.
            if j > depth {
                let i = j - depth;
                let d = runner.wait_decided(i);
                settle(i, d, &mut queues, &mut pending, &mut decided_values, &mut canonical);
            }
            // Proposals: each replica's oldest batch not tentatively
            // proposed for a still-pending instance (settled choices are
            // already gone from the queues).
            let mut tentative = Vec::with_capacity(n);
            let props: Vec<Value> = (0..n)
                .map(|r| {
                    let used = pending.values().map(|ps| ps[r]).collect::<HashSet<_>>();
                    let batch = queues[r]
                        .iter()
                        .copied()
                        .find(|b| !used.contains(b))
                        .unwrap_or(BatchId::NOOP);
                    tentative.push(batch);
                    batch.as_value()
                })
                .collect();
            pending.insert(j, tentative);
            let spec = shot_spec(&self.scenario, self.log_config.max_rounds, j);
            runner.start(j, &props, &spec);
            proposals.push(props);
        }
        // Drain the tail of the window.
        let first_unsettled = instances.saturating_sub(depth - 1).max(1);
        for i in first_unsettled..=instances {
            let d = runner.wait_decided(i);
            settle(i, d, &mut queues, &mut pending, &mut decided_values, &mut canonical);
        }

        let decisions = runner.finish();
        assert_eq!(decisions.len(), instances as usize, "one decision row per instance");

        // Per-replica applied logs over each replica's own decisions.
        let mut logs: Vec<DecidedLog> = vec![DecidedLog::new(); n];
        for row in &decisions {
            for (r, d) in row.iter().enumerate() {
                if let Some(d) = d {
                    logs[r].apply(BatchId::from_value(d.value));
                }
            }
        }

        let committed_commands = canonical
            .applied_batches()
            .map(|b| self.frontend.batch(b).map_or(0, |batch| batch.commands.len() as u64))
            .sum();
        let noop_slots =
            canonical.entries().iter().filter(|e| matches!(e, AppliedEntry::Noop)).count() as u64;
        let duplicate_slots =
            canonical.entries().iter().filter(|e| matches!(e, AppliedEntry::Duplicate(_))).count()
                as u64;

        let metrics = driver_metrics();
        metrics.runs_completed.incr();
        metrics.instances_run.add(instances);
        metrics.slots_applied.add(canonical.len() as u64);
        metrics.committed_commands.add(committed_commands);
        metrics.noop_slots.add(noop_slots);
        metrics.duplicate_slots.add(duplicate_slots);

        LogReport {
            config: self.log_config,
            proposals,
            decisions,
            decided_values,
            logs,
            canonical,
            committed_commands,
            noop_slots,
            duplicate_slots,
            crashed: self.scenario.crashed_set(),
            outages: self.scenario.outages,
            frontend: self.frontend,
        }
    }
}

/// Derives instance `j`'s substrate-neutral adversary from the scenario:
/// outages project to `(crash round in their first instance, round 1 in
/// every later covered instance, absent once recovered)`, the
/// asynchronous prefix to per-instance seeded delays.
fn shot_spec(scenario: &LogScenario, max_rounds: u32, instance: u64) -> ShotSpec {
    let crashes = (0..scenario.outages.len()).map(|r| scenario.down_round(r, instance)).collect();
    let asynchrony = scenario.asynchrony.and_then(|a| {
        (instance < a.until_instance).then_some(ShotAsync {
            sync_from: a.sync_from,
            probability: a.probability,
            seed: a.seed.wrapping_add(instance.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        })
    });
    ShotSpec { crashes, asynchrony, max_rounds }
}

#[cfg(test)]
mod tests {
    use indulgent_model::ProcessId;

    use super::*;

    /// A stub substrate deciding the minimum proposal instantly — enough
    /// to exercise the driver's policy in isolation.
    struct MinRunner {
        n: usize,
        decided: Vec<Value>,
        specs: Vec<ShotSpec>,
    }

    impl InstanceRunner for MinRunner {
        fn start(&mut self, _instance: u64, proposals: &[Value], spec: &ShotSpec) {
            self.decided.push(proposals.iter().copied().min().expect("nonempty"));
            self.specs.push(spec.clone());
        }

        fn wait_decided(&mut self, instance: u64) -> Option<Decision> {
            Some(Decision {
                process: ProcessId::new(0),
                round: Round::new(2),
                value: self.decided[(instance - 1) as usize],
            })
        }

        fn finish(self) -> Vec<Vec<Option<Decision>>> {
            self.decided
                .iter()
                .map(|&v| {
                    (0..self.n)
                        .map(|r| {
                            Some(Decision {
                                process: ProcessId::new(r),
                                round: Round::new(2),
                                value: v,
                            })
                        })
                        .collect()
                })
                .collect()
        }
    }

    fn driver_with(
        instances: u64,
        batch: usize,
        depth: u64,
        commands: u64,
        intake: crate::frontend::IntakePolicy,
    ) -> LogDriver {
        let config = SystemConfig::majority(3, 1).unwrap();
        let mut frontend = ClientFrontend::new(3, batch).with_intake(intake);
        frontend.submit_all(0..commands);
        LogDriver::new(
            config,
            LogConfig::sequential(instances).with_batch_size(batch).with_pipeline_depth(depth),
            LogScenario::failure_free(3),
            frontend,
        )
    }

    fn driver(instances: u64, batch: usize, depth: u64, commands: u64) -> LogDriver {
        driver_with(instances, batch, depth, commands, crate::frontend::IntakePolicy::RoundRobin)
    }

    #[test]
    fn sequential_log_commits_batches_in_id_order() {
        let report = driver(6, 2, 1, 12).run(MinRunner { n: 3, decided: vec![], specs: vec![] });
        // 12 commands / batch 2 = 6 batches; min-first policy = id order.
        let applied: Vec<BatchId> = report.canonical.applied_batches().collect();
        assert_eq!(applied, (0..6).map(BatchId).collect::<Vec<_>>());
        assert_eq!(report.committed_commands, 12);
        assert_eq!(report.noop_slots, 0);
        assert_eq!(report.duplicate_slots, 0);
    }

    #[test]
    fn pipelined_proposals_are_distinct_and_duplicate_free() {
        // Shared intake, depth 4: instances 1-4 start before any decision
        // settles; every replica spreads distinct batches across the
        // window, so all 8 batches commit in id order with no duplicates.
        let report = driver_with(8, 1, 4, 8, crate::frontend::IntakePolicy::Shared)
            .run(MinRunner { n: 3, decided: vec![], specs: vec![] });
        assert_eq!(report.duplicate_slots, 0);
        let applied: Vec<BatchId> = report.canonical.applied_batches().collect();
        assert_eq!(applied, (0..8).map(BatchId).collect::<Vec<_>>());
        assert_eq!(report.committed_commands, 8);
    }

    #[test]
    fn round_robin_contention_never_duplicates() {
        // Round-robin intake with a deep pipeline: losing proposals stay
        // excluded while pending and are re-proposed after settling. A
        // fixed budget may strand late batches (no-ops), but nothing is
        // ever chosen twice and what commits is consistent.
        let report = driver(8, 1, 4, 8).run(MinRunner { n: 3, decided: vec![], specs: vec![] });
        assert_eq!(report.duplicate_slots, 0);
        let applied: HashSet<BatchId> = report.canonical.applied_batches().collect();
        // The oldest batch always wins slot 1; total slots = applied + noops.
        assert!(applied.contains(&BatchId(0)));
        assert_eq!(applied.len() as u64 + report.noop_slots, 8);
        assert_eq!(report.committed_commands, applied.len() as u64);
    }

    #[test]
    fn exhausted_queues_propose_noop() {
        // 2 batches over 5 instances: 3 slots decide the no-op.
        let report = driver(5, 1, 2, 2).run(MinRunner { n: 3, decided: vec![], specs: vec![] });
        assert_eq!(report.noop_slots, 3);
        assert_eq!(report.committed_commands, 2);
    }

    #[test]
    fn shot_specs_project_permanent_crashes() {
        let scenario = LogScenario::failure_free(3).crash(1, 3, Round::new(2));
        let spec2 = shot_spec(&scenario, 60, 2);
        assert_eq!(spec2.crashes[1], None);
        let spec3 = shot_spec(&scenario, 60, 3);
        assert_eq!(spec3.crashes[1], Some(Round::new(2)));
        let spec4 = shot_spec(&scenario, 60, 4);
        assert_eq!(spec4.crashes[1], Some(Round::FIRST));
    }

    #[test]
    fn async_prefix_covers_early_instances_with_distinct_seeds() {
        let scenario = LogScenario::failure_free(3).with_asynchrony(AsyncPrefix {
            until_instance: 3,
            sync_from: 4,
            probability: 0.3,
            seed: 9,
        });
        let s1 = shot_spec(&scenario, 60, 1).asynchrony.expect("chaotic");
        let s2 = shot_spec(&scenario, 60, 2).asynchrony.expect("chaotic");
        assert_ne!(s1.seed, s2.seed);
        assert!(shot_spec(&scenario, 60, 3).asynchrony.is_none());
    }

    #[test]
    #[should_panic(expected = "at most t")]
    fn scenario_crash_budget_is_enforced() {
        let config = SystemConfig::majority(3, 1).unwrap();
        let frontend = ClientFrontend::new(3, 1);
        let scenario =
            LogScenario::failure_free(3).crash(0, 1, Round::FIRST).crash(1, 1, Round::FIRST);
        let _ = LogDriver::new(config, LogConfig::sequential(2), scenario, frontend);
    }

    #[test]
    fn shot_specs_project_recovering_outages() {
        // Down from (2, r3) through instance 3, back at 4; down again
        // from (6, r1) permanently.
        let scenario = LogScenario::failure_free(3).crash_recover(0, 2, Round::new(3), 4).crash(
            0,
            6,
            Round::FIRST,
        );
        assert_eq!(shot_spec(&scenario, 60, 1).crashes[0], None);
        assert_eq!(shot_spec(&scenario, 60, 2).crashes[0], Some(Round::new(3)));
        assert_eq!(shot_spec(&scenario, 60, 3).crashes[0], Some(Round::FIRST));
        assert_eq!(shot_spec(&scenario, 60, 4).crashes[0], None);
        assert_eq!(shot_spec(&scenario, 60, 5).crashes[0], None);
        assert_eq!(shot_spec(&scenario, 60, 7).crashes[0], Some(Round::FIRST));
    }

    #[test]
    fn disjoint_outages_may_exceed_t_in_total() {
        // t = 1, but two different replicas go down at non-overlapping
        // times: 3 crash events, never more than one replica down at
        // once. The per-instance budget accepts this; the old per-run
        // budget could not express it.
        let config = SystemConfig::majority(3, 1).unwrap();
        let frontend = ClientFrontend::new(3, 1);
        let scenario = LogScenario::failure_free(3)
            .crash_recover(0, 1, Round::FIRST, 3)
            .crash_recover(1, 3, Round::new(2), 5)
            .crash_recover(0, 5, Round::FIRST, 7);
        assert_eq!(scenario.crash_count(), 2);
        assert_eq!(scenario.down_at(1), 1);
        assert_eq!(scenario.down_at(4), 1);
        let _ = LogDriver::new(config, LogConfig::sequential(8), scenario, frontend);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_outages_of_one_replica_are_rejected() {
        let _ = LogScenario::failure_free(3).crash_recover(0, 2, Round::FIRST, 5).crash_recover(
            0,
            4,
            Round::FIRST,
            6,
        );
    }

    #[test]
    fn decided_log_prefix_truncation_keeps_dedup_memory() {
        let mut log = DecidedLog::new();
        log.apply(BatchId(0));
        log.apply(BatchId(1));
        log.apply(BatchId(2));
        log.truncate_prefix(2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.truncated(), 2);
        assert!(log.contains(BatchId(0)));
        // A re-decision of a truncated batch is still caught.
        assert!(matches!(log.apply(BatchId(0)), AppliedEntry::Duplicate(_)));
    }

    #[test]
    fn decided_frontier_spans_truncation() {
        let mut log = DecidedLog::new();
        assert_eq!(log.frontier(), LogIndex(0));
        log.apply(BatchId(0));
        log.apply(BatchId(1));
        assert_eq!(log.frontier(), LogIndex(2));
        // Truncation folds the prefix but the frontier keeps counting
        // from slot 1: a read index never moves backwards.
        log.truncate_prefix(2);
        assert_eq!(log.frontier(), LogIndex(2));
        log.apply(BatchId(2));
        assert_eq!(log.frontier(), LogIndex(3));
    }
}
