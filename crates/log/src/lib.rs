//! `indulgent-log` — a multi-shot replicated log chaining indulgent
//! consensus instances into a pipelined, batched agreement service.
//!
//! Everything else in this workspace is single-shot: one instance, one
//! decision. Real deployments build *state-machine replication* out of
//! indulgent consensus: clients submit a stream of commands, commands are
//! grouped into batches, and consensus instance `i` decides which batch
//! occupies log slot `i`. This crate is that layer, and it is where the
//! paper's price structure starts paying rent as throughput:
//!
//! * **`t + 2` only on the slow path.** Each slot runs `A_{t+2}` with the
//!   Fig. 4 failure-free optimization: a clean instance globally decides
//!   at **round 2**, so a healthy log pays two rounds per slot and falls
//!   back to `t + 2` (or the ◇S fallback) only when crashes or
//!   asynchrony actually materialize — the indulgence is hedging, not
//!   overhead.
//! * **Batching** amortizes an instance over `batch_size` commands.
//! * **Pipelining** keeps a bounded window of `W` instances in flight:
//!   instance `j` starts as soon as `j - W` has decided, overlapping
//!   round latencies instead of serializing decision waits.
//!
//! # Architecture
//!
//! * [`ClientFrontend`] — command intake, batch sealing, home-replica
//!   assignment, and the batch-content registry (the dissemination side
//!   channel; consensus sequences batch *ids* only);
//! * [`LogDriver`] — the substrate-independent policy: the deterministic
//!   pipelined proposal rule (see `driver` module docs for why no batch
//!   can ever be chosen twice), window gating, apply + dedup, and the
//!   [`LogReport`];
//! * [`InstanceRunner`] — the single trait both substrates implement:
//!   [`SimLogRunner`] runs instances on the deterministic multi-shot
//!   executor (`indulgent_sim::MultiShotRunner`, recycled `RunState`,
//!   instance-reset hooks), [`SessionLogRunner`] pipelines them over a
//!   reusable threaded [`indulgent_runtime::Session`];
//! * [`LogReport::check`] — the total-order invariant checker: per-slot
//!   agreement and validity, identical applied logs on all correct
//!   replicas, exactly-once acknowledged commands.
//!
//! Crash chaos uses *logical* per-instance outage intervals (crash at an
//! `(instance, round)` point, optionally recover at a later instance —
//! the crash-recovery fault model), realized identically by both
//! substrates, so crash-and-recovery runs (any batch size, any pipeline
//! depth) are differentially comparable value-for-value: the runtime's
//! decided log must equal the simulator's. Asynchronous prefixes inject
//! substrate-appropriate delays (schedule delays in the simulator,
//! wall-clock `AsyncUntil` in the runtime) and are validated by the
//! invariants instead.
//!
//! # Example
//!
//! ```
//! use indulgent_log::{
//!     at_plus2_factory, at_plus2_reset, ClientFrontend, IntakePolicy, LogConfig, LogDriver,
//!     LogScenario, SimLogRunner,
//! };
//! use indulgent_model::SystemConfig;
//!
//! let config = SystemConfig::majority(5, 2)?;
//! let mut frontend = ClientFrontend::new(config.n(), 4).with_intake(IntakePolicy::Shared);
//! frontend.submit_all(0..40); // 40 commands -> 10 batches of 4
//! let driver = LogDriver::new(
//!     config,
//!     LogConfig::sequential(12).with_batch_size(4).with_pipeline_depth(3),
//!     LogScenario::failure_free(config.n()),
//!     frontend,
//! );
//! let report = driver.run(SimLogRunner::new(
//!     config,
//!     at_plus2_factory(config),
//!     at_plus2_reset(),
//! ));
//! report.check()?;
//! assert_eq!(report.committed_commands, 40);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod check;
mod driver;
mod frontend;
mod runner_net;
mod runner_sim;

pub use check::LogViolation;
pub use driver::{
    AsyncPrefix, DecidedLog, InstanceRunner, LogConfig, LogDriver, LogReport, LogScenario, Outage,
    ShotAsync, ShotSpec,
};
pub use frontend::{ClientFrontend, IntakePolicy};
pub use runner_net::{NetProfile, SessionLogRunner};
pub use runner_sim::{compile_schedule, SimLogRunner};

use indulgent_consensus::{AfPlus2, AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, SystemConfig, Value};

/// The log's default slot algorithm: `A_{t+2}` over the rotating
/// coordinator fallback, with the Fig. 4 failure-free round-2 fast path.
pub type AtSlot = AtPlus2<RotatingCoordinator>;

/// Builds the per-replica [`AtSlot`] automaton factory (failure-free
/// optimization enabled — the round-2 fast path is what makes a healthy
/// pipelined log fast).
pub fn at_plus2_factory(
    config: SystemConfig,
) -> impl Fn(usize, Value) -> AtSlot + Clone + Send + Sync {
    move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(config, id, v, RotatingCoordinator::new(config, id))
            .with_failure_free_optimization()
    }
}

/// The [`AtSlot`] instance-reset hook, shared by the simulator's
/// multi-shot executor and the runtime session's recycling pools.
pub fn at_plus2_reset() -> impl Fn(usize, &mut AtSlot, Value) + Clone + Send + Sync {
    |_i, p, v| p.reset_instance(v)
}

/// Builds the per-replica `A_{f+2}` automaton factory (requires
/// `t < n/3`): early decision at `f + 2` — slots pay for the crashes
/// that *happen*, not the crashes tolerated.
pub fn af_plus2_factory(
    config: SystemConfig,
) -> impl Fn(usize, Value) -> AfPlus2 + Clone + Send + Sync {
    move |i: usize, v: Value| AfPlus2::new(config, ProcessId::new(i), v)
}

/// The `A_{f+2}` instance-reset hook (simulator and recycling session).
pub fn af_plus2_reset() -> impl Fn(usize, &mut AfPlus2, Value) + Clone + Send + Sync {
    |_i, p, v| p.reset_instance(v)
}

/// Runs a full log workload on the deterministic simulator substrate
/// with the default `A_{t+2}` slot algorithm.
#[must_use]
pub fn run_log_sim(
    config: SystemConfig,
    log_config: LogConfig,
    scenario: LogScenario,
    frontend: ClientFrontend,
) -> LogReport {
    LogDriver::new(config, log_config, scenario, frontend).run(SimLogRunner::new(
        config,
        at_plus2_factory(config),
        at_plus2_reset(),
    ))
}

/// Runs a full log workload on the threaded session substrate with the
/// default `A_{t+2}` slot algorithm.
#[must_use]
pub fn run_log_session(
    config: SystemConfig,
    log_config: LogConfig,
    scenario: LogScenario,
    frontend: ClientFrontend,
    profile: NetProfile,
) -> LogReport {
    LogDriver::new(config, log_config, scenario, frontend).run(SessionLogRunner::recycling(
        config,
        at_plus2_factory(config),
        at_plus2_reset(),
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use indulgent_model::Round;

    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::majority(5, 2).unwrap()
    }

    fn workload(batch: usize, commands: u64) -> ClientFrontend {
        let mut f = ClientFrontend::new(5, batch);
        f.submit_all(0..commands);
        f
    }

    fn shared_workload(batch: usize, commands: u64) -> ClientFrontend {
        let mut f = ClientFrontend::new(5, batch).with_intake(IntakePolicy::Shared);
        f.submit_all(0..commands);
        f
    }

    #[test]
    fn sim_log_commits_every_batch_failure_free() {
        let report = run_log_sim(
            cfg(),
            LogConfig::sequential(10).with_batch_size(2).with_pipeline_depth(1),
            LogScenario::failure_free(5),
            workload(2, 20),
        );
        report.check().unwrap();
        assert_eq!(report.committed_commands, 20);
        assert_eq!(report.noop_slots, 0);
        // Failure-free instances decide on the round-2 fast path.
        for row in &report.decisions {
            for d in row.iter().flatten() {
                assert_eq!(d.round, Round::new(2));
            }
        }
    }

    #[test]
    fn sim_log_pipelined_commits_every_batch() {
        for depth in [2u64, 4] {
            let report = run_log_sim(
                cfg(),
                LogConfig::sequential(12).with_batch_size(1).with_pipeline_depth(depth),
                LogScenario::failure_free(5),
                shared_workload(1, 12),
            );
            report.check().unwrap();
            assert_eq!(report.committed_commands, 12, "depth {depth}");
            assert_eq!(report.duplicate_slots, 0, "depth {depth}");
        }
    }

    #[test]
    fn sim_log_survives_permanent_crashes() {
        // p1 crashes mid-instance 3, p4 from instance 5: ≤ t = 2 total.
        let scenario =
            LogScenario::failure_free(5).crash(1, 3, Round::new(2)).crash(4, 5, Round::FIRST);
        let report = run_log_sim(
            cfg(),
            LogConfig::sequential(8).with_batch_size(2).with_pipeline_depth(2),
            scenario,
            workload(2, 40),
        );
        report.check().unwrap();
        // Correct replicas committed identical logs (checked), and every
        // slot still decided *something* despite the crashes.
        assert!(report.decided_values.iter().all(Option::is_some));
    }

    #[test]
    fn sim_log_survives_async_prefix() {
        let scenario = LogScenario::failure_free(5).with_asynchrony(AsyncPrefix {
            until_instance: 4,
            sync_from: 5,
            probability: 0.4,
            seed: 17,
        });
        let report = run_log_sim(
            cfg(),
            LogConfig::sequential(8).with_batch_size(1).with_pipeline_depth(2),
            scenario,
            workload(1, 8),
        );
        report.check().unwrap();
    }

    #[test]
    fn session_log_matches_sim_log_failure_free() {
        let log_config = LogConfig::sequential(6).with_batch_size(2).with_pipeline_depth(3);
        let sim = run_log_sim(cfg(), log_config, LogScenario::failure_free(5), workload(2, 12));
        let net = run_log_session(
            cfg(),
            log_config,
            LogScenario::failure_free(5),
            workload(2, 12),
            NetProfile::test_sized(),
        );
        sim.check().unwrap();
        net.check().unwrap();
        assert_eq!(sim.decided_values, net.decided_values);
        assert_eq!(sim.canonical, net.canonical);
    }

    #[test]
    fn adopted_session_serves_consecutive_log_groups_on_one_pool() {
        #[cfg(target_os = "linux")]
        fn live_threads() -> usize {
            std::fs::read_dir("/proc/self/task").expect("proc readable").count()
        }

        let config = cfg();
        let spec = ShotSpec { crashes: vec![None; 5], asynchrony: None, max_rounds: 12 };
        let profile = NetProfile::test_sized();

        // Group 1 on a freshly spawned recycling session.
        let mut first = SessionLogRunner::recycling(
            config,
            at_plus2_factory(config),
            at_plus2_reset(),
            profile,
        );
        for i in 1..=3u64 {
            let proposals = vec![Value::new(100 + i); 5];
            first.start(i, &proposals, &spec);
            let d = first.wait_decided(i).expect("group 1 decided");
            assert_eq!(d.value, Value::new(100 + i), "validity: unanimous proposal decided");
        }
        #[cfg(target_os = "linux")]
        let pool_threads = live_threads();
        let (session, group1) = first.into_session();
        assert_eq!(group1.len(), 3);
        assert!(group1.iter().all(|row| row.iter().flatten().count() >= 3));

        // Group 2 adopts the warm session: driver-local ids restart at 1
        // while the session's monotonic ids keep counting — the offset
        // mapping in `start`/`wait_decided` bridges the two — and no new
        // worker threads are spawned for the second group.
        let mut second =
            SessionLogRunner::adopt(config, session, at_plus2_factory(config), profile, true);
        for i in 1..=4u64 {
            let proposals = vec![Value::new(200 + i); 5];
            second.start(i, &proposals, &spec);
            let d = second.wait_decided(i).expect("group 2 decided");
            assert_eq!(d.value, Value::new(200 + i), "adopted group still satisfies validity");
        }
        #[cfg(target_os = "linux")]
        assert_eq!(live_threads(), pool_threads, "adopting a session spawns no threads");
        let group2 = second.finish();
        assert_eq!(group2.len(), 4);
        assert!(group2.iter().all(|row| row.iter().flatten().count() >= 3));
    }

    #[test]
    fn af_plus2_log_runs_on_the_sim_substrate() {
        // A_{f+2} adopts majority values, so it needs the shared intake:
        // all replicas propose the same batch for the same slot.
        let config = SystemConfig::third(7, 2).unwrap();
        let mut frontend = ClientFrontend::new(7, 1).with_intake(IntakePolicy::Shared);
        frontend.submit_all(0..6);
        let driver = LogDriver::new(
            config,
            LogConfig::sequential(6),
            LogScenario::failure_free(7),
            frontend,
        );
        let report =
            driver.run(SimLogRunner::new(config, af_plus2_factory(config), af_plus2_reset()));
        report.check().unwrap();
        assert_eq!(report.committed_commands, 6);
        // f = 0 crashes: early decision at f + 2 = 2.
        for row in &report.decisions {
            for d in row.iter().flatten() {
                assert!(d.round <= Round::new(2));
            }
        }
    }
}
