//! The total-order invariant checker for completed log runs.
//!
//! A replicated log owes its clients four guarantees, checked here
//! directly on a [`LogReport`]:
//!
//! 1. **Per-slot agreement** — no two replicas decide a slot differently
//!    (uniform: crashed replicas' decisions count);
//! 2. **Per-slot validity** — every decided value was proposed for that
//!    slot;
//! 3. **Total order / identical logs** — every correct replica decided
//!    every slot, and all correct replicas' applied logs are identical
//!    (and equal to the driver's canonical log);
//! 4. **Exactly-once commands** — no duplication (no batch applied
//!    twice, no `Duplicate` entry at all under the driver's proposal
//!    policy) and no loss of acknowledged commands (every applied batch
//!    is known to the dissemination layer, and every command of an
//!    applied batch is committed exactly once).

use std::collections::HashSet;
use std::fmt;

use indulgent_model::{AppliedEntry, BatchId, CommandId, Decision, ProcessId};

use crate::driver::LogReport;

/// A violated log invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogViolation {
    /// Two replicas decided slot `instance` differently.
    Agreement {
        /// The slot (1-based instance id).
        instance: u64,
        /// One decision.
        a: Decision,
        /// A conflicting decision.
        b: Decision,
    },
    /// A slot decided a value nobody proposed for it.
    Validity {
        /// The slot.
        instance: u64,
        /// The offending decision.
        decision: Decision,
    },
    /// A correct replica never decided a slot.
    Termination {
        /// The slot.
        instance: u64,
        /// The undecided correct replica.
        replica: ProcessId,
    },
    /// A correct replica's applied log differs from the canonical log.
    LogMismatch {
        /// The diverging replica.
        replica: ProcessId,
    },
    /// A slot applied a batch already applied earlier (the proposal
    /// policy must make this impossible).
    Duplicate {
        /// 0-based slot offset in the canonical log.
        slot: usize,
        /// The twice-chosen batch.
        batch: BatchId,
    },
    /// An applied batch is unknown to the dissemination layer.
    UnknownBatch {
        /// The unknown batch id.
        batch: BatchId,
    },
    /// A command was acknowledged more than once across applied batches.
    DuplicatedCommand {
        /// The twice-committed command.
        command: CommandId,
    },
    /// The report's committed-command count disagrees with the applied
    /// batches.
    CommittedCountMismatch {
        /// Count claimed by the report.
        reported: u64,
        /// Count recomputed from the applied batches.
        recomputed: u64,
    },
}

impl fmt::Display for LogViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogViolation::Agreement { instance, a, b } => write!(
                f,
                "slot {instance}: {} decided {} but {} decided {}",
                a.process, a.value, b.process, b.value
            ),
            LogViolation::Validity { instance, decision } => write!(
                f,
                "slot {instance}: {} decided unproposed value {}",
                decision.process, decision.value
            ),
            LogViolation::Termination { instance, replica } => {
                write!(f, "slot {instance}: correct replica {replica} never decided")
            }
            LogViolation::LogMismatch { replica } => {
                write!(f, "correct replica {replica}'s applied log diverges from the canonical log")
            }
            LogViolation::Duplicate { slot, batch } => {
                write!(f, "canonical slot offset {slot} re-applied batch {batch}")
            }
            LogViolation::UnknownBatch { batch } => {
                write!(f, "applied batch {batch} is unknown to the dissemination layer")
            }
            LogViolation::DuplicatedCommand { command } => {
                write!(f, "command {command} committed more than once")
            }
            LogViolation::CommittedCountMismatch { reported, recomputed } => {
                write!(f, "report claims {reported} committed commands, applied batches hold {recomputed}")
            }
        }
    }
}

impl std::error::Error for LogViolation {}

impl LogReport {
    /// Checks every log invariant (see the module docs); returns the
    /// first violation found.
    ///
    /// # Errors
    ///
    /// The violated invariant.
    pub fn check(&self) -> Result<(), LogViolation> {
        let n = self.logs.len();
        // 1 + 2: per-slot agreement and validity.
        for (idx, row) in self.decisions.iter().enumerate() {
            let instance = idx as u64 + 1;
            let mut deciders = row.iter().flatten();
            if let Some(first) = deciders.next() {
                for d in deciders {
                    if d.value != first.value {
                        return Err(LogViolation::Agreement { instance, a: *first, b: *d });
                    }
                }
            }
            for d in row.iter().flatten() {
                if !self.proposals[idx].contains(&d.value) {
                    return Err(LogViolation::Validity { instance, decision: *d });
                }
            }
        }

        // 3: termination and identical logs, outage-aware. A replica is
        // held to deciding every slot its outages do not cover — a
        // *recovered* replica must decide again from its recovery
        // instance on. Log equality is only meaningful for replicas with
        // no outage at all (an outage leaves holes that shift the
        // applied log); a report without explicit outage intervals falls
        // back to the crash-stop reading of `crashed`.
        for r in 0..n {
            let replica = ProcessId::new(r);
            let outages = self.outages.get(r).map_or(&[][..], Vec::as_slice);
            if outages.is_empty() {
                if self.crashed.contains(replica) {
                    continue;
                }
            } else {
                for (idx, row) in self.decisions.iter().enumerate() {
                    let instance = idx as u64 + 1;
                    let down = outages.iter().any(|o| o.covers(instance).is_some());
                    if row[r].is_none() && !down {
                        return Err(LogViolation::Termination { instance, replica });
                    }
                }
                continue;
            }
            for (idx, row) in self.decisions.iter().enumerate() {
                if row[r].is_none() {
                    return Err(LogViolation::Termination { instance: idx as u64 + 1, replica });
                }
            }
            if self.logs[r] != self.canonical {
                return Err(LogViolation::LogMismatch { replica });
            }
        }

        // 4: exactly-once commands.
        for (slot, entry) in self.canonical.entries().iter().enumerate() {
            if let AppliedEntry::Duplicate(batch) = entry {
                return Err(LogViolation::Duplicate { slot, batch: *batch });
            }
        }
        let mut committed: u64 = 0;
        let mut seen = HashSet::new();
        for batch in self.canonical.applied_batches() {
            let Some(content) = self.frontend.batch(batch) else {
                return Err(LogViolation::UnknownBatch { batch });
            };
            for c in &content.commands {
                if !seen.insert(c.id) {
                    return Err(LogViolation::DuplicatedCommand { command: c.id });
                }
                committed += 1;
            }
        }
        if committed != self.committed_commands {
            return Err(LogViolation::CommittedCountMismatch {
                reported: self.committed_commands,
                recomputed: committed,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::{Round, Value};

    use super::*;
    use crate::driver::{DecidedLog, LogConfig, Outage};
    use crate::frontend::ClientFrontend;

    /// A hand-built healthy 2-slot report for 3 replicas.
    fn healthy() -> LogReport {
        let mut frontend = ClientFrontend::new(3, 1);
        frontend.submit_all(0..2);
        let d = |r: usize, v: u64| {
            Some(Decision {
                process: ProcessId::new(r),
                round: Round::new(2),
                value: Value::new(v),
            })
        };
        let mut canonical = DecidedLog::new();
        canonical.apply(BatchId(0));
        canonical.apply(BatchId(1));
        LogReport {
            config: LogConfig::sequential(2),
            proposals: vec![
                vec![Value::new(0), Value::new(1), Value::new(2)],
                vec![Value::new(3), Value::new(1), Value::new(2)],
            ],
            decisions: vec![vec![d(0, 0), d(1, 0), d(2, 0)], vec![d(0, 1), d(1, 1), d(2, 1)]],
            decided_values: vec![Some(Value::new(0)), Some(Value::new(1))],
            logs: vec![canonical.clone(), canonical.clone(), canonical.clone()],
            canonical,
            committed_commands: 2,
            noop_slots: 0,
            duplicate_slots: 0,
            crashed: indulgent_model::ProcessSet::empty(),
            outages: vec![Vec::new(); 3],
            frontend,
        }
    }

    #[test]
    fn healthy_report_passes() {
        healthy().check().unwrap();
    }

    #[test]
    fn agreement_violation_detected() {
        let mut report = healthy();
        report.decisions[1][2] = Some(Decision {
            process: ProcessId::new(2),
            round: Round::new(2),
            value: Value::new(2),
        });
        assert!(matches!(report.check(), Err(LogViolation::Agreement { instance: 2, .. })));
    }

    #[test]
    fn validity_violation_detected() {
        let mut report = healthy();
        report.proposals[0] = vec![Value::new(9), Value::new(9), Value::new(9)];
        assert!(matches!(report.check(), Err(LogViolation::Validity { instance: 1, .. })));
    }

    #[test]
    fn termination_violation_detected() {
        let mut report = healthy();
        report.decisions[0][1] = None;
        assert_eq!(
            report.check(),
            Err(LogViolation::Termination { instance: 1, replica: ProcessId::new(1) })
        );
        // Unless the replica crashed, in which case the hole is fine —
        // but its log then diverges, so drop its log comparison too.
        report.crashed.insert(ProcessId::new(1));
        report.logs[1] = DecidedLog::new();
        report.check().unwrap();
    }

    #[test]
    fn recovered_replica_must_decide_after_recovery() {
        let mut report = healthy();
        // Replica 1 is down for slot 1 only (recovers at instance 2): a
        // hole there is fine, and log equality is skipped (holes shift
        // its applied log).
        report.outages[1] =
            vec![Outage { from_instance: 1, from_round: Round::FIRST, until_instance: Some(2) }];
        report.crashed.insert(ProcessId::new(1));
        report.decisions[0][1] = None;
        report.logs[1] = DecidedLog::new();
        report.check().unwrap();
        // But a hole *after* recovery violates termination — recovered
        // replicas are held to their guarantees again.
        report.decisions[1][1] = None;
        assert_eq!(
            report.check(),
            Err(LogViolation::Termination { instance: 2, replica: ProcessId::new(1) })
        );
    }

    #[test]
    fn log_mismatch_detected() {
        let mut report = healthy();
        report.logs[2] = DecidedLog::new();
        assert_eq!(report.check(), Err(LogViolation::LogMismatch { replica: ProcessId::new(2) }));
    }

    #[test]
    fn duplicate_slot_detected() {
        let mut report = healthy();
        // Force a duplicate into the canonical log and mirror it in every
        // replica's log so the mismatch check does not fire first.
        report.canonical.apply(BatchId(0));
        report.proposals.push(vec![Value::new(0); 3]);
        report.decisions.push(report.decisions[0].clone());
        for log in &mut report.logs {
            log.apply(BatchId(0));
        }
        assert_eq!(report.check(), Err(LogViolation::Duplicate { slot: 2, batch: BatchId(0) }));
    }

    #[test]
    fn unknown_batch_detected() {
        let mut report = healthy();
        report.frontend = ClientFrontend::new(3, 1); // forget the batches
        assert_eq!(report.check(), Err(LogViolation::UnknownBatch { batch: BatchId(0) }));
    }

    #[test]
    fn committed_count_mismatch_detected() {
        let mut report = healthy();
        report.committed_commands = 5;
        assert_eq!(
            report.check(),
            Err(LogViolation::CommittedCountMismatch { reported: 5, recomputed: 2 })
        );
    }
}
