//! The wall-clock substrate: log instances pipelined over a reusable
//! runtime [`Session`].
//!
//! Threads and channels are spawned once per runner; every instance ships
//! its automatons to the existing workers as a job, so a pipelined log
//! keeps up to `W` instances racing concurrently on the same threads.
//! Crash specs use the session's logical per-instance semantics
//! (silent from the crash round of the crash instance on), which keeps
//! crash-only executions value-identical to the deterministic
//! [`SimLogRunner`](crate::SimLogRunner) at any pipeline depth.

use std::time::Duration;

use indulgent_model::{Decision, ProcessFactory, RoundProcess, SystemConfig, Value};
use indulgent_runtime::{DelayModel, InstanceSpec, Session};

use crate::driver::{InstanceRunner, ShotSpec};

/// Network timing of a session-backed log run.
#[derive(Debug, Clone, Copy)]
pub struct NetProfile {
    /// Straggler grace window per round (see `indulgent_runtime`).
    pub grace: Duration,
    /// Delay model of instances outside the asynchronous prefix.
    pub base_delays: DelayModel,
    /// Extra latency of a delayed message inside the asynchronous prefix
    /// (must exceed `grace` to actually cause false suspicions).
    pub chaos_delay: Duration,
}

impl NetProfile {
    /// Test-sized defaults: 4 ms grace, instant synchronous delivery,
    /// 30 ms chaos delays.
    #[must_use]
    pub fn test_sized() -> Self {
        NetProfile {
            grace: Duration::from_millis(4),
            base_delays: DelayModel::Instant,
            chaos_delay: Duration::from_millis(30),
        }
    }

    /// Applies a uniform per-message latency to synchronous instances —
    /// the realistic-RTT regime the throughput bench runs in, where
    /// pipelining instances genuinely overlaps network waits.
    #[must_use]
    pub fn with_uniform_latency(mut self, delay: Duration) -> Self {
        self.base_delays = DelayModel::Uniform { delay };
        self
    }
}

/// Wall-clock log substrate over one reusable [`Session`].
#[derive(Debug)]
pub struct SessionLogRunner<P, F>
where
    P: RoundProcess + Send + 'static,
    P::Msg: Send + 'static,
{
    config: SystemConfig,
    session: Session<P>,
    factory: F,
    profile: NetProfile,
    started: u64,
    /// Whether the session recycles retired automatons (proposal-only
    /// jobs); `false` builds fresh via `factory` per instance.
    recycled: bool,
    /// Session-id offset of this runner's instances: an adopted session
    /// has already served earlier log groups, so its monotonic instance
    /// ids run ahead of the driver's 1-based ones. Fixed by the first
    /// `start` call.
    offset: Option<u64>,
}

impl<P, F> SessionLogRunner<P, F>
where
    P: RoundProcess + Send + 'static,
    P::Msg: Send + 'static,
    F: ProcessFactory<Process = P>,
{
    /// Spawns the session threads; `factory` builds one automaton per
    /// `(replica, proposal)` for every instance.
    #[must_use]
    pub fn new(config: SystemConfig, factory: F, profile: NetProfile) -> Self {
        SessionLogRunner {
            config,
            session: Session::with_grace(config, profile.grace),
            factory,
            profile,
            started: 0,
            recycled: false,
            offset: None,
        }
    }

    /// Adopts an already-running session instead of spawning threads: the
    /// runner serves its log group on the *existing* worker pool, so S
    /// consecutive (or interleaved) groups cost one set of threads, not
    /// S. The session may have served earlier instances — the runner
    /// offset-maps the driver's 1-based ids onto the session's monotonic
    /// ones. Pass `recycled` matching how the session was built
    /// ([`Session::with_recycler`] → `true`). Reclaim the session with
    /// [`into_session`](SessionLogRunner::into_session) when the group
    /// is done.
    #[must_use]
    pub fn adopt(
        config: SystemConfig,
        session: Session<P>,
        factory: F,
        profile: NetProfile,
        recycled: bool,
    ) -> Self {
        SessionLogRunner { config, session, factory, profile, started: 0, recycled, offset: None }
    }

    /// Waits out this runner's instances and releases the session — with
    /// its worker threads still warm — for the next log group to
    /// [`adopt`](SessionLogRunner::adopt). Also returns the per-instance
    /// decision grids, like [`InstanceRunner::finish`].
    #[must_use]
    pub fn into_session(mut self) -> (Session<P>, Vec<Vec<Option<Decision>>>) {
        let offset = self.offset.unwrap_or(0);
        let decisions = (offset + 1..=offset + self.started)
            .map(|i| self.session.wait_instance(i).decisions)
            .collect();
        (self.session, decisions)
    }
}

impl<P, F> SessionLogRunner<P, F>
where
    P: RoundProcess + Send + 'static,
    P::Msg: Send + 'static,
    F: ProcessFactory<Process = P> + Clone + Send + Sync + 'static,
{
    /// Spawns a *recycling* session: retired automatons are reset in
    /// place through `reset` for the next instance instead of being
    /// rebuilt — the same `reset_instance` contract the simulator's
    /// multi-shot executor uses, now on the runtime substrate. `factory`
    /// only covers cold starts (the first `W` instances of a pipeline of
    /// depth `W`, or bursts that outrun retirement).
    #[must_use]
    pub fn recycling<R>(config: SystemConfig, factory: F, reset: R, profile: NetProfile) -> Self
    where
        R: Fn(usize, &mut P, Value) + Send + Sync + 'static,
    {
        let build = factory.clone();
        SessionLogRunner {
            config,
            session: Session::with_recycler(
                config,
                profile.grace,
                move |i, v| build.build(i, v),
                reset,
            ),
            factory,
            profile,
            started: 0,
            recycled: true,
            offset: None,
        }
    }
}

impl<P, F> InstanceRunner for SessionLogRunner<P, F>
where
    P: RoundProcess + Send + 'static,
    P::Msg: Send + 'static,
    F: ProcessFactory<Process = P>,
{
    fn start(&mut self, instance: u64, proposals: &[Value], spec: &ShotSpec) {
        let delays = match spec.asynchrony {
            Some(chaos) => DelayModel::AsyncUntil {
                until_round: chaos.sync_from,
                delay: self.profile.chaos_delay,
                probability: chaos.probability,
                seed: chaos.seed,
            },
            None => self.profile.base_delays,
        };
        let session_spec =
            InstanceSpec { crashes: spec.crashes.clone(), delays, max_rounds: spec.max_rounds };
        let id = if self.recycled {
            self.session.start_instance_recycled(proposals, &session_spec)
        } else {
            let processes: Vec<P> =
                proposals.iter().enumerate().map(|(i, &v)| self.factory.build(i, v)).collect();
            self.session.start_instance(processes, &session_spec)
        };
        let offset = *self.offset.get_or_insert(id - instance);
        assert_eq!(
            id,
            instance + offset,
            "session instance ids track the driver's (offset {offset})"
        );
        self.started = self.started.max(instance);
    }

    fn wait_decided(&mut self, instance: u64) -> Option<Decision> {
        self.session.wait_decision(instance + self.offset.unwrap_or(0))
    }

    fn finish(mut self) -> Vec<Vec<Option<Decision>>> {
        let offset = self.offset.unwrap_or(0);
        (offset + 1..=offset + self.started)
            .map(|i| self.session.wait_instance(i).decisions)
            .collect()
    }
}

// `config` is carried for symmetry with the sim runner and future
// profile-dependent decisions; keep the accessor public instead of a
// dead field.
impl<P, F> SessionLogRunner<P, F>
where
    P: RoundProcess + Send + 'static,
    P::Msg: Send + 'static,
{
    /// The system configuration this runner's session serves.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }
}
