//! Chaos proptests for the replicated log: random batch sizes, pipeline
//! depths, crash points, intake policies, and asynchronous prefixes must
//! always yield a log satisfying the total-order invariants — per-slot
//! agreement and validity, identical decided logs on all correct
//! replicas, and exactly-once acknowledged commands.
//!
//! The heavy randomized coverage runs on the deterministic simulator
//! substrate (fast, reproducible by seed); a slimmer randomized matrix
//! exercises the threaded session substrate with real clocks, and a
//! crash-only case pins the two substrates to the identical decided log
//! on replayable seeds (the exhaustive pinning lives in the integration
//! differential suite).

use indulgent_log::{
    run_log_session, run_log_sim, AsyncPrefix, ClientFrontend, IntakePolicy, LogConfig, LogReport,
    LogScenario, NetProfile,
};
use indulgent_model::{Round, SystemConfig};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn cfg() -> SystemConfig {
    SystemConfig::majority(5, 2).unwrap()
}

fn workload(batch: usize, commands: u64, intake: IntakePolicy) -> ClientFrontend {
    let mut f = ClientFrontend::new(5, batch).with_intake(intake);
    f.submit_all(0..commands);
    f
}

fn intake_of(pick: u8) -> IntakePolicy {
    match pick % 3 {
        0 => IntakePolicy::RoundRobin,
        1 => IntakePolicy::Leader(usize::from(pick) % 5),
        _ => IntakePolicy::Shared,
    }
}

/// Builds a scenario from raw random material: up to `t` permanent
/// crashes at arbitrary (instance, round) points, optionally an
/// asynchronous prefix.
#[allow(clippy::too_many_arguments)]
fn scenario_of(
    crash_count: usize,
    crash_seed: u64,
    instances: u64,
    with_async: bool,
    async_seed: u64,
) -> LogScenario {
    let mut scenario = LogScenario::failure_free(5);
    let mut x = crash_seed | 1;
    let mut victims: Vec<usize> = Vec::new();
    while victims.len() < crash_count {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let victim = (x >> 33) as usize % 5;
        if !victims.contains(&victim) {
            victims.push(victim);
            let instance = (x >> 17) % instances + 1;
            let round = (x >> 7) as u32 % 4 + 1;
            scenario = scenario.crash(victim, instance, Round::new(round));
        }
    }
    if with_async {
        scenario = scenario.with_asynchrony(AsyncPrefix {
            until_instance: instances / 2 + 1,
            sync_from: 4,
            probability: 0.35,
            seed: async_seed,
        });
    }
    scenario
}

/// Seeded crash-*recovery* chaos: up to `t` victims, each down for a
/// random `(instance, round)` → `recover_instance` window, the first
/// victim crashing **twice** (two disjoint outage intervals) when the
/// run is long enough.
fn recovery_scenario_of(n: usize, t: usize, instances: u64, seed: u64) -> LogScenario {
    let mut scenario = LogScenario::failure_free(n);
    let mut x = seed;
    let mut victims: Vec<usize> = Vec::new();
    while victims.len() < t {
        let v = splitmix(&mut x) as usize % n;
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    for (k, &v) in victims.iter().enumerate() {
        let from = splitmix(&mut x) % instances + 1;
        let round = Round::new((splitmix(&mut x) % 4 + 1) as u32);
        let recover = from + splitmix(&mut x) % 3 + 1;
        scenario = scenario.crash_recover(v, from, round, recover);
        if k == 0 && recover < instances {
            // Double crash: the same replica goes down again after it
            // recovered (disjoint interval, so still within budget).
            let from2 = recover + splitmix(&mut x) % (instances - recover);
            let round2 = Round::new((splitmix(&mut x) % 4 + 1) as u32);
            scenario = scenario.crash_recover(v, from2, round2, from2 + splitmix(&mut x) % 2 + 1);
        }
    }
    scenario
}

/// The invariant gauntlet plus cheap cross-checks every chaotic run must
/// pass.
fn assert_log_healthy(report: &LogReport, commands: u64) {
    report.check().unwrap_or_else(|e| panic!("log invariants violated: {e}"));
    assert_eq!(report.duplicate_slots, 0, "the proposal policy never re-chooses a batch");
    assert!(report.committed_commands <= commands, "cannot commit more than was submitted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Simulator substrate: the full random matrix.
    #[test]
    fn sim_log_chaos_preserves_invariants(
        batch in 1usize..6,
        depth in 1u64..5,
        instances in 2u64..12,
        crash_count in 0usize..3,
        crash_seed in any::<u64>(),
        with_async in any::<bool>(),
        async_seed in any::<u64>(),
        intake_pick in any::<u8>(),
    ) {
        let commands = instances * batch as u64;
        let scenario = scenario_of(crash_count, crash_seed, instances, with_async, async_seed);
        let report = run_log_sim(
            cfg(),
            LogConfig::sequential(instances)
                .with_batch_size(batch)
                .with_pipeline_depth(depth),
            scenario,
            workload(batch, commands, intake_of(intake_pick)),
        );
        assert_log_healthy(&report, commands);
    }

    /// Crash-recovery chaos across group sizes beyond n = 5, t = 2:
    /// seeded outage windows (double crashes included) on the simulator
    /// substrate, with every slot still deciding — a recovering minority
    /// never stalls the log.
    #[test]
    fn sim_log_recovery_chaos_preserves_invariants(
        n_pick in 0usize..3,
        batch in 1usize..4,
        depth in 1u64..4,
        instances in 4u64..10,
        seed in any::<u64>(),
    ) {
        let (n, t) = [(3, 1), (5, 2), (7, 3)][n_pick];
        let config = SystemConfig::majority(n, t).unwrap();
        let commands = instances * batch as u64;
        let scenario = recovery_scenario_of(n, t, instances, seed);
        let mut frontend = ClientFrontend::new(n, batch).with_intake(IntakePolicy::Shared);
        frontend.submit_all(0..commands);
        let report = run_log_sim(
            config,
            LogConfig::sequential(instances)
                .with_batch_size(batch)
                .with_pipeline_depth(depth),
            scenario,
            frontend,
        );
        assert_log_healthy(&report, commands);
        prop_assert!(report.decided_values.iter().all(Option::is_some));
    }

    /// Simulator chaos is deterministic: the same seeds replay to the
    /// identical report (decided values, logs, commit counts).
    #[test]
    fn sim_log_chaos_is_replayable(
        batch in 1usize..4,
        depth in 1u64..4,
        instances in 2u64..8,
        crash_count in 0usize..3,
        crash_seed in any::<u64>(),
        async_seed in any::<u64>(),
    ) {
        let commands = instances * batch as u64;
        let run = || {
            run_log_sim(
                cfg(),
                LogConfig::sequential(instances)
                    .with_batch_size(batch)
                    .with_pipeline_depth(depth),
                scenario_of(crash_count, crash_seed, instances, true, async_seed),
                workload(batch, commands, IntakePolicy::RoundRobin),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.decided_values, b.decided_values);
        prop_assert_eq!(a.canonical, b.canonical);
        prop_assert_eq!(a.committed_commands, b.committed_commands);
    }
}

proptest! {
    // The threaded substrate spawns real threads per case; keep the case
    // count wall-clock friendly.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Session substrate: random batch/depth/crash/async combinations on
    /// real threads still satisfy every invariant.
    #[test]
    fn session_log_chaos_preserves_invariants(
        batch in 1usize..5,
        depth in 1u64..5,
        crash_count in 0usize..3,
        crash_seed in any::<u64>(),
        with_async in any::<bool>(),
        async_seed in any::<u64>(),
    ) {
        let instances = 6u64;
        let commands = instances * batch as u64;
        let scenario = scenario_of(crash_count, crash_seed, instances, with_async, async_seed);
        let report = run_log_session(
            cfg(),
            LogConfig::sequential(instances)
                .with_batch_size(batch)
                .with_pipeline_depth(depth),
            scenario,
            workload(batch, commands, IntakePolicy::Shared),
            NetProfile::test_sized(),
        );
        assert_log_healthy(&report, commands);
    }

    /// Crash-recovery chaos on real threads: seeded outage windows must
    /// hold every invariant on the session substrate too.
    #[test]
    fn session_log_recovery_chaos_preserves_invariants(
        batch in 1usize..4,
        depth in 1u64..4,
        seed in any::<u64>(),
    ) {
        let instances = 6u64;
        let commands = instances * batch as u64;
        let scenario = recovery_scenario_of(5, 2, instances, seed);
        let report = run_log_session(
            cfg(),
            LogConfig::sequential(instances)
                .with_batch_size(batch)
                .with_pipeline_depth(depth),
            scenario,
            workload(batch, commands, IntakePolicy::Shared),
            NetProfile::test_sized(),
        );
        assert_log_healthy(&report, commands);
    }

    /// Crash-only chaos pins the runtime to the simulator: identical
    /// decided logs at any pipeline depth, on replayable seeds.
    #[test]
    fn session_log_crashes_match_sim(
        batch in 1usize..4,
        depth in 1u64..5,
        crash_count in 1usize..3,
        crash_seed in any::<u64>(),
    ) {
        let instances = 6u64;
        let commands = instances * batch as u64;
        let scenario = scenario_of(crash_count, crash_seed, instances, false, 0);
        let log_config = LogConfig::sequential(instances)
            .with_batch_size(batch)
            .with_pipeline_depth(depth);
        let sim = run_log_sim(
            cfg(),
            log_config,
            scenario.clone(),
            workload(batch, commands, IntakePolicy::Shared),
        );
        let net = run_log_session(
            cfg(),
            log_config,
            scenario,
            workload(batch, commands, IntakePolicy::Shared),
            NetProfile::test_sized(),
        );
        prop_assert_eq!(&sim.decided_values, &net.decided_values);
        prop_assert_eq!(&sim.canonical, &net.canonical);
    }
}

/// Rolling restarts: three distinct replicas crash over the run — more
/// crash *events* than t = 2 — but the outage windows are disjoint, so
/// at most one replica is down at any instance and the log never stalls.
#[test]
fn rolling_outages_beyond_t_total_stay_correct() {
    let scenario = LogScenario::failure_free(5)
        .crash_recover(0, 1, Round::new(1), 3)
        .crash_recover(1, 3, Round::new(2), 5)
        .crash_recover(2, 5, Round::new(1), 7);
    assert_eq!(scenario.crash_count(), 3, "more total crash events than t");
    let report = run_log_sim(
        cfg(),
        LogConfig::sequential(8).with_batch_size(2).with_pipeline_depth(2),
        scenario,
        workload(2, 16, IntakePolicy::Shared),
    );
    assert_log_healthy(&report, 16);
    assert!(report.decided_values.iter().all(Option::is_some));
    assert_eq!(report.committed_commands, 16, "shared intake loses nothing to rolling outages");
}
