//! Keyspace sharding: the router, the durability-root manifest, and the
//! cross-shard audit.
//!
//! Single-key KV commands on different keys never need a shared total
//! order, so the service partitions its keyspace across `S` independent
//! `A_{t+2}` log pipelines — *shard groups* — that run concurrently
//! inside one engine. The pieces here are shard-count-global:
//!
//! * [`ShardRouter`] — the fixed multiplicative hash mapping every key
//!   to its owning shard. Deterministic and stateless, so the client,
//!   the engine, and the audit all agree on placement by construction,
//!   and a `(ClientId, RequestId)` pair always lands on the same shard
//!   (its operation names one key), which is what keeps exactly-once
//!   dedup correct under sharding.
//! * [`load_manifest`]/[`store_manifest`] — the fsynced `shards.manifest`
//!   at the durability root recording how many `shard-<i>/`
//!   subdirectories the on-disk layout was written for. Boot recovery
//!   refuses to start when the configured shard count disagrees:
//!   rehashing a durable keyspace silently would route recovered keys to
//!   the wrong groups.
//! * [`ShardedAudit`] — the service-wide verdict: every per-shard
//!   [`ServiceAudit`] must pass its own replay, every command and fast
//!   read must sit on the shard its key routes to, and no
//!   `(ClientId, RequestId)` pair may appear in two shards' histories.

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use indulgent_model::{ClientId, RequestId};

use crate::engine::{AuditViolation, FastReadRecord, ServiceAudit};
use crate::wal::crc32;

/// Maps keys to shard groups with a fixed multiplicative hash.
///
/// The hash is deterministic across processes and incarnations — the
/// routing rule *is* the data layout, so it must never drift between a
/// client computing placement, the engine applying a command, and a
/// recovery replaying yesterday's WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` groups.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "a service has at least one shard");
        ShardRouter { shards }
    }

    /// How many shards this router spreads the keyspace over.
    #[must_use]
    pub fn shards(self) -> u32 {
        self.shards
    }

    /// The shard owning `key`. Fixed multiplicative hash (a Murmur-style
    /// xor fold through the 64-bit golden ratio), taking the high bits
    /// so consecutive keys spread instead of striping.
    #[must_use]
    pub fn shard_of(self, key: u16) -> u32 {
        let mixed = (u64::from(key) ^ 0x5bd1_e995).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        u32::try_from((mixed >> 32) % u64::from(self.shards)).expect("residue fits u32")
    }
}

/// The subdirectory of the durability root holding shard `idx`'s WAL,
/// snapshots, and lease epoch.
#[must_use]
pub fn shard_dir(root: &Path, idx: u32) -> PathBuf {
    root.join(format!("shard-{idx}"))
}

/// The shard-count manifest file name at the durability root.
const MANIFEST_FILE: &str = "shards.manifest";
const MANIFEST_LEN: usize = 8; // 4-byte LE shard count + crc32

/// Loads the shard count recorded at `root`; `Ok(None)` if no manifest
/// was ever written (a fresh root). A corrupt manifest is an error, not
/// a silent default — booting with the wrong shard count rehashes the
/// keyspace.
pub fn load_manifest(root: &Path) -> io::Result<Option<u32>> {
    let mut file = match OpenOptions::new().read(true).open(root.join(MANIFEST_FILE)) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() != MANIFEST_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "shard manifest malformed"));
    }
    let shards = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    let stored = u32::from_le_bytes(bytes[4..].try_into().expect("4 bytes"));
    if crc32(&bytes[..4]) != stored {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "shard manifest checksum mismatch"));
    }
    Ok(Some(shards))
}

/// Durably records `shards` at `root` (atomic temp-write + fsync +
/// rename, the snapshot idiom). Must complete before any shard serves
/// so a crash mid-boot cannot leave an unlabeled multi-shard layout.
pub fn store_manifest(root: &Path, shards: u32) -> io::Result<()> {
    fs::create_dir_all(root)?;
    let path = root.join(MANIFEST_FILE);
    let tmp = path.with_extension("tmp");
    let mut bytes = Vec::with_capacity(MANIFEST_LEN);
    bytes.extend_from_slice(&shards.to_le_bytes());
    bytes.extend_from_slice(&crc32(&shards.to_le_bytes()).to_le_bytes());
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    if let Ok(d) = File::open(root) {
        let _ = d.sync_data();
    }
    Ok(())
}

/// Everything a finished sharded service run exposes for verification:
/// one [`ServiceAudit`] per shard group plus the cross-shard invariants
/// no single group can see.
///
/// [`check`](ShardedAudit::check) is the service-wide gate: each shard's
/// replay must pass on its own, every sequenced command and fast read
/// must sit on the shard its key routes to under the [`ShardRouter`],
/// and the `(ClientId, RequestId)` exactly-once key space must be
/// disjoint across shards. Accessors aggregate the per-shard counters so
/// single-group call sites read the same way they did before sharding.
#[derive(Debug, Clone)]
pub struct ShardedAudit {
    /// The per-shard audits, indexed by shard id.
    pub shards: Vec<ServiceAudit>,
}

impl ShardedAudit {
    /// The router this run partitioned keys with.
    ///
    /// # Panics
    ///
    /// Panics if the audit holds no shards (an engine always runs at
    /// least one).
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(u32::try_from(self.shards.len()).expect("shard count fits u32"))
    }

    /// Commands applied over the service lifetime, across all shards.
    #[must_use]
    pub fn committed_commands(&self) -> u64 {
        self.shards.iter().map(|s| s.committed_commands).sum()
    }

    /// Retries absorbed by the dedup layers, across all shards.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.dedup_hits).sum()
    }

    /// Duplicate batch applies (must be zero), across all shards.
    #[must_use]
    pub fn duplicate_applies(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicate_applies).sum()
    }

    /// Fast reads already verified and folded at checkpoints, across all
    /// shards.
    #[must_use]
    pub fn folded_fast_reads(&self) -> u64 {
        self.shards.iter().map(|s| s.folded_fast_reads).sum()
    }

    /// The retained fast-read records of every shard, in shard order
    /// (within a shard, serve order).
    #[must_use]
    pub fn fast_reads(&self) -> Vec<&FastReadRecord> {
        self.shards.iter().flat_map(|s| s.fast_reads.iter()).collect()
    }

    /// The lease epoch the run served under (shard 0's; all shards of an
    /// incarnation boot together, so their epochs advance in lockstep).
    ///
    /// # Panics
    ///
    /// Panics if the audit holds no shards.
    #[must_use]
    pub fn lease_epoch(&self) -> u64 {
        self.shards.first().expect("an engine always runs at least one shard").lease_epoch
    }

    /// Slots applied over the service lifetime, summed across shards
    /// (each shard numbers its own slot space).
    #[must_use]
    pub fn applied_slots(&self) -> u64 {
        self.shards.iter().map(|s| s.base_slot + s.slots.len() as u64).sum()
    }

    /// The materialized KV store, merged across shards. Shards own
    /// disjoint key sets (the router is a partition), so the merge is
    /// collision-free.
    #[must_use]
    pub fn final_store(&self) -> BTreeMap<u16, u32> {
        let mut merged = BTreeMap::new();
        for s in &self.shards {
            merged.extend(s.final_store.iter().map(|(&k, &v)| (k, v)));
        }
        merged
    }

    /// Verifies the sharded run end to end: every shard's own replay
    /// audit, key-to-shard routing of every sequenced command and fast
    /// read, and cross-shard disjointness of the exactly-once key space.
    pub fn check(&self) -> Result<(), AuditViolation> {
        let router = self.router();
        let mut owners: HashMap<(ClientId, RequestId), u32> = HashMap::new();
        for (i, audit) in self.shards.iter().enumerate() {
            let shard = u32::try_from(i).expect("shard count fits u32");
            if audit.shard != shard {
                return Err(AuditViolation::ShardMislabel { shard: audit.shard, expected: shard });
            }
            audit.check()?;
            let mut claim = |client: ClientId, request: RequestId| match owners
                .insert((client, request), shard)
            {
                Some(prev) if prev != shard => {
                    Err(AuditViolation::CrossShardDuplicate { client, request })
                }
                _ => Ok(()),
            };
            for s in &audit.base_sessions {
                claim(s.client, s.request)?;
            }
            for rec in &audit.slots {
                for ack in &rec.commands {
                    if router.shard_of(ack.op.key()) != shard {
                        return Err(AuditViolation::ShardRouting { shard, key: ack.op.key() });
                    }
                    claim(ack.client, ack.request)?;
                }
            }
            for r in &audit.fast_reads {
                if router.shard_of(r.key) != shard {
                    return Err(AuditViolation::ShardRouting { shard, key: r.key });
                }
                claim(r.client, r.request)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use indulgent_model::SystemConfig;

    use super::*;

    #[test]
    fn router_is_deterministic_and_total() {
        for shards in [1u32, 2, 3, 4, 8] {
            let router = ShardRouter::new(shards);
            for key in 0..=u16::MAX {
                let s = router.shard_of(key);
                assert!(s < shards);
                assert_eq!(s, router.shard_of(key), "placement is a pure function of the key");
            }
        }
    }

    #[test]
    fn router_spreads_the_keyspace() {
        // Not a uniformity proof — just a guard against a degenerate
        // hash that stripes everything onto one shard.
        let router = ShardRouter::new(4);
        let mut counts = [0u32; 4];
        for key in 0..512u16 {
            counts[router.shard_of(key) as usize] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count >= 64, "shard {shard} owns only {count} of 512 keys");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        for key in [0u16, 1, 255, u16::MAX] {
            assert_eq!(router.shard_of(key), 0);
        }
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let root = std::env::temp_dir().join(format!("indulgent-manifest-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(load_manifest(&root).unwrap(), None, "fresh root has no manifest");
        store_manifest(&root, 4).unwrap();
        assert_eq!(load_manifest(&root).unwrap(), Some(4));
        store_manifest(&root, 8).unwrap();
        assert_eq!(load_manifest(&root).unwrap(), Some(8));
        // Corruption is an error, not a silent shard-count reset: flip a
        // count byte under the stored checksum, and truncate.
        let mut bytes = std::fs::read(root.join(MANIFEST_FILE)).unwrap();
        bytes[0] ^= 0x04;
        std::fs::write(root.join(MANIFEST_FILE), &bytes).unwrap();
        assert!(load_manifest(&root).is_err());
        std::fs::write(root.join(MANIFEST_FILE), &bytes[..3]).unwrap();
        assert!(load_manifest(&root).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    fn empty_audit(shard: u32) -> ServiceAudit {
        ServiceAudit {
            system: SystemConfig::majority(5, 2).expect("valid config"),
            shard,
            base_slot: 0,
            base_store: BTreeMap::new(),
            base_sessions: Vec::new(),
            base_commands: 0,
            live_from: 1,
            slots: Vec::new(),
            proposals: Vec::new(),
            replica_decisions: Vec::new(),
            final_store: BTreeMap::new(),
            committed_commands: 0,
            dedup_hits: 0,
            duplicate_applies: 0,
            fast_reads: Vec::new(),
            folded_fast_reads: 0,
            fast_read_mismatches: 0,
            lease_epoch: 1,
        }
    }

    #[test]
    fn cross_shard_checks_fire() {
        // A fast read parked on the wrong shard trips the routing check.
        let router = ShardRouter::new(2);
        let key = (0..u16::MAX).find(|&k| router.shard_of(k) == 0).expect("some key maps to 0");
        let read = FastReadRecord {
            client: ClientId(1),
            request: RequestId(0),
            key,
            index: 0,
            epoch: 1,
            attested: false,
            value: None,
        };
        let mut wrong = empty_audit(1);
        wrong.fast_reads.push(read);
        let audit = ShardedAudit { shards: vec![empty_audit(0), wrong] };
        assert!(matches!(audit.check(), Err(AuditViolation::ShardRouting { shard: 1, .. })));

        // The same (client, request) pair in two shards trips
        // cross-shard exactly-once.
        let key0 = key;
        let key1 = (0..u16::MAX).find(|&k| router.shard_of(k) == 1).expect("some key maps to 1");
        let mut a = empty_audit(0);
        a.fast_reads.push(FastReadRecord { key: key0, ..read });
        let mut b = empty_audit(1);
        b.fast_reads.push(FastReadRecord { key: key1, ..read });
        let audit = ShardedAudit { shards: vec![a, b] };
        assert!(matches!(audit.check(), Err(AuditViolation::CrossShardDuplicate { .. })));

        // A mislabeled shard audit is rejected outright.
        let audit = ShardedAudit { shards: vec![empty_audit(1)] };
        assert!(matches!(audit.check(), Err(AuditViolation::ShardMislabel { .. })));

        // And the clean two-shard layout passes.
        let audit = ShardedAudit { shards: vec![empty_audit(0), empty_audit(1)] };
        audit.check().expect("clean sharded audit passes");
        assert_eq!(audit.committed_commands(), 0);
        assert_eq!(audit.lease_epoch(), 1);
    }
}
