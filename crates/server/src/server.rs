//! The TCP front door: framed sockets in, engine intake out.
//!
//! [`KvServer`] binds a listener, hosts the replica group in-process (a
//! [`KvEngine`](crate::KvEngine) running the n-replica consensus
//! session), and bridges each accepted socket to the engine:
//!
//! * a **reader thread** per connection decodes request frames and
//!   submits them on the engine's intake channel; a clean EOF, a
//!   truncated frame, or a malformed message deregisters the connection
//!   (the protocol has no error responses — a peer that cannot speak it
//!   is dropped);
//! * a **writer thread** per connection forwards the engine's
//!   acknowledgements back as response frames.
//!
//! A client that dies mid-request costs the server nothing: the reader
//! sees EOF, deregisters, and the command — if already batched — still
//! commits; its ack goes nowhere. When the client reconnects and replays
//! the same `(ClientId, RequestId)`, the engine's dedup layer answers
//! from the decided log without a second apply. The integration suite
//! kills clients mid-request to pin this down.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{EngineConfig, EngineHandle, KvEngine, Outbound};
use crate::proto::{
    lease_state_request_shard, stats_request_shard, Request, SyncFrame, TAG_AUDIT_REQUEST,
    TAG_LEASE_STATE_REQUEST, TAG_REQUEST, TAG_STATS_REQUEST, TAG_SYNC_REQUEST,
};
use crate::shard::ShardedAudit;
use crate::wire::{write_frame, FrameReader};

/// A running networked replicated-KV service.
#[derive(Debug)]
pub struct KvServer {
    engine: KvEngine,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    /// Live sockets, for shutdown to unblock their reader threads.
    socks: Arc<Mutex<Vec<TcpStream>>>,
}

impl KvServer {
    /// Spawns the engine and binds the listener (use port 0 for an
    /// ephemeral port; [`addr`](KvServer::addr) reports the real one).
    pub fn bind(addr: &str, config: EngineConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let engine = KvEngine::spawn(config);
        let handle = engine.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let socks: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let socks = Arc::clone(&socks);
            std::thread::spawn(move || accept_loop(&listener, &handle, &stop, &socks))
        };
        Ok(KvServer { engine, addr, stop, acceptor: Some(acceptor), socks })
    }

    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for opening in-process sessions ([`crate::LocalKv`])
    /// against the same engine the sockets feed.
    #[must_use]
    pub fn engine(&self) -> EngineHandle {
        self.engine.handle()
    }

    /// Stops accepting, closes every live socket, drains the engine, and
    /// returns the audit.
    ///
    /// # Panics
    ///
    /// Panics if the acceptor or engine driver thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> ShardedAudit {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            h.join().expect("acceptor thread panicked");
        }
        // Closing the sockets unblocks the per-connection reader threads,
        // whose exits deregister their connections from the engine.
        for s in self.socks.lock().expect("socket registry poisoned").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.engine.shutdown()
    }

    /// Hard-crashes the server: sockets are torn down and the engine is
    /// killed without draining or checkpointing — the on-disk state is
    /// whatever the last slot-boundary fsync left. The in-process analog
    /// of `kill -9`, for recovery tests; restart with
    /// [`bind`](KvServer::bind) on the same durability directory.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for s in self.socks.lock().expect("socket registry poisoned").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.engine.kill();
    }
}

/// Accepts connections until told to stop; each connection gets a reader
/// and a writer thread.
fn accept_loop(
    listener: &TcpListener,
    engine: &EngineHandle,
    stop: &AtomicBool,
    socks: &Mutex<Vec<TcpStream>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(e) = spawn_connection(stream, engine, socks) {
                    // A socket that failed setup is dropped; the peer
                    // sees a closed connection and retries elsewhere.
                    let _ = e;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Wires one accepted socket to the engine.
fn spawn_connection(
    stream: TcpStream,
    engine: &EngineHandle,
    socks: &Mutex<Vec<TcpStream>>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(false)?;
    let read_side = stream.try_clone()?;
    let mut write_side = stream.try_clone()?;
    socks.lock().expect("socket registry poisoned").push(stream);

    let (submit, acks) = engine.connect();

    // Writer: engine outbound -> frames. Acks are encoded responses;
    // control payloads (sync stream, audit reply) are pre-encoded by the
    // engine and written verbatim. Exits when the engine drops the
    // connection's sender (deregistration) or the socket dies.
    let wsock = write_side.try_clone()?;
    std::thread::spawn(move || {
        while let Ok(out) = acks.recv() {
            let bytes = match out {
                Outbound::Ack(resp) => resp.encode(),
                Outbound::Control(bytes) => bytes,
            };
            if write_frame(&mut write_side, &bytes).is_err() {
                break;
            }
        }
    });

    // Reader: inbound frames -> engine intake, dispatched on the tag
    // byte (requests, sync requests from rejoining replicas, audit
    // requests). Owns the SubmitHandle, so its exit (EOF, truncation,
    // garbage) deregisters the connection, which disconnects the
    // writer's receiver and lets it exit too.
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(read_side);
        while let Ok(Some(payload)) = reader.read_frame() {
            let keep_going = match payload.first() {
                Some(&TAG_REQUEST) => match Request::decode(&payload) {
                    Ok(request) => submit.submit(request),
                    Err(_) => false,
                },
                Some(&TAG_SYNC_REQUEST) => match SyncFrame::decode(&payload) {
                    Ok(SyncFrame::Request { shard, .. }) => submit.request_sync(shard),
                    _ => false,
                },
                Some(&TAG_AUDIT_REQUEST) => submit.request_audit(),
                Some(&TAG_LEASE_STATE_REQUEST) => match lease_state_request_shard(&payload) {
                    Ok(shard) => submit.request_lease_state(shard),
                    Err(_) => false,
                },
                Some(&TAG_STATS_REQUEST) => match stats_request_shard(&payload) {
                    Ok(shard) => submit.request_stats(shard),
                    Err(_) => false,
                },
                _ => false,
            };
            if !keep_going {
                break;
            }
        }
        // Unblock the writer promptly even if the engine keeps the ack
        // sender alive briefly.
        let _ = wsock.shutdown(Shutdown::Write);
        drop(submit);
    });
    Ok(())
}
