//! The write-ahead log of decided slots.
//!
//! Every applied slot is persisted as one *record* before its
//! acknowledgements leave the engine: a 4-byte little-endian payload
//! length, a 4-byte CRC32 of the payload, then the payload — the
//! [`crate::wire`] framing discipline with a checksum on top, because a
//! disk (unlike a TCP stream) hands back whatever bytes survived a
//! crash, torn and bit-rotten included. Records are appended and
//! `fdatasync`'d at slot boundaries, so the durable prefix always ends
//! on a whole slot.
//!
//! Recovery reads the file through the same incremental [`WalDecoder`]
//! the proptests chunk-feed: the longest valid prefix of records is
//! recovered, and the tail is classified —
//!
//! * [`WalTail::Clean`] — the file ends exactly at a record boundary;
//! * [`WalTail::Torn`] — the file ends mid-record (the crash interrupted
//!   an append); the partial record is discarded and truncated away;
//! * [`WalTail::Corrupt`] — a record body fails its checksum or a header
//!   announces an impossible length (bit rot, not a torn append).
//!
//! The CRC32 is implemented in-tree (IEEE polynomial, byte-wise table):
//! the workspace vendors its dependencies by design, and eight lines of
//! table generation keep the WAL's integrity story auditable next to the
//! codec it protects.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use indulgent_model::{BatchId, ClientId, RequestId};

use crate::engine::{AckRecord, SlotRecord};
use crate::proto::{KvOp, ProtoError, Response};

/// Hard bound on a WAL record's payload size (1 MiB).
///
/// Real records are `batch_size` commands of ~40 bytes each; the bound
/// exists to reject corrupt length headers before allocating.
pub const MAX_RECORD: usize = 1024 * 1024;

/// Bytes of the record header: u32 payload length + u32 CRC32.
pub const RECORD_HEADER_LEN: usize = 8;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// generated at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum of `bytes` (IEEE polynomial — the WAL record checksum).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// How the byte stream ended after the last whole record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The stream ends exactly at a record boundary.
    Clean,
    /// The stream ends mid-record at `offset` — a torn append; the
    /// partial record is discarded.
    Torn {
        /// Byte offset of the incomplete record's header.
        offset: u64,
    },
    /// The record at `offset` is damaged: checksum mismatch or an
    /// impossible length header.
    Corrupt {
        /// Byte offset of the damaged record's header.
        offset: u64,
    },
}

/// A WAL-level error surfaced to the engine.
#[derive(Debug)]
pub enum WalError {
    /// A record payload does not decode as a slot record.
    Malformed(ProtoError),
    /// An underlying file operation failed.
    Io(io::Error),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Malformed(e) => write!(f, "malformed slot record: {e}"),
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<ProtoError> for WalError {
    fn from(e: ProtoError) -> Self {
        WalError::Malformed(e)
    }
}

/// Encodes a slot record's payload (no framing): slot, batch id, and the
/// commands with their recorded acknowledgements.
#[must_use]
pub fn encode_payload(rec: &SlotRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + rec.commands.len() * 48);
    out.extend_from_slice(&rec.slot.to_le_bytes());
    out.extend_from_slice(&rec.batch.0.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(rec.commands.len()).expect("bounded by batch size").to_le_bytes(),
    );
    for ack in &rec.commands {
        out.extend_from_slice(&ack.client.0.to_le_bytes());
        out.extend_from_slice(&ack.request.0.to_le_bytes());
        out.extend_from_slice(&ack.op.to_payload().to_le_bytes());
        let resp = ack.response.encode();
        out.extend_from_slice(
            &u16::try_from(resp.len()).expect("responses are tens of bytes").to_le_bytes(),
        );
        out.extend_from_slice(&resp);
    }
    out
}

/// Decodes a slot record payload produced by [`encode_payload`].
pub fn decode_payload(bytes: &[u8]) -> Result<SlotRecord, ProtoError> {
    fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], ProtoError> {
        if bytes.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = bytes.split_at(n);
        *bytes = rest;
        Ok(head)
    }
    fn u64_of(bytes: &mut &[u8]) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(take(bytes, 8)?.try_into().expect("8 bytes")))
    }
    let mut c = bytes;
    let slot = u64_of(&mut c)?;
    let batch = BatchId(u64_of(&mut c)?);
    let count = u32::from_le_bytes(take(&mut c, 4)?.try_into().expect("4 bytes"));
    let mut commands = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let client = ClientId(u64_of(&mut c)?);
        let request = RequestId(u64_of(&mut c)?);
        let op = KvOp::from_payload(u64_of(&mut c)?);
        let resp_len = u16::from_le_bytes(take(&mut c, 2)?.try_into().expect("2 bytes"));
        let response = Response::decode(take(&mut c, resp_len as usize)?)?;
        commands.push(AckRecord { client, request, op, response });
    }
    if !c.is_empty() {
        return Err(ProtoError::TrailingBytes);
    }
    Ok(SlotRecord { slot, batch, commands })
}

/// Encodes one framed record (header + checksum + payload) appended to
/// `out`.
pub fn encode_record(rec: &SlotRecord, out: &mut Vec<u8>) {
    let payload = encode_payload(rec);
    assert!(payload.len() <= MAX_RECORD, "record payload exceeds MAX_RECORD");
    out.extend_from_slice(
        &u32::try_from(payload.len()).expect("bounded by MAX_RECORD").to_le_bytes(),
    );
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Incremental WAL record decoder: feed file bytes in any chunking, pop
/// whole validated payloads.
///
/// Decoding is chunking independent (any partition of the same byte
/// stream yields the same record sequence), stops permanently at the
/// first damaged record, and classifies the stream's end via
/// [`tail`](WalDecoder::tail).
#[derive(Debug, Default)]
pub struct WalDecoder {
    buf: Vec<u8>,
    pos: usize,
    /// Absolute stream offset of `buf[pos]`.
    offset: u64,
    /// Set once a damaged record is found; decoding never resumes.
    corrupt: Option<u64>,
}

impl WalDecoder {
    /// A decoder with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete, checksum-valid record payload; `None` if
    /// the buffered bytes do not hold one (or the stream is poisoned by
    /// an earlier corrupt record).
    pub fn next_payload(&mut self) -> Option<Vec<u8>> {
        if self.corrupt.is_some() {
            return None;
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return None;
        }
        // The length field alone condemns the record: a header announcing
        // more than MAX_RECORD can never complete into a valid frame, so
        // corruption is flagged before waiting for (or allocating) the
        // announced payload.
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD {
            self.corrupt = Some(self.offset);
            return None;
        }
        if avail.len() < RECORD_HEADER_LEN {
            return None;
        }
        if avail.len() < RECORD_HEADER_LEN + len {
            return None;
        }
        let stored = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        let payload = &avail[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if crc32(payload) != stored {
            self.corrupt = Some(self.offset);
            return None;
        }
        let payload = payload.to_vec();
        self.pos += RECORD_HEADER_LEN + len;
        self.offset += (RECORD_HEADER_LEN + len) as u64;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Some(payload)
    }

    /// Byte offset of the first byte after the last valid record — the
    /// length recovery truncates the file to.
    #[must_use]
    pub fn valid_len(&self) -> u64 {
        self.offset
    }

    /// Classifies the stream's end, assuming no more bytes are coming.
    #[must_use]
    pub fn tail(&self) -> WalTail {
        if let Some(offset) = self.corrupt {
            WalTail::Corrupt { offset }
        } else if self.pos == self.buf.len() {
            WalTail::Clean
        } else {
            WalTail::Torn { offset: self.offset }
        }
    }
}

/// The outcome of replaying a WAL byte stream: the longest valid prefix
/// of slot records and how the stream ended.
#[derive(Debug)]
pub struct WalReplay {
    /// The recovered records, in append order.
    pub records: Vec<SlotRecord>,
    /// How the stream ended after the last whole record.
    pub tail: WalTail,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
}

/// Replays a complete WAL byte stream.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, WalError> {
    let mut decoder = WalDecoder::new();
    decoder.feed(bytes);
    let mut records = Vec::new();
    while let Some(payload) = decoder.next_payload() {
        records.push(decode_payload(&payload)?);
    }
    Ok(WalReplay { records, tail: decoder.tail(), valid_len: decoder.valid_len() })
}

/// An open write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`, replays it, repairs a torn
    /// tail by truncating to the valid prefix, and positions the file
    /// for appending.
    ///
    /// A [`WalTail::Corrupt`] tail is *not* silently repaired — the
    /// replay reports it so the caller can decide (the engine refuses to
    /// start on bit rot; a torn append is the expected crash artifact).
    pub fn open(path: &Path) -> Result<(Self, WalReplay), WalError> {
        // truncate(false): existing records are the point of a WAL.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = replay_bytes(&bytes)?;
        if matches!(replay.tail, WalTail::Torn { .. }) {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))?;
        Ok((Wal { file, path: path.to_path_buf() }, replay))
    }

    /// Appends one framed record (not yet durable — call
    /// [`sync`](Wal::sync) at the slot boundary).
    pub fn append(&mut self, rec: &SlotRecord) -> Result<(), WalError> {
        let mut buf = Vec::with_capacity(64);
        encode_record(rec, &mut buf);
        self.file.write_all(&buf)?;
        Ok(())
    }

    /// Makes every appended record durable (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Prefix truncation at a checkpoint: every retained record is now
    /// covered by the snapshot, so the log restarts empty.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The file path this WAL appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(slot: u64) -> SlotRecord {
        let response = Response {
            request: RequestId(slot),
            shard: 0,
            outcome: crate::proto::Outcome::Put { slot },
        };
        SlotRecord {
            slot,
            batch: BatchId(slot - 1),
            commands: vec![AckRecord {
                client: ClientId(7),
                request: RequestId(slot),
                op: KvOp::Put { key: 1, value: 2 },
                response,
            }],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_round_trips() {
        for slot in [1u64, 2, 900] {
            let rec = record(slot);
            let decoded = decode_payload(&encode_payload(&rec)).unwrap();
            assert_eq!(decoded.slot, rec.slot);
            assert_eq!(decoded.batch, rec.batch);
            assert_eq!(decoded.commands, rec.commands);
        }
    }

    #[test]
    fn replay_recovers_clean_streams() {
        let mut wire = Vec::new();
        for slot in 1..=5 {
            encode_record(&record(slot), &mut wire);
        }
        let replay = replay_bytes(&wire).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(replay.valid_len, wire.len() as u64);
    }

    #[test]
    fn torn_tail_recovers_longest_prefix() {
        let mut wire = Vec::new();
        encode_record(&record(1), &mut wire);
        let boundary = wire.len();
        encode_record(&record(2), &mut wire);
        let replay = replay_bytes(&wire[..wire.len() - 3]).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.tail, WalTail::Torn { offset: boundary as u64 });
        assert_eq!(replay.valid_len, boundary as u64);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut wire = Vec::new();
        encode_record(&record(1), &mut wire);
        encode_record(&record(2), &mut wire);
        let boundary = wire.len();
        encode_record(&record(3), &mut wire);
        // Flip one payload bit of the third record.
        let idx = boundary + RECORD_HEADER_LEN + 2;
        wire[idx] ^= 0x10;
        let replay = replay_bytes(&wire).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.tail, WalTail::Corrupt { offset: boundary as u64 });
    }

    #[test]
    fn oversized_header_is_corrupt() {
        let mut wire = Vec::new();
        encode_record(&record(1), &mut wire);
        let boundary = wire.len();
        wire.extend_from_slice(&u32::try_from(MAX_RECORD + 1).unwrap().to_le_bytes());
        wire.extend_from_slice(&[0u8; 4]);
        let replay = replay_bytes(&wire).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.tail, WalTail::Corrupt { offset: boundary as u64 });
    }

    #[test]
    fn file_append_replay_and_torn_repair() {
        let dir = std::env::temp_dir().join(format!("indulgent-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            for slot in 1..=3 {
                wal.append(&record(slot)).unwrap();
                wal.sync().unwrap();
            }
        }
        // Tear the tail: chop two bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.records.len(), 2, "torn third record discarded");
            assert!(matches!(replay.tail, WalTail::Torn { .. }));
            // The tail was truncated away; appending continues cleanly.
            wal.append(&record(3)).unwrap();
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).ok();
    }
}
