//! `indulgent-server`: the replicated key-value log as a networked
//! service.
//!
//! This crate promotes the repo's replicated-KV example into a real
//! service: a TCP server hosting an `n`-replica group running the
//! paper's indulgent consensus (`A_{t+2}` with the failure-free round-2
//! fast path) behind a length-framed wire protocol. The pieces, bottom
//! to top:
//!
//! * [`wire`] — the vendored length-framed codec. 4-byte little-endian
//!   length header, [`MAX_FRAME`](wire::MAX_FRAME) bound enforced before
//!   buffering, chunking-independent incremental decoding.
//! * [`proto`] — the request/response vocabulary. Requests carry the
//!   `(ClientId, RequestId)` exactly-once key; responses carry the
//!   `(shard, slot)` linearization point: the shard group that sequenced
//!   the command and the slot it occupies in that shard's log.
//! * [`shard`] — keyspace partitioning: the fixed [`ShardRouter`] hash
//!   mapping every key to one of `S` independent shard groups, the
//!   fsynced `shards.manifest` refusing boots against a mismatched disk
//!   layout, and the [`ShardedAudit`] adding cross-shard routing and
//!   exactly-once-disjointness checks on top of the per-shard audits.
//! * [`engine`] — the service core: routes intake to shard groups, each
//!   batching through the log crate's `ClientFrontend`, pipelines
//!   consensus instances of every shard on *one* reusable replica
//!   session (shared worker pool — S shards, one set of threads),
//!   applies decided slots in order, and deduplicates retries against
//!   the decided log so every request is applied exactly once no matter
//!   how often it is sent. Produces a [`ShardedAudit`] whose
//!   [`check`](shard::ShardedAudit::check) replays every shard's log
//!   with independent code and re-derives every acknowledgement.
//! * [`service`] — the layered client interface: [`KvService`]
//!   implemented by [`LocalKv`] (in-process, the reference layer) and
//!   [`RemoteKv`] (framed TCP). The integration suite runs the same
//!   workload against both and asserts identical results, so the
//!   transport provably adds no semantics.
//! * [`lease`] — leader leases and the linearizable fast-read path:
//!   while a quorum of replicas has promised not to grant a newer lease,
//!   `Get`s are answered from the leader's applied store at a *read
//!   index* without occupying a log slot, falling down the ladder
//!   (lease read → quorum read → sequenced read) when the lease is
//!   suspect. Lease epochs are burned to disk before serving, so a
//!   `kill -9`'d leader can never fast-read under its old epoch.
//! * [`server`] — the TCP front door bridging sockets to the engine.
//!   Besides requests it answers stats scrapes: a
//!   [`remote_stats`](service::remote_stats) request returns a
//!   [`StatsReport`](proto::StatsReport) — per-shard pipeline-stage
//!   latency histograms (submit→seal, seal→decide, decide→apply,
//!   apply→ack, WAL fsync, queue depth) recorded by the zero-allocation
//!   `indulgent-obs` registry, point-in-time and usable mid-load. Each
//!   shard also keeps a bounded flight recorder of recent structured
//!   events, dumped to `flight-<shard>.log` on audit violation, panic,
//!   or shutdown.
//! * [`wal`] + [`snapshot`] — the durability layer: every applied slot
//!   is written to a checksummed write-ahead log and fsynced *before*
//!   its acknowledgements leave, and periodic checkpoints fold the
//!   prefix into an atomically-written snapshot (store + session dedup
//!   table), truncating the WAL. A killed server restarts from disk with
//!   its sessions intact — exactly-once survives the crash — and a
//!   replica that lost its disk rejoins via snapshot transfer + record
//!   catch-up over the same framed TCP port
//!   ([`sync_from_peer`](service::sync_from_peer)).
//!
//! # The exactly-once session contract
//!
//! A client session is a [`ClientId`](indulgent_model::ClientId) plus a
//! monotonic [`RequestId`](indulgent_model::RequestId) counter. Sending
//! the same `(client, request)` pair again — a timeout retry on the same
//! connection, or a replay after reconnecting — never re-applies the
//! command: if it already sits in the decided log the service replays
//! the original acknowledgement from its cache, and if it is still in
//! flight the retry merely re-targets where the ack will be delivered.
//! Acknowledgements carry linearization points — the log slot of a
//! sequenced command, or the *read index* of a lease-path fast read —
//! and the audit replays both against the decided log (a fast read must
//! equal what a sequenced read at its read index would have answered),
//! so matching the replay is a linearizability proof, not a heuristic.
//! Fast-read acks are cached for retry idempotence but not WAL-durable:
//! a read retried across a crash re-executes at a read index at least
//! as new as the original, which is still linearizable.
//!
//! # Running the service
//!
//! ```text
//! cargo run --release -p indulgent-server --bin indulgent_server -- 127.0.0.1:7171
//! ```
//!
//! and drive it with [`RemoteKv`] from any process, or run the load
//! generator (`cargo run --release -p indulgent-bench --bin
//! exp_server_load`), which refuses to time anything until the
//! linearizability and exactly-once gates pass.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lease;
pub mod proto;
pub mod server;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use engine::{
    AckRecord, AuditViolation, ConnId, DurabilityConfig, EngineConfig, EngineHandle,
    FastReadRecord, KvEngine, Outbound, ServiceAudit, SlotRecord, SubmitHandle,
};
pub use lease::{
    fresh_holder, load_epoch, store_epoch, LeaderLease, LeaseConfig, ReadPath, ReplicaLeaseAgent,
};
pub use proto::{
    stats_request_frame, stats_request_shard, AuditSummary, KvOp, LeaseFrame, LeaseStatus, Outcome,
    ProtoError, Request, Response, StatsReport, SyncFrame, TAG_STATS, TAG_STATS_REQUEST,
};
pub use server::KvServer;
pub use service::{
    remote_audit, remote_lease_state, remote_stats, sync_all_from_peer, sync_from_peer, KvService,
    LocalKv, PipeClient, RemoteKv, ServiceError,
};
pub use shard::{load_manifest, shard_dir, store_manifest, ShardRouter, ShardedAudit};
pub use snapshot::{SessionEntry, Snapshot};
pub use wal::{Wal, WalError, WalReplay, WalTail};
pub use wire::{FrameDecoder, FrameReader, WireError, MAX_FRAME};
